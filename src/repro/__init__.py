"""repro — dynamic query evaluation plans (Cole & Graefe, SIGMOD 1994).

A complete reproduction of *Optimization of Dynamic Query Evaluation
Plans*: a Volcano-style query optimizer extended with interval costs and
partially ordered plans, choose-plan operators linking compile-time
incomparable alternatives into dynamic plans, a start-up-time decision
procedure, access-module modeling, a real iterator execution engine over
simulated storage, a small SQL front end, and the paper's full experiment
suite (Figures 3–8 and the break-even analysis).

Quickstart::

    from repro import (
        Catalog, CostModel, OptimizationMode, optimize_query, explain,
    )
    from repro.logical import GetSet, Select, SelectionPredicate, CompareOp, HostVariable
    from repro.params import ParameterSpace

    catalog = Catalog()
    catalog.add_relation("R", [("a", 500), ("b", 500)], cardinality=1000)
    catalog.create_index("R_a", "R", "a")

    space = ParameterSpace()
    space.add_selectivity("sel_v")
    predicate = SelectionPredicate(
        catalog.attribute("R.a"), CompareOp.LT, HostVariable("v", "sel_v"),
    )
    query = normalize(Select(GetSet("R"), predicate), space)

    result = optimize_query(query, catalog, mode=OptimizationMode.DYNAMIC)
    print(explain(result.plan))
"""

from repro.catalog import Attribute, Catalog, IndexInfo, RelationInfo, Schema
from repro.cost import Comparison, Cost, CostModel, IntervalCost
from repro.cost.context import CostContext
from repro.errors import (
    BindingError,
    CatalogError,
    ExecutionError,
    OptimizationError,
    ParseError,
    PlanError,
    ReproError,
)
from repro.logical import (
    CompareOp,
    GetSet,
    HostVariable,
    Join,
    JoinPredicate,
    Literal,
    QueryGraph,
    Select,
    SelectionPredicate,
    normalize,
)
from repro.optimizer import (
    OptimizationMode,
    OptimizationResult,
    optimize_query,
)
from repro.params import Environment, Parameter, ParameterKind, ParameterSpace
from repro.obs import (
    MetricsRegistry,
    RecordingTracer,
    Tracer,
    get_metrics,
    get_tracer,
    set_tracer,
    setup_logging,
    use_tracer,
)
from repro.physical import (
    ChoosePlanNode,
    PlanNode,
    count_choose_plan_nodes,
    count_plan_nodes,
    explain,
    explain_analyze,
    to_dot,
)
from repro.runtime import (
    AccessModule,
    ActivationDecision,
    PreparedQuery,
    resolve_plan,
)
from repro.util import Interval

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "Catalog",
    "IndexInfo",
    "RelationInfo",
    "Schema",
    "Comparison",
    "Cost",
    "CostModel",
    "CostContext",
    "IntervalCost",
    "Interval",
    "BindingError",
    "CatalogError",
    "ExecutionError",
    "OptimizationError",
    "ParseError",
    "PlanError",
    "ReproError",
    "CompareOp",
    "GetSet",
    "HostVariable",
    "Join",
    "JoinPredicate",
    "Literal",
    "QueryGraph",
    "Select",
    "SelectionPredicate",
    "normalize",
    "OptimizationMode",
    "OptimizationResult",
    "optimize_query",
    "Environment",
    "Parameter",
    "ParameterKind",
    "ParameterSpace",
    "ChoosePlanNode",
    "PlanNode",
    "count_choose_plan_nodes",
    "count_plan_nodes",
    "explain",
    "explain_analyze",
    "to_dot",
    "MetricsRegistry",
    "RecordingTracer",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "set_tracer",
    "setup_logging",
    "use_tracer",
    "AccessModule",
    "ActivationDecision",
    "PreparedQuery",
    "resolve_plan",
    "__version__",
]
