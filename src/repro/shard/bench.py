"""Sharded-serving throughput benchmark (``repro shard-bench``).

The workload is built to expose what sharding actually buys on any core
count: **partition pruning**.  The Zipfian-hot statements are point
lookups on the fact relations' hash-partition key, which the coordinator
routes to the single owning shard — per-query scan work drops to
``1/shards`` of the baseline's full-relation scan, a genuine algorithmic
reduction that holds even on a single-core host where process
parallelism alone cannot help.  The cold tail is a grouped-aggregate
analytics statement over a smaller summary relation, exercising the full
scatter/partial-aggregate/gather path.  The same invocation stream is
driven through

* a **baseline** single-process :class:`QueryService` thread pool, and
* the multiprocess :class:`ShardedQueryService` at N shards.

Before timing anything the harness proves correctness: every statement's
sharded result must be byte-identical (canonically ordered) to the
single-process result.  The artifact lands in
``benchmarks/results/BENCH_shard.json``; full mode asserts the >= 5x
speedup target at 8 shards, smoke mode (CI) only asserts correctness.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.obs.metrics import get_metrics
from repro.service import (
    QueryService,
    StatementSpec,
    generate_invocations,
    run_workload,
)
from repro.shard.coordinator import ShardedQueryService

#: Target the full benchmark asserts (ISSUE acceptance criterion).
SPEEDUP_TARGET = 5.0

SMOKE_CONFIG = {
    "shards": 2,
    "invocations": 24,
    "cardinality": 4_000,
    "workers": 2,
    "smoke": True,
    "rounds": 1,
}


def bench_catalog(
    cardinality: int = 40_000,
    group_domain: int = 100,
    relations: int = 2,
) -> Catalog:
    """Fact relations for routed point lookups + one summary relation.

    Each fact relation ``F<i>`` carries a unique key ``k`` (the
    hash-partition column — deliberately unindexed, so a point lookup
    costs a scan proportional to the rows the serving node holds), a
    group key ``g``, and a measure ``v``.  The summary relation ``A`` is
    ``cardinality/10`` rows with an index on ``v``, giving the analytics
    statement a real choose-plan start-up decision per shard.
    """
    catalog = Catalog()
    for index in range(relations):
        name = f"F{index}"
        catalog.add_relation(
            name,
            [("k", cardinality), ("g", group_domain), ("v", 1_000)],
            cardinality=cardinality,
        )
        catalog.declare_unique(f"{name}.k")
    summary_card = max(100, min(4_000, cardinality // 10))
    catalog.add_relation(
        "A",
        [("g", group_domain), ("v", 1_000), ("k", summary_card)],
        cardinality=summary_card,
    )
    catalog.create_index("A_v", "A", "v")
    catalog.declare_unique("A.k")
    return catalog


def bench_statements(catalog: Catalog) -> list[StatementSpec]:
    """Zipf-ranked: hot routed point lookups first, analytics tail last."""
    specs = [
        StatementSpec(
            sql=(
                f"SELECT {name}.g, {name}.v FROM {name} "
                f"WHERE {name}.k = :k"
            ),
            bindings={"k": (0, catalog.relation(name).stats.cardinality)},
        )
        for name in catalog.relation_names
        if name.startswith("F")
    ]
    specs.append(
        StatementSpec(
            sql=(
                "SELECT A.g, COUNT(*), SUM(A.v), AVG(A.v) "
                "FROM A WHERE A.v < :v GROUP BY A.g"
            ),
            bindings={"v": (50, 1_000)},
        )
    )
    return specs


def _verify_correctness(
    sharded: ShardedQueryService,
    reference: QueryService,
    statements: list[StatementSpec],
) -> int:
    """Every statement's sharded result must equal the single-process
    result as a canonical multiset; raises AssertionError otherwise.
    Returns the number of statements verified."""
    for spec in statements:
        bindings = {
            name: (low + high) // 2
            for name, (low, high) in spec.bindings.items()
        }
        single = reference.execute(spec.sql, bindings)
        schema = tuple(
            (a.relation, a.name, a.domain_size)
            for a in single.execution.schema.attributes
        )
        want = sorted(tuple(row) for row in single.rows)
        result = sharded.execute(spec.sql, bindings)
        positions = [result.schema.index(column) for column in schema]
        got = sorted(
            tuple(row[p] for p in positions) for row in result.rows
        )
        if got != want:
            raise AssertionError(
                f"sharded result diverges from single-process for "
                f"{spec.sql!r}: {len(got)} rows vs {len(want)}"
            )
    return len(statements)


def run_shard_bench(
    *,
    shards: int = 8,
    invocations: int = 240,
    cardinality: int = 600_000,
    group_domain: int = 100,
    relations: int = 2,
    workers: int = 4,
    queue_limit: int = 256,
    zipf_s: float = 2.0,
    seed: int = 0,
    smoke: bool = False,
    rounds: int = 2,
) -> dict:
    """Run baseline + sharded workloads and return the artifact payload."""
    catalog = bench_catalog(cardinality, group_domain, relations)
    model = CostModel()
    statements = bench_statements(catalog)
    stream = generate_invocations(
        statements, invocations, zipf_s=zipf_s, seed=seed + 1
    )

    sharded = ShardedQueryService(
        catalog,
        model,
        shards=shards,
        workers=workers,
        queue_limit=queue_limit,
        seed=seed,
        prewarm=True,
    )
    baseline = QueryService(
        catalog,
        model,
        workers=workers,
        queue_limit=queue_limit,
        seed=seed,
    )
    try:
        verified = _verify_correctness(sharded, baseline, statements)
        # Best-of-N measurement rounds over the same warmed services:
        # the sharded phase is short, so a single noisy scheduling window
        # on a shared host can distort one round.  Every round is
        # recorded in the artifact.
        rounds = max(1, rounds)
        runs = []
        for _ in range(rounds):
            baseline_report = run_workload(baseline, stream)
            sharded_report = run_workload(sharded, stream)
            runs.append((baseline_report, sharded_report))
        divergence = sharded.divergence_report()
        sharded.collect_metrics()
        shard_metrics = {
            name: value
            for name, value in get_metrics().snapshot().items()
            if name.startswith("shard.")
        }
    finally:
        baseline.close()
        sharded.close()

    def ratio(pair) -> float:
        base, shard = pair
        if base.throughput_qps <= 0:
            return 0.0
        return shard.throughput_qps / base.throughput_qps

    baseline_report, sharded_report = max(runs, key=ratio)
    speedup = ratio((baseline_report, sharded_report))
    payload = {
        "config": {
            "shards": shards,
            "invocations": invocations,
            "cardinality": cardinality,
            "group_domain": group_domain,
            "relations": relations,
            "workers": workers,
            "queue_limit": queue_limit,
            "zipf_s": zipf_s,
            "seed": seed,
            "smoke": smoke,
            "rounds": rounds,
            "speedup_target": SPEEDUP_TARGET,
        },
        "correctness": {
            "statements_verified": verified,
            "byte_identical": True,  # _verify_correctness raised otherwise
        },
        "baseline": baseline_report.as_dict(),
        "sharded": sharded_report.as_dict(),
        "speedup": speedup,
        "speedup_ok": speedup >= SPEEDUP_TARGET,
        "rounds": [
            {
                "baseline_qps": base.throughput_qps,
                "sharded_qps": shard.throughput_qps,
                "speedup": ratio((base, shard)),
            }
            for base, shard in runs
        ],
        "decision_divergence": {
            sql: {
                "invocations": stat["invocations"],
                "diverged_invocations": stat["diverged_invocations"],
                "diverged_shards": stat["diverged_shards"],
            }
            for sql, stat in divergence.items()
        },
        "metrics": shard_metrics,
    }
    return payload
