"""Scatter/gather result merging: union, ordered merge, partial aggregates.

The coordinator cannot just concatenate shard results when the query
aggregates: each shard has aggregated only its partition, so the plan
shipped to shards must compute *decomposed partials* and the coordinator
must recombine them.  :func:`build_merge_plan` performs that rewrite at
the JSON level — on the serialized node table, before any shard sees the
plan — and returns the :class:`MergeSpec` describing how to put the
partials back together:

* ``COUNT``    -> sum of partial counts,
* ``SUM(a)``   -> sum of partial sums,
* ``MIN/MAX``  -> min/max over non-null partials,
* ``AVG(a)``   -> decomposed into ``SUM(a)`` + ``COUNT(*)`` partials and
  recombined as total sum / total count (matching the engine's AVG,
  which divides the non-null sum by the group's *row* count).

Partial columns are deduplicated by output name (``SUM(a)`` and
``AVG(a)`` share one partial sum; any AVG shares the single partial
count), because :class:`~repro.logical.aggregates.AggregateSpec` rejects
duplicate output names.

Exactness: synthetic data is integral, so partial float sums are exact
below 2**53 and recombination reproduces the single-process result
byte-for-byte; true floating-point data could differ in the last bit
because float addition is not associative (documented limitation).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.catalog.catalog import Catalog
from repro.errors import ServiceError
from repro.logical.aggregates import AGGREGATE_RELATION

#: Node kinds in the serialized plan that aggregate their input.
_AGGREGATE_KINDS = ("hash-aggregate", "sorted-aggregate")

#: How one partial column combines across shards.
_PARTIAL_OPS = {"count": "add", "sum": "add", "min": "min", "max": "max"}

#: Schema triple type: (relation, name, domain_size).
SchemaTriple = tuple[str, str, int]


@dataclass(frozen=True)
class MergeSpec:
    """How the coordinator recombines one query's shard partials.

    ``aggregate=False`` is plain multiset union (with optional ordered
    merge).  ``aggregate=True`` carries the recombination layout:
    ``partial_ops[i]`` combines partial column ``i`` across shards, and
    ``combiners`` maps each *final* aggregate output to its partial
    inputs — ``(op, primary, secondary)`` where ``secondary`` is the
    partial-count column for AVG and ``-1`` otherwise.  Positions are
    relative to the partial columns (after the group keys).
    """

    aggregate: bool
    group_key_count: int = 0
    partial_ops: tuple[str, ...] = ()
    combiners: tuple[tuple[str, int, int], ...] = ()
    # Layout of shard partial rows vs. the final merged rows: they differ
    # whenever decomposition changed the column set (AVG becomes SUM +
    # COUNT partials).
    partial_schema: tuple[SchemaTriple, ...] = ()
    final_schema: tuple[SchemaTriple, ...] = ()


def _qualified_to_triple(catalog: Catalog, qualified: str) -> SchemaTriple:
    attribute = catalog.attribute(qualified)
    return (attribute.relation, attribute.name, attribute.domain_size)


def _partial_name(item: dict) -> str:
    """Output name of a partial aggregate JSON entry (mirrors
    :attr:`~repro.logical.aggregates.AggregateExpr.output_name`)."""
    if item["attribute"] is None:
        return "count"
    relation, name = item["attribute"].split(".", 1)
    return f"{item['function']}_{relation}_{name}"


def build_merge_plan(
    plan_data: dict, catalog: Catalog
) -> tuple[dict, MergeSpec]:
    """Rewrite a serialized plan for sharded execution.

    Returns ``(shard_plan, spec)``: the node table the shards execute
    (aggregates replaced by their decomposed partials; unchanged when the
    plan has none) and the merge recipe.  Every aggregate entry in the
    table — including copies under choose-plan alternatives — must carry
    the same logical spec; anything else is a planner bug surfaced as
    :class:`ServiceError`.
    """
    entries = [
        (index, entry)
        for index, entry in enumerate(plan_data["nodes"])
        if entry["kind"] in _AGGREGATE_KINDS
    ]
    if not entries:
        return plan_data, MergeSpec(aggregate=False)

    reference = entries[0][1]
    signature = (reference["group_by"], reference["aggregates"])
    for _, entry in entries[1:]:
        if (entry["group_by"], entry["aggregates"]) != signature:
            raise ServiceError(
                "cannot shard a plan whose aggregate operators disagree: "
                f"{signature} vs ({entry['group_by']}, {entry['aggregates']})"
            )

    # Decompose: one deduplicated partial list + per-output combiners.
    partials: list[dict] = []
    partial_position: dict[str, int] = {}

    def intern(item: dict) -> int:
        name = _partial_name(item)
        position = partial_position.get(name)
        if position is None:
            position = partial_position[name] = len(partials)
            partials.append(item)
        return position

    combiners: list[tuple[str, int, int]] = []
    for item in reference["aggregates"]:
        function = item["function"]
        if function == "count":
            # The engine's COUNT counts rows regardless of argument, so
            # every COUNT shares the one partial row count.
            combiners.append(
                ("count", intern({"function": "count", "attribute": None}), -1)
            )
        elif function in ("sum", "min", "max"):
            combiners.append((function, intern(dict(item)), -1))
        elif function == "avg":
            combiners.append(
                (
                    "avg",
                    intern({"function": "sum", "attribute": item["attribute"]}),
                    intern({"function": "count", "attribute": None}),
                )
            )
        else:
            raise ServiceError(f"cannot decompose aggregate {function!r}")

    shard_plan = {
        "root": plan_data["root"],
        "nodes": [
            (
                {**entry, "aggregates": partials}
                if entry["kind"] in _AGGREGATE_KINDS
                else entry
            )
            for entry in plan_data["nodes"]
        ],
    }
    key_schema = tuple(
        _qualified_to_triple(catalog, name) for name in reference["group_by"]
    )
    return shard_plan, MergeSpec(
        aggregate=True,
        group_key_count=len(reference["group_by"]),
        partial_ops=tuple(
            _PARTIAL_OPS[item["function"]] for item in partials
        ),
        combiners=tuple(combiners),
        partial_schema=key_schema
        + tuple(
            (AGGREGATE_RELATION, _partial_name(item), 1) for item in partials
        ),
        final_schema=key_schema
        + tuple(
            (AGGREGATE_RELATION, _partial_name(item), 1)
            for item in reference["aggregates"]
        ),
    )


# ----------------------------------------------------------------------
# Gather
# ----------------------------------------------------------------------
def _null_last_key(position: int):
    return lambda row: (row[position] is None, row[position])


def _reproject(
    rows: list[tuple],
    schema: tuple[SchemaTriple, ...],
    target: tuple[SchemaTriple, ...],
) -> list[tuple]:
    """Rows re-ordered column-wise into ``target`` layout.

    Shards may legitimately activate different plan alternatives (a
    commuted hash join swaps sides), so their column orders can differ;
    the coordinator canonicalizes before merging.
    """
    if schema == target:
        return rows
    try:
        positions = [schema.index(column) for column in target]
    except ValueError:
        raise ServiceError(
            f"shard result schema {schema} does not cover merge target "
            f"{target}"
        ) from None
    return [tuple(row[p] for p in positions) for row in rows]


def merge_partials(
    spec: MergeSpec,
    partials: Sequence[tuple[list[tuple], tuple[SchemaTriple, ...]]],
    *,
    order_key: SchemaTriple | None = None,
) -> tuple[list[tuple], tuple[SchemaTriple, ...]]:
    """Combine per-shard ``(rows, schema)`` partials into the final result.

    Plain queries union (streaming k-way merge on ``order_key`` when the
    shards pre-sorted their partials); aggregate queries recombine group
    by group and sort afterwards when ordered.  Returns the merged rows
    and the result schema.
    """
    partials = [p for p in partials if p is not None]
    if not partials:
        return [], spec.final_schema
    if not spec.aggregate:
        target = partials[0][1]
        aligned = [_reproject(rows, schema, target) for rows, schema in partials]
        if order_key is not None:
            position = target.index(order_key)
            merged = list(
                heapq.merge(*aligned, key=_null_last_key(position))
            )
        else:
            merged = [row for rows in aligned for row in rows]
        return merged, target

    keys = spec.group_key_count
    # One accumulator list of combined partial values per group key,
    # insertion-ordered like the single-process hash aggregate.
    groups: dict[tuple, list] = {}
    for rows, schema in partials:
        rows = _reproject(rows, schema, spec.partial_schema)
        for row in rows:
            key = row[:keys]
            accumulator = groups.get(key)
            if accumulator is None:
                groups[key] = list(row[keys:])
                continue
            for i, op in enumerate(spec.partial_ops):
                value = row[keys + i]
                if op == "add":
                    accumulator[i] += value
                elif value is not None and (
                    accumulator[i] is None
                    or (value < accumulator[i] if op == "min" else value > accumulator[i])
                ):
                    accumulator[i] = value

    merged = []
    for key, combined in groups.items():
        out = list(key)
        for op, primary, secondary in spec.combiners:
            if op == "avg":
                count = combined[secondary]
                out.append(combined[primary] / count if count else None)
            else:
                out.append(combined[primary])
        merged.append(tuple(out))
    if order_key is not None:
        position = spec.final_schema.index(order_key)
        merged.sort(key=_null_last_key(position))
    return merged, spec.final_schema


def recut_top_n(
    rows: list[tuple], key_position: int, limit: int
) -> list[tuple]:
    """Top-N over merged shard partials: each shard's local Top-N bounds
    its contribution, so re-cutting the union reproduces the global
    Top-N.  (Nulls sort last, matching the engine's sort order.)"""
    return sorted(rows, key=_null_last_key(key_position))[:limit]
