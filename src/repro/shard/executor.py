"""Shard-local execution: deserialize, re-decide, run the partition.

A :class:`ShardExecutor` is the single-process brain of one shard.  It
owns no transport — the spawned worker loop (:mod:`repro.shard.worker`)
and the coordinator's in-process mode both drive the same object, so the
sharded differential oracle exercises exactly the code the processes
run.

The shard's world is derived, never shipped: from ``(catalog, seed)`` it
regenerates the full synthetic dataset, slices out its partition of a
query's driver relation, and re-sizes the driver's statistics in a
catalog clone whose *version stays the coordinator's*.  Centrally
compiled access modules therefore validate locally, but their
choose-plan start-up decisions run against the shard's own cardinalities
— the paper's start-up decision made N times with N potentially
different answers.
"""

from __future__ import annotations

from time import perf_counter

from repro.catalog.catalog import Catalog
from repro.catalog.partition import (
    PartitionMode,
    derive_shard_catalog,
    partition_column,
    partition_rows,
)
from repro.cost.context import CostContext
from repro.cost.model import CostModel
from repro.errors import ExecutionError
from repro.executor.database import Database, synthetic_rows
from repro.executor.executor import execute_plan
from repro.obs.metrics import get_metrics
from repro.optimizer.optimizer import OptimizationMode
from repro.physical.plan import ChoosePlanNode, PlanNode, iter_plan_nodes
from repro.runtime.access_module import AccessModule
from repro.shard.wire import ExecuteRequest, ExecuteResponse, ShardConfig


def decision_signature(
    plan: PlanNode, choices: dict[int, PlanNode]
) -> tuple[tuple[tuple[int, int], ...], tuple[str, ...]]:
    """Position-based encoding of one activation's choose-plan outcome.

    Returns ``(signature, labels)``: the signature pairs each decided
    choose-plan's position in :func:`iter_plan_nodes` order with the
    index of its chosen alternative, and the labels name the chosen
    operator types.  Serialization preserves node-table order, so the
    same plan shipped to N processes yields comparable signatures — the
    basis of the ``shard.decision_divergence`` metric.
    """
    signature: list[tuple[int, int]] = []
    labels: list[str] = []
    for position, node in enumerate(iter_plan_nodes(plan)):
        if isinstance(node, ChoosePlanNode) and id(node) in choices:
            chosen = choices[id(node)]
            signature.append((position, node.alternatives.index(chosen)))
            labels.append(type(chosen).__name__)
    return tuple(signature), tuple(labels)


class ShardExecutor:
    """One shard's state: partitioned data, local stats, module cache."""

    def __init__(self, config: ShardConfig) -> None:
        self.shard_id = config.shard_id
        self.shard_count = config.shard_count
        self.catalog = config.catalog
        self.model: CostModel = config.model
        self.seed = config.seed
        self.partition_mode: PartitionMode = config.partition_mode
        self.execution_mode = config.execution_mode
        self.batch_size = config.batch_size
        self.prewarm = config.prewarm
        # Full synthetic dataset, regenerated rather than transferred; the
        # byte-identical RNG contract of ``synthetic_rows`` guarantees
        # every shard derives the same rows the coordinator would.
        self._rows: dict[str, list[tuple]] = synthetic_rows(
            self.catalog, self.seed
        )
        # One Database per driver relation: the driver holds this shard's
        # partition, everything else a full copy.  Queries over different
        # drivers coexist; DDL sync drops them all.
        self._databases: dict[str, Database] = {}
        # Deserialized-module cache so repeated invocations of a cached
        # statement reuse memoized start-up decisions.
        self._modules: dict[tuple[str, int, str], AccessModule] = {}
        if config.prewarm:
            for name in self.catalog.relation_names:
                self.database_for(name)

    # ------------------------------------------------------------------
    # Local state derivation
    # ------------------------------------------------------------------
    def database_for(self, driver: str) -> Database:
        """The shard's database view for queries partitioned on ``driver``."""
        db = self._databases.get(driver)
        if db is not None:
            return db
        key_position = partition_column(self.catalog, driver)
        partition = partition_rows(
            self._rows[driver],
            self.shard_id,
            self.shard_count,
            self.partition_mode,
            key_position,
        )
        local_catalog = derive_shard_catalog(
            self.catalog, {driver: len(partition)}
        )
        db = Database(local_catalog, self.model)
        for name, rows in self._rows.items():
            db.load_relation(name, partition if name == driver else rows)
        self._databases[driver] = db
        return db

    def sync_catalog(self, catalog: Catalog) -> None:
        """Adopt a new coordinator catalog: rebuild the entire local world.

        DDL or statistics changes invalidate everything derived — the
        dataset (cardinalities drive generation), every per-driver
        database, and all cached modules (their plans reference the old
        catalog's attribute objects).
        """
        self.catalog = catalog
        self._rows = synthetic_rows(self.catalog, self.seed)
        self._databases.clear()
        self._modules.clear()
        if self.prewarm:
            for name in self.catalog.relation_names:
                self.database_for(name)
        get_metrics().counter("shard.catalog_syncs").inc()

    def _context_for(self, db: Database, request: ExecuteRequest) -> CostContext:
        mode = OptimizationMode(request.mode)
        if mode is OptimizationMode.DYNAMIC:
            env = request.space.dynamic_environment()
        else:
            env = request.space.static_environment()
        return CostContext(catalog=db.catalog, model=self.model, env=env)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, request: ExecuteRequest) -> ExecuteResponse:
        """Run one scattered invocation and return the partial result."""
        metrics = get_metrics()
        started = perf_counter()
        db = self.database_for(request.driver)
        cache_key = (request.module_key, request.catalog_version, request.driver)
        module = self._modules.get(cache_key)
        cache_hit = module is not None
        if module is None:
            ctx = self._context_for(db, request)
            module = AccessModule.from_json(request.wire, ctx, request.space)
            self._modules[cache_key] = module
            metrics.counter("shard.module_cache_misses").inc()
        else:
            metrics.counter("shard.module_cache_hits").inc()
        activation = module.activate(dict(request.parameter_values))
        signature, labels = decision_signature(
            module.plan, activation.decision.choices
        )
        result = execute_plan(
            module.plan,
            db,
            bindings=dict(request.value_bindings),
            choices=activation.decision.choices,
            memory_pages=request.memory_pages,
            execution_mode=request.execution_mode or self.execution_mode,
            batch_size=request.batch_size or self.batch_size,
        )
        rows = list(result.rows)
        if request.order_key is not None:
            rows = _sorted_partial(rows, result.schema, request.order_key)
        metrics.counter("shard.executions").inc()
        metrics.timer("shard.execution").observe(perf_counter() - started)
        return ExecuteResponse(
            request_id=request.request_id,
            rows=rows,
            schema=tuple(
                (a.relation, a.name, a.domain_size)
                for a in result.schema.attributes
            ),
            decision_signature=signature,
            decision_labels=labels,
            predicted_cost=activation.decision.execution_cost,
            startup_seconds=activation.startup_seconds,
            wall_seconds=perf_counter() - started,
            cache_hit=cache_hit,
        )


def _sorted_partial(rows: list[tuple], schema, order_key: str) -> list[tuple]:
    """Shard-side sort on ``order_key`` (NULLS LAST) so the coordinator
    can stream-merge ordered partials instead of re-sorting the union."""
    position = None
    for index, attribute in enumerate(schema.attributes):
        if f"{attribute.relation}.{attribute.name}" == order_key:
            position = index
            break
    if position is None:
        raise ExecutionError(
            f"order key {order_key} not in shard result schema"
        )
    return sorted(rows, key=lambda row: (row[position] is None, row[position]))
