"""Coordinator <-> shard message types.

Everything crossing the process boundary is a frozen dataclass of plain
picklable values; the plan itself travels as the versioned access-module
JSON produced by :meth:`repro.runtime.access_module.AccessModule.to_json`
(the paper's stored artifact, reused verbatim as the wire contract).
Catalogs cross as pickled :class:`~repro.catalog.catalog.Catalog`
instances — their ``__getstate__`` strips locks and listeners, so a
shard receives a clean clone whose *version matches the coordinator's*.

Request/response pairing is by ``request_id``: the coordinator may have
several dispatch threads in flight against one shard, and the shard
answers strictly in arrival order over a single duplex pipe, so the
receiver routes responses back to waiters by id rather than by order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.catalog.partition import PartitionMode
from repro.cost.model import CostModel
from repro.params.parameter import ParameterSpace


@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard process needs to build its world from scratch.

    Shards never receive rows: they regenerate the full synthetic dataset
    deterministically from ``(catalog, seed)`` and slice out their own
    partition, so startup and catalog resync cost no data transfer.
    """

    shard_id: int
    shard_count: int
    catalog: Catalog
    model: CostModel
    seed: int
    partition_mode: PartitionMode = PartitionMode.HASH
    execution_mode: str = "fused"
    batch_size: int | None = None
    # Build every per-driver database at startup instead of lazily on the
    # first query per driver — serving benchmarks warm this way so heap
    # and index construction never lands inside the measured window.
    prewarm: bool = False


@dataclass(frozen=True)
class ExecuteRequest:
    """One invocation scattered to a shard.

    ``wire`` is the (possibly partial-aggregate-rewritten) access-module
    JSON; ``space`` the statement's parameter space (the shard needs it
    to rebuild the cost environment the module deserializes under);
    ``driver`` names the one relation this query partitions — the shard
    stores its slice of the driver and full copies of everything else.
    ``order_key`` asks the shard to return its partial sorted on that
    attribute (NULLS LAST) so the coordinator can stream-merge.
    ``module_key`` keys the shard-side deserialized-module cache, so
    repeated invocations of a cached statement re-use the shard's module
    (and its memoized start-up decisions) instead of re-parsing JSON.
    """

    request_id: int
    module_key: str
    wire: str
    space: ParameterSpace
    driver: str
    catalog_version: int
    mode: str  # OptimizationMode value
    value_bindings: Mapping[str, object] = field(default_factory=dict)
    parameter_values: Mapping[str, float] = field(default_factory=dict)
    memory_pages: int | None = None
    execution_mode: str | None = None
    batch_size: int | None = None
    order_key: str | None = None


@dataclass(frozen=True)
class ExecuteResponse:
    """A shard's partial result plus its start-up decision record.

    ``schema`` is the positional output layout as ``(relation, name,
    domain_size)`` triples (aggregate outputs live in the synthetic
    ``<agg>`` relation, so names alone would not resolve against the
    catalog).  ``decision_signature`` encodes which alternative each
    choose-plan picked — ``(node position, alternative index)`` pairs in
    plan iteration order, comparable across processes because both sides
    iterate the same serialized DAG — and feeds the
    ``shard.decision_divergence`` metric.
    """

    request_id: int
    rows: list[tuple]
    schema: tuple[tuple[str, str, int], ...]
    decision_signature: tuple[tuple[int, int], ...]
    decision_labels: tuple[str, ...]
    predicted_cost: float  # the activation's g: predicted execution cost
    startup_seconds: float
    wall_seconds: float
    cache_hit: bool  # shard-side module cache


@dataclass(frozen=True)
class ErrorResponse:
    """An execution failure on the shard (the shard itself is healthy)."""

    request_id: int
    error_type: str
    message: str


@dataclass(frozen=True)
class SyncCatalogRequest:
    """Catalog-version broadcast: the shard rebuilds its entire local
    state (dataset, partitions, statistics, cached modules) from the new
    catalog.  Sent in-order before any execute compiled at the new
    version, so a shard never sees a plan from the future."""

    request_id: int
    catalog: Catalog


@dataclass(frozen=True)
class MetricsRequest:
    """Ask the shard for its full metrics-registry state
    (:meth:`~repro.obs.metrics.MetricsRegistry.dump_state`) for merging
    into the coordinator's registry."""

    request_id: int


@dataclass(frozen=True)
class MetricsResponse:
    request_id: int
    state: dict


@dataclass(frozen=True)
class AckResponse:
    """Generic success acknowledgement (sync, shutdown)."""

    request_id: int


@dataclass(frozen=True)
class ShutdownRequest:
    """Graceful stop: the shard acknowledges and exits its loop."""

    request_id: int
