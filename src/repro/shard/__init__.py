"""Multiprocess sharded serving.

The paper's access module — a serialized plan whose choose-plan
decisions are deferred to start-up — doubles as a cross-process plan
wire format: the coordinator optimizes once, ships the module JSON to N
shard processes, and each shard re-runs the start-up decisions against
its *shard-local* statistics before executing its horizontal partition.
The coordinator merges the partial results (multiset union, ordered
merge, partial-aggregate recombination).

Public surface::

    from repro.shard import ShardedQueryService

    service = ShardedQueryService(catalog, shards=8)
    result = service.execute("SELECT * FROM R WHERE R.a < :v", {"v": 120})
    service.close()
"""

from repro.shard.coordinator import ShardedQueryService, ShardedResult
from repro.shard.merge import MergeSpec, build_merge_plan, merge_partials

__all__ = [
    "MergeSpec",
    "ShardedQueryService",
    "ShardedResult",
    "build_merge_plan",
    "merge_partials",
]
