"""Scatter/gather coordinator: the multiprocess serving front door.

:class:`ShardedQueryService` mirrors the thread-pool
:class:`~repro.service.service.QueryService` API behind the same
:class:`~repro.service.frontend.AdmissionController`, but executes each
admitted invocation by scattering the compiled access module — the
paper's stored plan artifact, serialized to its versioned JSON wire form
— to N shard processes and gathering/merging their partial results.

Per invocation the coordinator:

1. resolves the statement in the shared plan cache (compile on miss),
2. derives the invocation's parameter values once — selectivities are a
   pure function of catalog domain sizes and the bound host variables,
   so they are shard-independent and ship with the request,
3. activates its own baseline start-up decision (which also handles
   transparent re-optimization after DDL), giving the reference
   signature that shard-local decisions are compared against: shards
   re-run choose-plan against *their* statistics, and any disagreement
   is the ``shard.decision_divergence`` metric, not an error,
4. scatters the (possibly partial-aggregate-rewritten) wire module,
   syncing any shard whose catalog lags first,
5. gathers partials — a crashed or hung shard is restarted and its
   request retried exactly once; a second failure surfaces as a typed
   :class:`~repro.errors.ShardFailedError` — and merges them
   (multiset union, ordered streaming merge, or partial-aggregate
   recombination per the :class:`~repro.shard.merge.MergeSpec`).

``in_process=True`` swaps spawned processes for in-thread
:class:`LocalShard` handles running the identical
:class:`~repro.shard.executor.ShardExecutor` code — the configuration
the qa differential uses, where determinism matters more than
parallelism.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing as mp
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import perf_counter
from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.catalog.partition import PartitionMode, partition_column
from repro.cost.model import CostModel
from repro.errors import ServiceClosedError, ServiceError, ShardFailedError
from repro.executor.database import Database
from repro.logical.predicates import CompareOp, HostVariable, Literal
from repro.obs.metrics import get_metrics, render_openmetrics
from repro.optimizer.optimizer import OptimizationMode
from repro.query.parser import parse_statement
from repro.runtime.access_module import WIRE_FORMAT_VERSION
from repro.service.cache import PlanCache
from repro.service.frontend import AdmissionController
from repro.shard.executor import ShardExecutor, decision_signature
from repro.shard.merge import MergeSpec, SchemaTriple, build_merge_plan, merge_partials
from repro.shard.wire import (
    AckResponse,
    ErrorResponse,
    ExecuteRequest,
    MetricsRequest,
    MetricsResponse,
    ShardConfig,
    ShutdownRequest,
    SyncCatalogRequest,
)
from repro.shard.worker import shard_main

#: Upper bound on coordinator-side rewritten-wire cache entries.
_WIRE_CACHE_CAPACITY = 512


@dataclass(frozen=True)
class _Request:
    """One admitted sharded invocation."""

    sql: str
    value_bindings: Mapping[str, object]
    mode: OptimizationMode
    parameter_values: Mapping[str, float] | None
    memory_pages: int | None
    execution_mode: str | None
    batch_size: int | None


@dataclass(frozen=True)
class ShardedResult:
    """Outcome of one sharded invocation.

    ``shard_decisions`` holds each shard's start-up decision signature
    (``(choose-node position, alternative index)`` pairs);
    ``decision_divergence`` counts shards whose signature differs from
    the coordinator's baseline — a legitimate consequence of shard-local
    statistics, surfaced rather than hidden.
    """

    rows: list[tuple]
    schema: tuple[SchemaTriple, ...]
    latency_seconds: float
    cache_hit: bool
    compiled_catalog_version: int
    driver: str
    baseline_decision: tuple[tuple[int, int], ...]
    shard_decisions: tuple[tuple[tuple[int, int], ...], ...]
    decision_divergence: int

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def project(self, attributes) -> list[tuple]:
        """Rows restricted/reordered to ``attributes`` (qa-oracle shape)."""
        positions = [
            self.schema.index((a.relation, a.name, a.domain_size))
            for a in attributes
        ]
        return [tuple(row[p] for p in positions) for row in self.rows]


# ----------------------------------------------------------------------
# Shard handles
# ----------------------------------------------------------------------
class _Waiter:
    """One in-flight request's rendezvous with the receiver thread."""

    __slots__ = ("shard_id", "_event", "_response")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._event = threading.Event()
        self._response: object = None

    def resolve(self, response: object) -> None:
        self._response = response
        self._event.set()

    def fail(self, message: str) -> None:
        self._response = ShardFailedError(message, shard_id=self.shard_id)
        self._event.set()

    def get(self, timeout: float) -> object:
        if not self._event.wait(timeout):
            raise ShardFailedError(
                f"shard {self.shard_id} did not answer within {timeout}s",
                shard_id=self.shard_id,
            )
        if isinstance(self._response, ShardFailedError):
            raise self._response
        return self._response


class ProcessShardHandle:
    """Transport to one spawned shard process.

    A single duplex pipe carries all traffic; sends are serialized under
    a lock (pipe writes are not atomic for large payloads) and a
    dedicated receiver thread routes responses to waiters by
    ``request_id``.  Pipe EOF or a send failure marks the shard dead and
    fails every outstanding waiter — the coordinator's retry/restart
    logic takes it from there.
    """

    def __init__(self, shard_id: int, config: ShardConfig) -> None:
        self.shard_id = shard_id
        ctx = mp.get_context("spawn")
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=shard_main,
            args=(child, config),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self._process.start()
        child.close()
        self._send_lock = threading.Lock()
        self._waiters: dict[int, _Waiter] = {}
        self._waiters_lock = threading.Lock()
        self._dead = threading.Event()
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"repro-shard-recv-{shard_id}",
            daemon=True,
        )
        self._receiver.start()

    @property
    def alive(self) -> bool:
        return not self._dead.is_set()

    def post(self, request) -> _Waiter:
        """Send ``request``; returns the waiter its response resolves."""
        waiter = _Waiter(self.shard_id)
        if self._dead.is_set():
            waiter.fail(f"shard {self.shard_id} is down")
            return waiter
        with self._waiters_lock:
            self._waiters[request.request_id] = waiter
        try:
            with self._send_lock:
                self._conn.send(request)
        except (OSError, ValueError, BrokenPipeError):
            self._mark_dead(f"shard {self.shard_id} pipe closed on send")
        return waiter

    def _receive_loop(self) -> None:
        while True:
            try:
                response = self._conn.recv()
            except (EOFError, OSError):
                self._mark_dead(
                    f"shard {self.shard_id} process exited unexpectedly"
                )
                return
            with self._waiters_lock:
                waiter = self._waiters.pop(
                    getattr(response, "request_id", -1), None
                )
            if waiter is not None:
                waiter.resolve(response)

    def _mark_dead(self, message: str) -> None:
        self._dead.set()
        with self._waiters_lock:
            waiters, self._waiters = list(self._waiters.values()), {}
        for waiter in waiters:
            waiter.fail(message)

    def kill(self) -> None:
        """Hard-kill the shard process (crash injection for tests)."""
        self._process.kill()

    def close(self, request_id: int, timeout: float = 5.0) -> None:
        """Graceful shutdown; escalates to terminate on an unresponsive
        or already-dead shard.  Always reaps the process."""
        if self.alive:
            try:
                self.post(ShutdownRequest(request_id=request_id)).get(timeout)
            except ShardFailedError:
                pass
        self._dead.set()
        self._process.join(timeout=timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=timeout)
        self._conn.close()

    def metrics_state(self, request_id: int, timeout: float) -> dict | None:
        """The shard's metrics-registry dump, or ``None`` when unreachable."""
        try:
            response = self.post(MetricsRequest(request_id=request_id)).get(
                timeout
            )
        except ShardFailedError:
            return None
        if isinstance(response, MetricsResponse):
            return response.state
        return None


class LocalShard:
    """In-thread stand-in for a shard process (``in_process=True``).

    Runs the identical :class:`ShardExecutor` dispatch, synchronously.
    Its metrics already land in the process-wide registry, so
    :meth:`metrics_state` reports nothing — merging would double-count.
    """

    def __init__(self, shard_id: int, config: ShardConfig) -> None:
        self.shard_id = shard_id
        self._executor = ShardExecutor(config)
        self._lock = threading.Lock()
        self.alive = True

    def post(self, request) -> _Waiter:
        waiter = _Waiter(self.shard_id)
        try:
            with self._lock:
                if isinstance(request, ExecuteRequest):
                    response: object = self._executor.execute(request)
                elif isinstance(request, SyncCatalogRequest):
                    self._executor.sync_catalog(request.catalog)
                    response = AckResponse(request_id=request.request_id)
                elif isinstance(request, ShutdownRequest):
                    response = AckResponse(request_id=request.request_id)
                else:
                    response = ErrorResponse(
                        request_id=getattr(request, "request_id", -1),
                        error_type="ServiceError",
                        message=f"unknown request {type(request).__name__}",
                    )
        except BaseException as error:
            response = ErrorResponse(
                request_id=getattr(request, "request_id", -1),
                error_type=type(error).__name__,
                message=str(error),
            )
        waiter.resolve(response)
        return waiter

    def kill(self) -> None:
        self.alive = False

    def close(self, request_id: int, timeout: float = 5.0) -> None:
        del request_id, timeout
        self.alive = False

    def metrics_state(self, request_id: int, timeout: float) -> dict | None:
        del request_id, timeout
        return None


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class _WirePlan:
    """Coordinator-side cache of one statement's rewritten wire form."""

    wire: str
    spec: MergeSpec
    driver: str
    module_key: str
    order_key: str | None  # qualified name shards pre-sort on (union only)
    order_triple: SchemaTriple | None
    # Partition pruning: when the statement carries an equality predicate
    # on the driver's hash-partition column, every qualifying driver row
    # lives on exactly one shard, so the invocation routes there instead
    # of scattering.  ``("binding", name)`` resolves per invocation from
    # the value bindings; ``("literal", value)`` is static.
    route: tuple[str, object] | None = None


@dataclass
class _DivergenceStat:
    """Per-statement record of shard-local decision disagreement."""

    invocations: int = 0
    diverged_invocations: int = 0
    diverged_shards: int = 0
    last_baseline: tuple = ()
    last_shard_decisions: tuple = ()
    signatures: dict = field(default_factory=dict)


class ShardedQueryService:
    """Scatter/gather query service over N shard processes."""

    def __init__(
        self,
        catalog: Catalog,
        model: CostModel | None = None,
        *,
        shards: int = 2,
        workers: int = 4,
        queue_limit: int = 64,
        cache_capacity: int = 128,
        cache_ttl_seconds: float | None = None,
        stale_threshold: float = 0.0,
        seed: int = 0,
        partition_mode: PartitionMode = PartitionMode.HASH,
        execution_mode: str = "fused",
        batch_size: int | None = None,
        in_process: bool = False,
        prewarm: bool = False,
        request_timeout_seconds: float = 120.0,
    ) -> None:
        if shards < 1:
            raise ValueError("sharded service needs at least one shard")
        self._catalog = catalog
        self._model = model if model is not None else CostModel()
        self._shard_count = shards
        self._seed = seed
        self._partition_mode = partition_mode
        self._execution_mode = execution_mode
        self._batch_size = batch_size
        self._in_process = in_process
        self._prewarm = prewarm
        self._timeout = request_timeout_seconds
        # Parameter derivation needs statistics only, never rows:
        # ``implied_selectivity`` is a function of domain sizes and the
        # bound value, so an unloaded Database suffices.
        self._params_db = Database(catalog, self._model)
        self.cache = PlanCache(
            catalog,
            self._model,
            capacity=cache_capacity,
            ttl_seconds=cache_ttl_seconds,
            stale_threshold=stale_threshold,
        )
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self._handles: list = [
            self._spawn_handle(shard_id) for shard_id in range(shards)
        ]
        self._known_versions: list[int] = [catalog.version] * shards
        self._slot_locks = [threading.Lock() for _ in range(shards)]
        self._wire_cache: dict[tuple, _WirePlan] = {}
        self._wire_lock = threading.Lock()
        self._divergence: dict[str, _DivergenceStat] = {}
        self._divergence_lock = threading.Lock()
        self._frontend: AdmissionController[_Request, ShardedResult] = (
            AdmissionController(
                workers=workers,
                queue_limit=queue_limit,
                handler=self._invoke,
                name_prefix="repro-shard-coord",
            )
        )

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        with self._id_lock:
            return next(self._ids)

    def _config(self, shard_id: int) -> ShardConfig:
        return ShardConfig(
            shard_id=shard_id,
            shard_count=self._shard_count,
            catalog=self._catalog,
            model=self._model,
            seed=self._seed,
            partition_mode=self._partition_mode,
            execution_mode=self._execution_mode,
            batch_size=self._batch_size,
            prewarm=self._prewarm,
        )

    def _spawn_handle(self, shard_id: int):
        if self._in_process:
            return LocalShard(shard_id, self._config(shard_id))
        return ProcessShardHandle(shard_id, self._config(shard_id))

    def _restart(self, slot: int, dead_handle) -> None:
        """Replace a failed shard with a fresh process at the current
        catalog.  The per-slot lock plus the identity check make
        concurrent restart attempts converge on one new process."""
        with self._slot_locks[slot]:
            if self._handles[slot] is not dead_handle:
                return  # another thread already restarted this slot
            dead_handle.close(self._next_id(), timeout=1.0)
            self._handles[slot] = self._spawn_handle(slot)
            self._known_versions[slot] = self._catalog.version
        get_metrics().counter("shard.restarts").inc()

    def _ensure_synced(self, slot: int):
        """The slot's live handle, its catalog brought up to date first.

        The sync travels on the same ordered pipe as the following
        execute, so the shard is guaranteed to rebuild before it sees a
        plan compiled at the new version.
        """
        handle = self._handles[slot]
        version = self._catalog.version
        if self._known_versions[slot] != version:
            with self._slot_locks[slot]:
                handle = self._handles[slot]
                if self._known_versions[slot] != version:
                    response = handle.post(
                        SyncCatalogRequest(
                            request_id=self._next_id(), catalog=self._catalog
                        )
                    ).get(self._timeout)
                    if isinstance(response, ErrorResponse):
                        raise ServiceError(
                            f"shard {slot} catalog sync failed: "
                            f"{response.message}"
                        )
                    self._known_versions[slot] = version
                    get_metrics().counter("shard.catalog_broadcasts").inc()
        return handle

    def sync_catalog(self) -> None:
        """Eagerly broadcast the current catalog version to every shard
        (the lazy path syncs a shard right before its next execute)."""
        for slot in range(self._shard_count):
            self._ensure_synced(slot)

    def kill_shard(self, shard_id: int) -> None:
        """Crash one shard process (failure-injection hook for tests)."""
        self._handles[shard_id].kill()

    # ------------------------------------------------------------------
    # Front door (mirrors QueryService)
    # ------------------------------------------------------------------
    def prepare(
        self, sql: str, mode: OptimizationMode = OptimizationMode.DYNAMIC
    ):
        """Warm the shared plan cache for ``sql`` (compiling if needed)."""
        if self._frontend.closed:
            raise ServiceClosedError("sharded query service is closed")
        entry, _ = self.cache.get_or_compile(sql, mode)
        return entry

    def submit(
        self,
        sql: str,
        value_bindings: Mapping[str, object] | None = None,
        *,
        mode: OptimizationMode = OptimizationMode.DYNAMIC,
        parameter_values: Mapping[str, float] | None = None,
        memory_pages: int | None = None,
        execution_mode: str | None = None,
        batch_size: int | None = None,
    ) -> "Future[ShardedResult]":
        """Admit one sharded invocation (same backpressure contract as
        :meth:`QueryService.submit`)."""
        request = _Request(
            sql=sql,
            value_bindings=dict(value_bindings or {}),
            mode=mode,
            parameter_values=(
                dict(parameter_values) if parameter_values is not None else None
            ),
            memory_pages=memory_pages,
            execution_mode=execution_mode,
            batch_size=batch_size,
        )
        return self._frontend.submit(request)

    def execute(
        self,
        sql: str,
        value_bindings: Mapping[str, object] | None = None,
        **kwargs,
    ) -> ShardedResult:
        """Synchronous invocation: :meth:`submit` plus waiting."""
        return self.submit(sql, value_bindings, **kwargs).result()

    def close(self, *, drain: bool = True) -> None:
        """Drain the front door, harvest shard metrics, stop the shards."""
        self._frontend.close(drain=drain)
        self.collect_metrics()
        for handle in self._handles:
            handle.close(self._next_id())
        self.cache.close()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def collect_metrics(self) -> int:
        """Merge every reachable shard's metrics into the coordinator's
        registry (counters add, gauges max, histograms add buckets).
        Returns the number of shards harvested."""
        registry = get_metrics()
        merged = 0
        for handle in self._handles:
            state = handle.metrics_state(self._next_id(), self._timeout)
            if state:
                registry.merge_state(state)
                merged += 1
        return merged

    def metrics_text(self) -> str:
        """Coordinator + merged shard metrics in OpenMetrics text form."""
        self.collect_metrics()
        return render_openmetrics(get_metrics())

    def divergence_report(self) -> dict[str, dict]:
        """Per-statement shard decision-divergence summary for analysis:
        how often shard-local statistics changed a start-up decision, and
        which signatures appeared."""
        with self._divergence_lock:
            return {
                sql: {
                    "invocations": stat.invocations,
                    "diverged_invocations": stat.diverged_invocations,
                    "diverged_shards": stat.diverged_shards,
                    "baseline": list(map(list, stat.last_baseline)),
                    "shard_decisions": [
                        list(map(list, sig))
                        for sig in stat.last_shard_decisions
                    ],
                    "signatures": dict(stat.signatures),
                }
                for sql, stat in self._divergence.items()
            }

    # ------------------------------------------------------------------
    # Invocation path
    # ------------------------------------------------------------------
    def _wire_plan(self, entry, module) -> _WirePlan:
        """The statement's rewritten wire form, cached per compiled module."""
        key = (
            entry.key.query_text,
            entry.key.mode.value,
            module.catalog_version,
            id(module),
        )
        with self._wire_lock:
            cached = self._wire_cache.get(key)
        if cached is not None:
            return cached
        payload = json.loads(module.to_json())
        shard_plan, spec = build_merge_plan(payload["plan"], self._catalog)
        wire = json.dumps(
            {
                "wire_version": WIRE_FORMAT_VERSION,
                "catalog_version": payload["catalog_version"],
                "plan": shard_plan,
            }
        )
        graph = entry.prepared.graph
        driver = max(
            graph.relations,
            key=lambda name: self._catalog.relation(name).stats.cardinality,
        )
        statement = parse_statement(entry.key.query_text, self._catalog)
        order_by = statement.order_by
        order_triple = (
            (order_by.relation, order_by.name, order_by.domain_size)
            if order_by is not None
            else None
        )
        plan = _WirePlan(
            wire=wire,
            spec=spec,
            driver=driver,
            module_key=f"{entry.key.query_text}|{entry.key.mode.value}",
            # Shards pre-sort only union-merged partials; aggregate
            # output is sorted after recombination.
            order_key=(
                order_by.qualified_name
                if order_by is not None and not spec.aggregate
                else None
            ),
            order_triple=order_triple,
            route=self._route_for(statement, driver),
        )
        with self._wire_lock:
            if len(self._wire_cache) >= _WIRE_CACHE_CAPACITY:
                self._wire_cache.clear()
            self._wire_cache[key] = plan
        return plan

    def _route_for(self, statement, driver: str) -> tuple[str, object] | None:
        """Partition-pruning eligibility for one statement.

        Routing is sound exactly when every qualifying driver row lives
        on one knowable shard: hash placement, a simple (single-branch
        SPJ) statement, and a top-level equality predicate on the
        driver's partition column.  Non-driver relations are replicated,
        so joins stay complete under pruning.
        """
        if self._partition_mode is not PartitionMode.HASH:
            return None
        if not statement.statement.is_simple:
            return None
        graph = statement.graph
        attributes = list(self._catalog.relation(driver).schema)
        key_name = attributes[
            partition_column(self._catalog, driver)
        ].qualified_name
        for predicate in graph.selections_on(driver):
            if predicate.op is not CompareOp.EQ:
                continue
            if predicate.attribute.qualified_name != key_name:
                continue
            if isinstance(predicate.operand, HostVariable):
                return ("binding", predicate.operand.name)
            if isinstance(predicate.operand, Literal):
                return ("literal", predicate.operand.value)
        return None

    def _resolve_route(
        self, route: tuple[str, object] | None, value_bindings: Mapping[str, object]
    ) -> int | None:
        """The single shard an invocation routes to, or ``None`` to scatter."""
        if route is None:
            return None
        kind, operand = route
        value = value_bindings.get(operand) if kind == "binding" else operand
        try:
            return int(value) % self._shard_count  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None  # unbound or non-integral: fall back to scatter

    def _scatter(self, build_request, slots: list[int] | None = None) -> list:
        """Send one request to each target shard, gather every response.

        ``slots`` narrows the fan-out for routed (partition-pruned)
        invocations; the default is every shard.  All sends complete
        before any wait, so shards execute concurrently.  A failed shard
        (crash, EOF, timeout) is restarted and its request retried
        exactly once on the fresh process; a second failure propagates as
        the typed error.  Execution errors reported by a healthy shard
        are never retried — they are deterministic.
        """
        metrics = get_metrics()
        pending = []
        for slot in slots if slots is not None else range(self._shard_count):
            try:
                handle = self._ensure_synced(slot)
                waiter = handle.post(build_request(slot, self._next_id()))
            except ShardFailedError:
                waiter = None  # fall through to the retry path
            pending.append((slot, waiter))
        responses = []
        for slot, waiter in pending:
            try:
                if waiter is None:
                    raise ShardFailedError(
                        f"shard {slot} unavailable", shard_id=slot
                    )
                response = waiter.get(self._timeout)
            except ShardFailedError as failure:
                metrics.counter("shard.failures").inc()
                self._restart(slot, self._handles[slot])
                try:
                    handle = self._ensure_synced(slot)
                    response = handle.post(
                        build_request(slot, self._next_id())
                    ).get(self._timeout)
                except ShardFailedError:
                    raise ShardFailedError(
                        f"shard {slot} failed twice (original failure: "
                        f"{failure}); giving up",
                        shard_id=slot,
                        retried=True,
                    ) from failure
            if isinstance(response, ErrorResponse):
                raise ServiceError(
                    f"shard {slot} execution failed "
                    f"({response.error_type}): {response.message}"
                )
            responses.append(response)
        return responses

    def _record_divergence(
        self, sql: str, baseline, shard_signatures
    ) -> int:
        diverged = sum(
            1 for signature in shard_signatures if signature != baseline
        )
        if diverged:
            get_metrics().counter("shard.decision_divergence").inc(diverged)
        with self._divergence_lock:
            stat = self._divergence.setdefault(sql, _DivergenceStat())
            stat.invocations += 1
            stat.diverged_invocations += 1 if diverged else 0
            stat.diverged_shards += diverged
            stat.last_baseline = baseline
            stat.last_shard_decisions = tuple(shard_signatures)
            for signature in shard_signatures:
                label = json.dumps(list(map(list, signature)))
                stat.signatures[label] = stat.signatures.get(label, 0) + 1
        return diverged

    def _invoke(
        self, state, request: _Request, started: float
    ) -> ShardedResult:
        del state  # coordinator workers carry no per-thread state
        metrics = get_metrics()
        entry, hit = self.cache.get_or_compile(request.sql, request.mode)
        prepared = entry.prepared
        parameter_values = request.parameter_values
        if parameter_values is None:
            parameter_values = prepared.derive_parameters(
                self._params_db,
                request.value_bindings,
                memory_pages=request.memory_pages,
            )
        with entry.lock:
            # The baseline activation doubles as the transparent
            # re-optimize-on-DDL path (surfaced in the recompile counter,
            # exactly like the thread-pool service) and yields the
            # reference decision signature for divergence accounting.
            reoptimizations_before = prepared.reoptimizations
            activation = prepared.activate(parameter_values)
            if prepared.reoptimizations != reoptimizations_before:
                metrics.counter("plan_cache.recompiles").inc()
            module = prepared.module
            compiled_version = module.catalog_version
            baseline, _labels = decision_signature(
                module.plan, activation.decision.choices
            )
            wire_plan = self._wire_plan(entry, module)

        def build_request(slot: int, request_id: int) -> ExecuteRequest:
            del slot  # every shard receives the identical request body
            return ExecuteRequest(
                request_id=request_id,
                module_key=wire_plan.module_key,
                wire=wire_plan.wire,
                space=prepared.graph.parameters,
                driver=wire_plan.driver,
                catalog_version=compiled_version,
                mode=request.mode.value,
                value_bindings=request.value_bindings,
                parameter_values=parameter_values,
                memory_pages=request.memory_pages,
                execution_mode=request.execution_mode,
                batch_size=request.batch_size,
                order_key=wire_plan.order_key,
            )

        target = self._resolve_route(wire_plan.route, request.value_bindings)
        if target is not None:
            metrics.counter("shard.routed").inc()
            responses = self._scatter(build_request, slots=[target])
        else:
            metrics.counter("shard.scattered").inc()
            responses = self._scatter(build_request)
        shard_signatures = tuple(r.decision_signature for r in responses)
        divergence = self._record_divergence(
            entry.key.query_text, baseline, shard_signatures
        )
        rows, schema = merge_partials(
            wire_plan.spec,
            [(r.rows, r.schema) for r in responses],
            order_key=wire_plan.order_triple,
        )
        elapsed = perf_counter() - started
        metrics.histogram("service.latency").observe(elapsed)
        metrics.counter("service.completed").inc()
        metrics.counter("shard.invocations").inc()
        return ShardedResult(
            rows=rows,
            schema=schema,
            latency_seconds=elapsed,
            cache_hit=hit,
            compiled_catalog_version=compiled_version,
            driver=wire_plan.driver,
            baseline_decision=baseline,
            shard_decisions=shard_signatures,
            decision_divergence=divergence,
        )
