"""Shard process entry point: a request/response loop over one pipe.

``shard_main`` is the target of the spawned process.  It answers
strictly in arrival order (the coordinator's receiver thread routes by
``request_id``, so ordering is a simplification, not a contract), and it
never lets a per-request failure kill the process: execution errors
travel back as :class:`ErrorResponse` and the loop continues — only pipe
EOF (coordinator gone) or an explicit :class:`ShutdownRequest` ends it.

Spawn-safety: the module imports everything it needs at module level, so
``spawn`` children re-import cleanly without inheriting parent state; the
per-process metrics registry starts empty and is harvested by the
coordinator via :class:`MetricsRequest` before shutdown.
"""

from __future__ import annotations

from multiprocessing.connection import Connection

from repro.obs.metrics import get_metrics
from repro.shard.executor import ShardExecutor
from repro.shard.wire import (
    AckResponse,
    ErrorResponse,
    ExecuteRequest,
    MetricsRequest,
    MetricsResponse,
    ShardConfig,
    ShutdownRequest,
    SyncCatalogRequest,
)


def shard_main(conn: Connection, config: ShardConfig) -> None:
    """Serve requests on ``conn`` until shutdown or coordinator EOF."""
    executor = ShardExecutor(config)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return
        try:
            if isinstance(request, ExecuteRequest):
                response: object = executor.execute(request)
            elif isinstance(request, SyncCatalogRequest):
                executor.sync_catalog(request.catalog)
                response = AckResponse(request_id=request.request_id)
            elif isinstance(request, MetricsRequest):
                response = MetricsResponse(
                    request_id=request.request_id,
                    state=get_metrics().dump_state(),
                )
            elif isinstance(request, ShutdownRequest):
                conn.send(AckResponse(request_id=request.request_id))
                return
            else:
                response = ErrorResponse(
                    request_id=getattr(request, "request_id", -1),
                    error_type="ServiceError",
                    message=f"unknown request type {type(request).__name__}",
                )
        except BaseException as error:  # answered, never fatal
            response = ErrorResponse(
                request_id=getattr(request, "request_id", -1),
                error_type=type(error).__name__,
                message=str(error),
            )
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            return
