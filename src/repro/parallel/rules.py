"""Parallelization rules: build the parallel alternative of a serial plan.

The optimizer calls :func:`parallel_alternative` on each retained root
winner when the query declares a degree-of-parallelism parameter.  The
returned plan wraps the largest safely partitionable subtree in an
:class:`~repro.parallel.plan.ExchangeNode`; the serial winner and its
parallel alternative then compete in the same winner set, where their
overlapping cost intervals (cheap at high DOP, startup-penalized at DOP=1)
keep both alive under a choose-plan operator.

The parallel cost transform is *strictly increasing in the serial subtree
cost* at every parameter binding (the exchange divides whatever the
subtree costs and adds binding-independent overheads), so the ordering of
serial winners is preserved under parallelization — the reason the
``gᵢ = dᵢ`` invariant survives the new parameter: the run-time optimizer's
winner and the dynamic plan's activated alternative transform identically.

Safety conditions, checked structurally:

* Only SPJ subtrees (scans, filters, joins, sorts, projections,
  choose-plans) are partitioned.  Aggregates are never striped — a
  partial group per worker would be wrong — so aggregate plans
  parallelize their *input* subtree and aggregate serially above the
  exchange.
* The striped *driver* relation is preferably one never probed through an
  index join inner; when every scanned relation is also probed somewhere
  (possible once choose-plans union alternatives' probe sets), the
  executor falls back to striping the probing join's output stream, which
  stays correct at reduced I/O savings.
* Ordered subtrees use a MERGE exchange: a stripe is a subsequence of the
  serial stream, so each worker's output stays sorted and a heap merge
  restores the global order.
"""

from __future__ import annotations

from repro.cost.context import CostContext
from repro.cost.formulas import pages_for
from repro.errors import BindingError
from repro.parallel.plan import ExchangeMode, ExchangeNode
from repro.physical.plan import (
    BtreeScanNode,
    ChoosePlanNode,
    FileScanNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexJoinNode,
    MergeJoinNode,
    NestedLoopsJoinNode,
    PlanNode,
    ProjectNode,
    SortedAggregateNode,
    SortNode,
    _intermediate_record_bytes,
    iter_plan_nodes,
    leaf_access_info,
)

_SPJ_NODE_TYPES = (
    FileScanNode,
    BtreeScanNode,
    FilterNode,
    HashJoinNode,
    NestedLoopsJoinNode,
    MergeJoinNode,
    IndexJoinNode,
    SortNode,
    ProjectNode,
    ChoosePlanNode,
)


def _is_spj(plan: PlanNode) -> bool:
    """True when every node of the subtree is partitioning-safe."""
    return all(isinstance(node, _SPJ_NODE_TYPES) for node in iter_plan_nodes(plan))


def _choose_driver(ctx: CostContext, plan: PlanNode) -> str | None:
    """Pick the relation whose tuples get striped across workers.

    The largest scanned relation maximizes the striped I/O.  Relations that
    appear as an index-join inner anywhere in the DAG are *deprioritized*
    but not disqualified: if a chosen alternative probes the driver, the
    executor stripes the index join's output stream instead of the scan
    (each driver tuple still reaches exactly one worker, just with less
    I/O saved).  Keeping the driver total — any plan with a scan leaf has
    one — is what keeps parallelization symmetric between dynamic plans
    (whose embedded choose-plans union the probed sets of *all*
    alternatives) and run-time point plans, preserving gᵢ = dᵢ.
    """
    scanned: set[str] = set()
    probed: set[str] = set()
    for node in iter_plan_nodes(plan):
        if isinstance(node, (FileScanNode, BtreeScanNode)):
            scanned.add(node.relation)
        elif isinstance(node, IndexJoinNode):
            probed.add(node.inner_relation)
    candidates = sorted(scanned - probed) or sorted(scanned)
    if not candidates:
        return None
    return max(candidates, key=lambda r: ctx.catalog.relation(r).stats.cardinality)


def _repartition_keys(
    plan: HashJoinNode,
) -> tuple[tuple[str, object], ...] | None:
    """Hash keys for co-partitioning a join over two base-relation inputs.

    Both inputs must be pure single-relation access subtrees.  Partitioning
    on the first equijoin predicate is sufficient even with several
    predicates: rows satisfying all predicates satisfy the first, so no
    match crosses a partition boundary.
    """
    build_info = leaf_access_info(plan.inputs[0])
    probe_info = leaf_access_info(plan.inputs[1])
    if build_info is None or probe_info is None:
        return None
    build_relation, _ = build_info
    probe_relation, _ = probe_info
    predicate = plan.predicates[0]
    try:
        keys = (
            (build_relation, predicate.attribute_for(build_relation)),
            (probe_relation, predicate.attribute_for(probe_relation)),
        )
    except BindingError:
        return None
    return tuple(sorted(keys, key=lambda pair: pair[0]))


def _build_spills(ctx: CostContext, plan: HashJoinNode) -> bool:
    """True when the hash join's build side exceeds guaranteed memory."""
    build_pages = pages_for(
        plan.inputs[0].cardinality.high, _intermediate_record_bytes(ctx), ctx.model
    )
    return build_pages > ctx.memory_pages.low


def _exchange(ctx: CostContext, plan: PlanNode) -> ExchangeNode | None:
    """Wrap an SPJ subtree in the appropriate exchange, or None."""
    if not _is_spj(plan):
        return None
    if plan.order is not None:
        driver = _choose_driver(ctx, plan)
        if driver is None:
            return None
        return ExchangeNode(
            ctx, plan, ExchangeMode.MERGE, driver=driver, merge_key=plan.order
        )
    if isinstance(plan, HashJoinNode) and _build_spills(ctx, plan):
        keys = _repartition_keys(plan)
        if keys is not None:
            return ExchangeNode(
                ctx, plan, ExchangeMode.REPARTITION, partition_keys=keys
            )
    driver = _choose_driver(ctx, plan)
    if driver is None:
        return None
    return ExchangeNode(ctx, plan, ExchangeMode.PARTITION, driver=driver)


def parallel_alternative(ctx: CostContext, plan: PlanNode) -> PlanNode | None:
    """The parallel twin of a serial plan, or None when none is safe.

    The output is row-equivalent to ``plan`` (same multiset; same order
    whenever ``plan`` delivers one).
    """
    if isinstance(plan, ProjectNode):
        inner = parallel_alternative(ctx, plan.inputs[0])
        if inner is None:
            return None
        return ProjectNode(ctx, inner, plan.attributes)
    if isinstance(plan, SortNode):
        if _is_spj(plan):
            # Parallel sort: each worker sorts its stripe, merge restores
            # the total order.
            return _exchange(ctx, plan)
        # Sort above an aggregate: parallelize below the aggregate.
        inner = parallel_alternative(ctx, plan.inputs[0])
        if inner is None:
            return None
        return SortNode(ctx, inner, plan.key)
    if isinstance(plan, HashAggregateNode):
        exchanged = _exchange(ctx, plan.inputs[0])
        if exchanged is None:
            return None
        return HashAggregateNode(ctx, exchanged, plan.spec)
    if isinstance(plan, SortedAggregateNode):
        exchanged = _exchange(ctx, plan.inputs[0])
        if exchanged is None or exchanged.order != plan.inputs[0].order:
            return None
        return SortedAggregateNode(ctx, exchanged, plan.spec)
    return _exchange(ctx, plan)
