"""Exchange execution: worker threads, bounded queues, merge.

The consumer side of an exchange is an ordinary Volcano iterator; the
producer side is ``dop`` worker threads, each running a private clone of
the child iterator tree restricted to its partition (see
:class:`PartitionSpec`).  Workers push fixed-size row batches into bounded
queues — the queue bound is the backpressure mechanism: a worker that gets
ahead of the consumer blocks on ``put`` until the consumer catches up.

Failure handling is cooperative: a shared cancellation event stops every
worker as soon as the consumer goes away (generator closed early) or any
worker raises; worker exceptions travel through the queue and re-raise in
the consumer with their original type.  All queue waits are short timed
operations in cancel-checking loops, so no thread can block forever.

Unordered modes (PARTITION / REPARTITION) share one queue: rows arrive
interleaved in completion order, which is fine because these modes promise
a multiset, not an order.  MERGE mode gives each worker its own queue and
heap-merges the per-worker sorted streams, restoring the global order.
"""

from __future__ import annotations

import heapq
import queue
import threading
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.catalog.schema import Attribute
from repro.executor.database import Database
from repro.executor.batch import BatchIterator
from repro.executor.iterators import PlanIterator
from repro.executor.tuples import Row, RowBatch, RowSchema
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.parallel.plan import ExchangeMode

BATCH_ROWS = 64  # rows per queue item: amortizes queue overhead
QUEUE_BATCHES = 16  # bounded-queue depth per worker: the backpressure window
_PUT_TIMEOUT = 0.05  # cancel-check period while a producer waits on a full queue
_GET_TIMEOUT = 0.05  # cancel-check period while the consumer waits on data


@dataclass(frozen=True)
class PartitionSpec:
    """Which slice of the input one exchange worker owns.

    The executor threads a spec through iterator construction; scan
    iterators of the ``driver`` relation are striped to the worker's page
    range (or key subsequence), and under REPARTITION every scan listed in
    ``hash_keys`` keeps only rows whose join-key hash lands in the
    worker's bucket.
    """

    mode: ExchangeMode
    worker: int
    dop: int
    driver: str | None
    hash_keys: Mapping[str, Attribute]


class StripedFileScanIterator(PlanIterator):
    """Contiguous page-range stripe of a heap-file scan.

    Worker ``w`` of ``dop`` reads pages ``[w*P/dop, (w+1)*P/dop)``: the
    stripes are disjoint, cover the file, and stay sequential within each
    worker — together the workers read each page exactly once.
    """

    __slots__ = ("db", "relation", "worker", "dop")

    def __init__(self, db: Database, relation: str, worker: int, dop: int) -> None:
        self.db = db
        self.relation = relation
        self.worker = worker
        self.dop = dop
        self.schema = RowSchema.from_schema(db.catalog.relation(relation).schema)

    def rows(self) -> Iterator[Row]:
        heap = self.db.heap(self.relation)
        heap.flush()
        pages = self.db.disk.page_count(heap.name)
        first = self.worker * pages // self.dop
        last = (self.worker + 1) * pages // self.dop
        for _, record in heap.scan_pages(first, last):
            yield record


class ModuloStripeIterator(PlanIterator):
    """Keep every ``dop``-th row of a deterministic input stream.

    The stripe fallback for ordered scans (B-tree ranges): a subsequence
    of the serial stream, so per-worker sort order is preserved.
    """

    __slots__ = ("child", "worker", "dop")

    def __init__(self, child: PlanIterator, worker: int, dop: int) -> None:
        self.child = child
        self.worker = worker
        self.dop = dop
        self.schema = child.schema

    def rows(self) -> Iterator[Row]:
        worker, dop = self.worker, self.dop
        for index, row in enumerate(self.child.rows()):
            if index % dop == worker:
                yield row


class HashStripeIterator(PlanIterator):
    """Keep rows whose key hash falls in this worker's bucket."""

    __slots__ = ("child", "key_position", "worker", "dop")

    def __init__(
        self, child: PlanIterator, key_position: int, worker: int, dop: int
    ) -> None:
        self.child = child
        self.key_position = key_position
        self.worker = worker
        self.dop = dop
        self.schema = child.schema

    def rows(self) -> Iterator[Row]:
        position, worker, dop = self.key_position, self.worker, self.dop
        for row in self.child.rows():
            if hash(row[position]) % dop == worker:
                yield row


class ExchangeIterator(PlanIterator):
    """Consumer end of an exchange: spawn workers, reassemble streams."""

    __slots__ = (
        "label",
        "dop",
        "_workers",
        "merge_position",
        "_worker_rows",
        "_max_queue_depth",
        "_telemetry",
    )

    def __init__(
        self,
        label: str,
        dop: int,
        merge_key: Attribute | None,
        build_worker: Callable[[int], PlanIterator],
        telemetry: tuple | None = None,
    ) -> None:
        self.label = label
        self.dop = max(1, dop)
        self._workers = [build_worker(i) for i in range(self.dop)]
        self.schema = self._workers[0].schema
        self.merge_position = (
            self.schema.position(merge_key) if merge_key is not None else None
        )
        self._worker_rows = [0] * self.dop
        self._max_queue_depth = 0
        # (ledger, plan signature, cardinality interval, catalog version):
        # when set, the exchange reports its total produced rows — the
        # partition breaker's observed cardinality — to the telemetry
        # ledger after a threaded run.
        self._telemetry = telemetry

    def rows(self) -> Iterator[Row]:
        if self.dop == 1:
            # Inline fast path: no threads, no queues, no overhead — the
            # executor's DOP=1 parallel plan behaves like the serial one.
            yield from self._workers[0].rows()
            return
        if self.merge_position is None:
            yield from self._run(shared_queue=True)
        else:
            yield from self._run(shared_queue=False)
        self._record_metrics()

    # ------------------------------------------------------------------
    # Threaded execution
    # ------------------------------------------------------------------
    def _run(self, shared_queue: bool) -> Iterator[Row]:
        if shared_queue:
            queues = [queue.Queue(maxsize=QUEUE_BATCHES * self.dop)]
            outputs = [queues[0]] * self.dop
        else:
            queues = [queue.Queue(maxsize=QUEUE_BATCHES) for _ in range(self.dop)]
            outputs = queues
        cancel = threading.Event()
        tracer = get_tracer()
        parent = tracer.current_span() if tracer.enabled else None

        def worker_body(index: int, iterator, out) -> None:
            if parent is None:
                self._produce(index, iterator, out, cancel)
                return
            # Cross-thread propagation: adopt the coordinator's span so
            # this worker's spans/events nest inside the query's trace.
            with tracer.attach(parent):
                with tracer.span(
                    "parallel.worker", label=self.label, worker=index
                ):
                    self._produce(index, iterator, out, cancel)

        threads = [
            threading.Thread(
                target=worker_body,
                args=(index, iterator, outputs[index]),
                name=f"exchange-worker-{index}",
                daemon=True,
            )
            for index, iterator in enumerate(self._workers)
        ]
        for thread in threads:
            thread.start()
        try:
            if shared_queue:
                yield from self._consume_interleaved(queues[0], cancel)
            else:
                yield from self._consume_merge(queues, cancel)
        finally:
            cancel.set()
            # Unblock producers that may be waiting on a full queue, then
            # reap the threads.
            for q in queues:
                try:
                    while True:
                        q.get_nowait()
                except queue.Empty:
                    pass
            for thread in threads:
                thread.join(timeout=5.0)

    def _produce(
        self,
        index: int,
        iterator: PlanIterator,
        out: queue.Queue,
        cancel: threading.Event,
    ) -> None:
        produced = 0
        try:
            batch: list[Row] = []
            for row in iterator.rows():
                batch.append(row)
                if len(batch) >= BATCH_ROWS:
                    produced += len(batch)
                    if not self._put(out, ("rows", index, batch), cancel):
                        return
                    batch = []
            if batch:
                produced += len(batch)
                if not self._put(out, ("rows", index, batch), cancel):
                    return
            self._put(out, ("done", index, None), cancel)
        except BaseException as exc:  # noqa: BLE001 — must cross the thread boundary
            self._put(out, ("error", index, exc), cancel)
        finally:
            self._worker_rows[index] = produced

    @staticmethod
    def _put(out: queue.Queue, item: tuple, cancel: threading.Event) -> bool:
        while not cancel.is_set():
            try:
                out.put(item, timeout=_PUT_TIMEOUT)
                return True
            except queue.Full:
                continue
        return False

    def _get(self, source: queue.Queue, cancel: threading.Event) -> tuple:
        while True:
            depth = source.qsize()
            if depth > self._max_queue_depth:
                self._max_queue_depth = depth
            try:
                return source.get(timeout=_GET_TIMEOUT)
            except queue.Empty:
                if cancel.is_set():
                    raise RuntimeError(
                        "exchange cancelled while awaiting worker output"
                    ) from None

    def _consume_interleaved(
        self, source: queue.Queue, cancel: threading.Event
    ) -> Iterator[Row]:
        remaining = self.dop
        while remaining:
            kind, _index, payload = self._get(source, cancel)
            if kind == "rows":
                yield from payload
            elif kind == "done":
                remaining -= 1
            else:
                cancel.set()
                raise payload

    def _consume_merge(
        self, queues: list[queue.Queue], cancel: threading.Event
    ) -> Iterator[Row]:
        position = self.merge_position
        assert position is not None

        def stream(source: queue.Queue) -> Iterator[Row]:
            while True:
                kind, _index, payload = self._get(source, cancel)
                if kind == "rows":
                    yield from payload
                elif kind == "done":
                    return
                else:
                    cancel.set()
                    raise payload

        # heapq.merge is deterministic on ties: equal keys resolve by
        # stream position, and each worker's stream is itself
        # deterministic, so a merged parallel run is repeatable.
        yield from heapq.merge(
            *(stream(q) for q in queues), key=lambda row: row[position]
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _record_metrics(self) -> None:
        registry = get_metrics()
        total = sum(self._worker_rows)
        registry.counter("parallel.exchanges").inc()
        registry.counter("parallel.worker_rows").inc(total)
        registry.gauge("parallel.queue_depth").max(float(self._max_queue_depth))
        if total:
            skew = max(self._worker_rows) / (total / self.dop)
            registry.gauge("parallel.partition_skew").max(skew)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "parallel.exchange",
                label=self.label,
                dop=self.dop,
                rows_per_worker=list(self._worker_rows),
                max_queue_depth=self._max_queue_depth,
            )
        if self._telemetry is not None:
            ledger, signature, interval, version = self._telemetry
            ledger.record(
                signature,
                self.label,
                interval,
                float(total),
                version,
                detail={
                    "rows_per_worker": list(self._worker_rows),
                    "dop": self.dop,
                },
            )


# ----------------------------------------------------------------------
# Vectorized exchange
# ----------------------------------------------------------------------
class BatchStripedFileScanIterator(BatchIterator):
    """Page-range stripe delivered as page-aligned batches.

    The batch analogue of :class:`StripedFileScanIterator`, reading its
    contiguous stripe through the buffer pool like the serial batch scan.
    """

    __slots__ = ("db", "relation", "worker", "dop", "batch_size")

    def __init__(
        self, db: Database, relation: str, worker: int, dop: int, batch_size: int
    ) -> None:
        self.db = db
        self.relation = relation
        self.worker = worker
        self.dop = dop
        self.batch_size = batch_size
        self.schema = RowSchema.from_schema(db.catalog.relation(relation).schema)

    def batches(self) -> Iterator[RowBatch]:
        heap = self.db.heap(self.relation)
        heap.flush()
        pages = self.db.disk.page_count(heap.name)
        first = self.worker * pages // self.dop
        last = (self.worker + 1) * pages // self.dop
        size = self.batch_size
        chunk = max(1, -(-size // heap.records_per_page))
        read_range = self.db.buffer.read_page_range
        pending: list = []
        for start in range(first, last, chunk):
            for payload in read_range(heap.name, start, min(start + chunk, last)):
                pending.extend(payload)
            if len(pending) >= size:
                yield RowBatch(pending)
                pending = []
        if pending:
            yield RowBatch(pending)


class BatchModuloStripeIterator(BatchIterator):
    """Keep every ``dop``-th row of a deterministic batch stream.

    The global row index carries across batch boundaries, so the kept
    subsequence is identical to the row-mode stripe regardless of how the
    input happens to be blocked.
    """

    __slots__ = ("child", "worker", "dop")

    def __init__(self, child: BatchIterator, worker: int, dop: int) -> None:
        self.child = child
        self.worker = worker
        self.dop = dop
        self.schema = child.schema

    def batches(self) -> Iterator[RowBatch]:
        worker, dop = self.worker, self.dop
        index = 0
        for batch in self.child.batches():
            rows = batch.rows
            kept = [
                row
                for i, row in enumerate(rows, index)
                if i % dop == worker
            ]
            index += len(rows)
            if kept:
                yield RowBatch(kept)


class BatchHashStripeIterator(BatchIterator):
    """Keep rows whose key hash falls in this worker's bucket."""

    __slots__ = ("child", "key_position", "worker", "dop")

    def __init__(
        self, child: BatchIterator, key_position: int, worker: int, dop: int
    ) -> None:
        self.child = child
        self.key_position = key_position
        self.worker = worker
        self.dop = dop
        self.schema = child.schema

    def batches(self) -> Iterator[RowBatch]:
        position, worker, dop = self.key_position, self.worker, self.dop
        for batch in self.child.batches():
            kept = [
                row for row in batch.rows if hash(row[position]) % dop == worker
            ]
            if kept:
                yield RowBatch(kept)


class BatchExchangeIterator(ExchangeIterator):
    """Exchange over batch workers: blocks ship through the queues as-is.

    Where the row exchange re-packs its child's row stream into
    ``BATCH_ROWS``-sized lists before every ``put`` (one append per row),
    the batch exchange enqueues each worker's ``RowBatch`` row list
    *directly* — no re-batching copy, one queue operation per block.  The
    queue bound still provides backpressure; it now counts blocks of the
    executor's ``batch_size`` rather than ``BATCH_ROWS`` rows.

    MERGE mode flattens the per-worker sorted streams for ``heapq.merge``
    (order restoration is inherently per-row) and re-blocks the merged
    output.
    """

    __slots__ = ("batch_size",)

    def __init__(
        self,
        label: str,
        dop: int,
        merge_key: Attribute | None,
        build_worker: Callable[[int], BatchIterator],
        batch_size: int,
        telemetry: tuple | None = None,
    ) -> None:
        super().__init__(label, dop, merge_key, build_worker, telemetry)
        self.batch_size = batch_size

    def batches(self) -> Iterator[RowBatch]:
        if self.dop == 1:
            # Inline fast path, mirroring the row exchange at DOP=1.
            yield from self._workers[0].batches()
            return
        if self.merge_position is None:
            yield from self._run(shared_queue=True)
        else:
            yield from self._run(shared_queue=False)
        self._record_metrics()

    def rows(self) -> Iterator[Row]:
        for batch in self.batches():
            yield from batch.rows

    def _produce(
        self,
        index: int,
        iterator: BatchIterator,
        out: queue.Queue,
        cancel: threading.Event,
    ) -> None:
        produced = 0
        try:
            for batch in iterator.batches():
                rows = batch.rows
                produced += len(rows)
                if not self._put(out, ("rows", index, rows), cancel):
                    return
            self._put(out, ("done", index, None), cancel)
        except BaseException as exc:  # noqa: BLE001 — must cross the thread boundary
            self._put(out, ("error", index, exc), cancel)
        finally:
            self._worker_rows[index] = produced

    def _consume_interleaved(
        self, source: queue.Queue, cancel: threading.Event
    ) -> Iterator[RowBatch]:
        remaining = self.dop
        while remaining:
            kind, _index, payload = self._get(source, cancel)
            if kind == "rows":
                yield RowBatch(payload)
            elif kind == "done":
                remaining -= 1
            else:
                cancel.set()
                raise payload

    def _consume_merge(
        self, queues: list[queue.Queue], cancel: threading.Event
    ) -> Iterator[RowBatch]:
        position = self.merge_position
        assert position is not None

        def stream(source: queue.Queue) -> Iterator[Row]:
            while True:
                kind, _index, payload = self._get(source, cancel)
                if kind == "rows":
                    yield from payload
                elif kind == "done":
                    return
                else:
                    cancel.set()
                    raise payload

        merged = heapq.merge(
            *(stream(q) for q in queues), key=lambda row: row[position]
        )
        size = self.batch_size
        pending: list = []
        for row in merged:
            pending.append(row)
            if len(pending) >= size:
                yield RowBatch(pending)
                pending = []
        if pending:
            yield RowBatch(pending)
