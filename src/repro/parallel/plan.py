"""The Volcano exchange operator as a physical plan node.

Graefe's exchange operator encapsulates intra-query parallelism behind the
ordinary iterator interface: the subtree below an :class:`ExchangeNode`
runs as ``dop`` worker clones, each restricted to a disjoint partition of
the work, and the exchange reassembles their output streams.  Everything
above the exchange — including the choose-plan machinery — is oblivious to
the parallelism.

The degree of parallelism is a run-time parameter in exactly the paper's
sense: an interval at compile time (``1`` up to the declared maximum), a
point once the query starts.  An exchange's compile-time cost interval
therefore straddles the serial plan's (cheaper at high DOP, strictly more
expensive at DOP=1 because of worker startup), the winner set keeps both,
and the start-up decision procedure activates the serial or parallel
alternative once the actual DOP is bound.

Three partitioning modes:

``PARTITION``
    Fragment-and-replicate: each worker runs a full clone of the subtree
    with one designated *driver* relation's scan restricted to a disjoint
    stripe.  Every output row derives from exactly one driver row, so the
    union of the workers' outputs is exactly the serial multiset.

``REPARTITION``
    Hash co-partitioning for a memory-starved hash join over two base
    relations: both sides' scans keep only rows whose join-key hash lands
    in the worker's bucket.  Matching rows hash identically, so joins never
    cross partitions, and each worker's build table shrinks by ~DOP.

``MERGE``
    Order-preserving exchange: workers produce stripe-restricted streams
    that are each sorted on ``merge_key`` (a stripe is a subsequence of the
    serial stream, so per-worker order survives), and the consumer heap-
    merges them back into one globally sorted stream.
"""

from __future__ import annotations

import enum

from repro.catalog.schema import Attribute
from repro.cost import formulas
from repro.cost.context import CostContext
from repro.errors import PlanError
from repro.physical.plan import PlanNode
from repro.util.interval import Interval


class ExchangeMode(enum.Enum):
    """How an exchange partitions its input subtree's work."""

    PARTITION = "partition"
    REPARTITION = "repartition"
    MERGE = "merge"


class ExchangeNode(PlanNode):
    """Run the input subtree partitioned across ``dop`` workers.

    ``driver`` names the relation whose scan is striped (PARTITION and
    MERGE modes); ``partition_keys`` maps each base relation to its hash
    key (REPARTITION mode); ``merge_key`` is the sort order a MERGE
    exchange preserves.
    """

    __slots__ = ("mode", "driver", "merge_key", "partition_keys")

    def __init__(
        self,
        ctx: CostContext,
        child: PlanNode,
        mode: ExchangeMode,
        driver: str | None = None,
        merge_key: Attribute | None = None,
        partition_keys: tuple[tuple[str, Attribute], ...] = (),
    ) -> None:
        if mode is ExchangeMode.MERGE:
            if merge_key is None:
                raise PlanError("merge exchange requires a merge key")
            if child.order != merge_key:
                raise PlanError(
                    f"merge exchange on {merge_key.qualified_name} over an "
                    f"input ordered on {child.order}"
                )
        if mode is ExchangeMode.REPARTITION and not partition_keys:
            raise PlanError("repartition exchange requires partition keys")
        if mode is not ExchangeMode.REPARTITION and driver is None:
            raise PlanError(f"{mode.value} exchange requires a driver relation")
        self.mode = mode
        self.driver = driver
        self.merge_key = merge_key
        self.partition_keys = partition_keys
        super().__init__(ctx, (child,))
        # Like ChoosePlanNode, override the default sum-of-inputs
        # accumulation: the subtree's execution is divided across workers.
        # Any choose-plan decision overhead embedded in the subtree is
        # charged once at start-up, undivided.
        dop = ctx.degree_of_parallelism
        self.execution_cost = formulas.parallel_execution_cost(
            ctx.model, child.execution_cost, self.cardinality, dop
        )
        # The overhead is conceptually a point per bound (same decisions in
        # both), so guard the bound-wise subtraction against floating-point
        # inversion.
        overhead_low = child.cost.low - child.execution_cost.low
        overhead_high = child.cost.high - child.execution_cost.high
        decision_overhead = Interval(
            max(0.0, min(overhead_low, overhead_high)),
            max(0.0, overhead_low, overhead_high),
        )
        self.cost = self.execution_cost + decision_overhead

    def _compute(self, ctx, input_cards, input_orders):
        (cardinality,) = input_cards
        dop = ctx.degree_of_parallelism
        # Operator-only cost (startup + transfer); the full parallel total
        # is installed by __init__ / computed by the chooser, which both
        # need the child's *total* cost, not available here.
        overhead = formulas.parallel_execution_cost(
            ctx.model, Interval.point(0.0), cardinality, dop
        )
        order = self.merge_key if self.mode is ExchangeMode.MERGE else None
        return cardinality, overhead, order

    def bound_total(
        self, ctx: CostContext, child_cardinality: Interval, child_total: Interval
    ) -> tuple[Interval, Interval, Attribute | None]:
        """(cardinality, total cost, order) under ``ctx`` given the child's
        bottom-up totals — the start-up decision procedure's evaluation."""
        total = formulas.parallel_execution_cost(
            ctx.model, child_total, child_cardinality, ctx.degree_of_parallelism
        )
        order = self.merge_key if self.mode is ExchangeMode.MERGE else None
        return child_cardinality, total, order

    @property
    def label(self) -> str:
        if self.mode is ExchangeMode.MERGE:
            assert self.merge_key is not None
            detail = f"merge on {self.merge_key.qualified_name}, stripe {self.driver}"
        elif self.mode is ExchangeMode.REPARTITION:
            keys = ", ".join(a.qualified_name for _, a in self.partition_keys)
            detail = f"hash on {keys}"
        else:
            detail = f"stripe {self.driver}"
        return f"Exchange [{detail}]"
