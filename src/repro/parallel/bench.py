"""Parallel speedup benchmark: serial vs exchange-parallel hash join.

The workload is a two-relation equijoin whose probe side is large enough
that the striped scan dominates execution.  ``SimulatedDisk.latency_scale``
turns the charged page-I/O time into real sleeps, so execution is
I/O-bound in wall-clock terms and the exchange workers genuinely overlap
their waits (sleeps release the GIL); without it, pure-Python row
processing would serialize on the interpreter lock and hide the
parallelism the cost model reasons about.

The benchmark also doubles as an end-to-end acceptance check of the
degree-of-parallelism binding: at DOP=1 the start-up decision must
activate a fully serial alternative (zero exchange operators — no
parallel overhead), while each DOP>1 run must activate at least one
exchange and return exactly as many rows as the serial run.
"""

from __future__ import annotations

from time import perf_counter

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.executor.database import Database
from repro.parallel.plan import ExchangeNode
from repro.runtime.chooser import effective_plan_nodes
from repro.runtime.prepared import PreparedQuery

BENCH_SQL = "SELECT * FROM B, P WHERE B.j = P.j"

RECORD_BYTES = 512


def make_speedup_catalog(probe_rows: int, build_rows: int) -> Catalog:
    """A build relation ``B`` and a much larger probe relation ``P``.

    No indexes are declared, so every plan scans both relations and the
    join is hash-based — the shape the striped-scan exchange accelerates.
    """
    catalog = Catalog()
    for name, cardinality in (("B", build_rows), ("P", probe_rows)):
        catalog.add_relation(
            name,
            [("a", max(2, cardinality // 2)), ("j", max(2, build_rows))],
            cardinality=cardinality,
            record_bytes=RECORD_BYTES,
        )
    return catalog


def _active_exchanges(prepared: PreparedQuery, choices) -> int:
    return sum(
        1
        for node in effective_plan_nodes(prepared.module.plan, choices)
        if isinstance(node, ExchangeNode)
    )


def run_speedup_bench(
    *,
    probe_rows: int = 16_000,
    build_rows: int = 240,
    latency_scale: float = 0.2,
    dops: tuple[int, ...] = (2, 4),
    memory_pages: int = 512,
    seed: int = 11,
) -> dict:
    """Time the join serially and at each degree; returns a JSON payload.

    The returned dict is self-describing: configuration, serial baseline,
    and one record per parallel degree with its wall time, speedup, and
    the number of exchange operators the start-up decision activated.

    The default sizing keeps the build side under the compile-time memory
    budget (so the exchange stripes the probe scan rather than
    hash-repartitioning, which re-reads both relations in every worker)
    and ``memory_pages`` generous enough that the per-worker split never
    spills the replicated build table.
    """
    catalog = make_speedup_catalog(probe_rows, build_rows)
    model = CostModel()
    db = Database(catalog, model)
    db.load_synthetic(seed)

    max_dop = max(dops)
    prepared = PreparedQuery.prepare(BENCH_SQL, catalog, model, max_dop=max_dop)

    # Real sleeps only once loading is done: the benchmark times queries,
    # not data generation.
    db.disk.latency_scale = latency_scale
    try:
        runs = []
        serial_values = prepared.derive_parameters(
            db, {}, memory_pages=memory_pages, dop=1
        )
        serial_choices = prepared.activate(serial_values).decision.choices
        serial_exchanges = _active_exchanges(prepared, serial_choices)
        started = perf_counter()
        serial = prepared.execute(db, {}, memory_pages=memory_pages, dop=1)
        serial_seconds = perf_counter() - started
        for dop in dops:
            values = prepared.derive_parameters(
                db, {}, memory_pages=memory_pages, dop=dop
            )
            choices = prepared.activate(values).decision.choices
            exchanges = _active_exchanges(prepared, choices)
            started = perf_counter()
            result = prepared.execute(
                db, {}, memory_pages=memory_pages, dop=dop
            )
            seconds = perf_counter() - started
            runs.append(
                {
                    "dop": dop,
                    "seconds": seconds,
                    "speedup": serial_seconds / seconds if seconds else 0.0,
                    "active_exchanges": exchanges,
                    "rows": result.metrics.rows,
                }
            )
    finally:
        db.disk.latency_scale = 0.0
    return {
        "benchmark": "parallel_speedup",
        "sql": BENCH_SQL,
        "config": {
            "probe_rows": probe_rows,
            "build_rows": build_rows,
            "latency_scale": latency_scale,
            "memory_pages": memory_pages,
            "seed": seed,
            "max_dop": max_dop,
        },
        "serial": {
            "seconds": serial_seconds,
            "rows": serial.metrics.rows,
            "active_exchanges": serial_exchanges,
        },
        "runs": runs,
    }


SMOKE_CONFIG = dict(
    probe_rows=4_000, build_rows=200, latency_scale=0.15, dops=(4,)
)
