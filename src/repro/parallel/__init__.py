"""Intra-query parallelism: exchange operators and degree-of-parallelism.

The subsystem has three layers, mirroring the serial engine's split:

* :mod:`repro.parallel.plan` — the :class:`ExchangeNode` physical operator
  and its interval cost semantics (the DOP is a run-time parameter);
* :mod:`repro.parallel.rules` — optimizer rules producing the parallel
  alternative of a serial winner, competing in the same winner set;
* :mod:`repro.parallel.exchange` — execution: worker threads, bounded
  queues with backpressure, cancellation/error propagation, and the
  order-preserving merge.

Only the optimizer-side layers load eagerly: the optimizer imports this
package before the executor package exists (``repro/__init__`` loads the
optimizer first), so the execution-side names — which depend on
:mod:`repro.executor` — resolve lazily on first attribute access.
"""

from repro.parallel.plan import ExchangeMode, ExchangeNode
from repro.parallel.rules import parallel_alternative

_EXECUTION_EXPORTS = (
    "ExchangeIterator",
    "HashStripeIterator",
    "ModuloStripeIterator",
    "PartitionSpec",
    "StripedFileScanIterator",
)

__all__ = [
    "ExchangeMode",
    "ExchangeNode",
    "parallel_alternative",
    *_EXECUTION_EXPORTS,
]


def __getattr__(name: str):
    if name in _EXECUTION_EXPORTS:
        from repro.parallel import exchange

        return getattr(exchange, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
