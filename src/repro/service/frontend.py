"""AdmissionController: the shared front door of every serving backend.

The thread-pool :class:`~repro.service.service.QueryService` and the
multiprocess :class:`~repro.shard.coordinator.ShardedQueryService` differ
only in what happens *after* a request is admitted; everything in front —
the bounded queue, the fast-reject backpressure signal, the worker
threads settling futures, graceful drain on close, and the
``service.submitted`` / ``service.rejected`` / ``service.queue_depth`` /
``service.errors`` metrics — is identical and lives here, so both
backends present the same admission semantics to clients and load
drivers.

Rejections carry a machine-readable ``retry_after_hint``: an EWMA of
recent request latencies scaled by the queue depth per worker, i.e. the
controller's estimate of how long the backlog takes to clear.  Clients
back off by the hint instead of guessing.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from time import perf_counter
from typing import Callable, Generic, TypeVar

from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.obs.metrics import get_metrics

_SHUTDOWN = object()

#: Smoothing factor of the latency EWMA behind ``retry_after_hint``.
_EWMA_ALPHA = 0.2

RequestT = TypeVar("RequestT")
ResultT = TypeVar("ResultT")


class AdmissionController(Generic[RequestT, ResultT]):
    """Bounded admission queue + worker threads, backend-agnostic.

    ``handler(state, request, started)`` executes one admitted request on
    a worker thread; ``worker_state_factory`` builds each worker's
    private state once at thread start (the thread-pool backend builds a
    :class:`~repro.executor.database.Database` per worker, the shard
    coordinator needs none).  Results and exceptions are delivered
    through the future returned by :meth:`submit`.
    """

    def __init__(
        self,
        *,
        workers: int,
        queue_limit: int,
        handler: Callable[[object, RequestT, float], ResultT],
        worker_state_factory: Callable[[], object] | None = None,
        name_prefix: str = "repro-service",
    ) -> None:
        if workers < 1:
            raise ValueError("admission controller needs at least one worker")
        if queue_limit < 1:
            raise ValueError("admission queue limit must be at least 1")
        self._queue_limit = queue_limit
        self._worker_count = workers
        self._handler = handler
        self._state_factory = worker_state_factory
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._closed = threading.Event()
        self._join_lock = threading.Lock()
        self._latency_lock = threading.Lock()
        self._latency_ewma = 0.0
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{name_prefix}-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def queue_depth(self) -> int:
        """Requests currently admitted but not yet finished dequeuing."""
        return self._queue.qsize()

    def retry_after_hint(self) -> float:
        """Estimated seconds until capacity frees: recent-latency EWMA
        times the backlog per worker."""
        with self._latency_lock:
            ewma = self._latency_ewma
        return ewma * self._queue.qsize() / self._worker_count

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: RequestT) -> "Future[ResultT]":
        """Admit one request; fast-rejects when the queue is full.

        Raises :class:`ServiceClosedError` after :meth:`close`, and
        :class:`ServiceOverloadedError` (carrying ``retry_after_hint``
        and ``queue_depth``) when ``queue_limit`` requests are already
        pending — the typed backpressure signal.
        """
        metrics = get_metrics()
        if self._closed.is_set():
            raise ServiceClosedError("query service is closed")
        future: Future[ResultT] = Future()
        try:
            self._queue.put_nowait((request, future))
        except queue.Full:
            metrics.counter("service.rejected").inc()
            raise ServiceOverloadedError(
                f"admission queue full ({self._queue_limit} pending); "
                "retry later",
                retry_after_hint=self.retry_after_hint(),
                queue_depth=self._queue.qsize(),
            ) from None
        metrics.counter("service.submitted").inc()
        metrics.gauge("service.queue_depth").max(float(self._queue.qsize()))
        return future

    def close(self, *, drain: bool = True) -> None:
        """Refuse new work, settle pending work, join workers.

        With ``drain=True`` every already-admitted request finishes and
        its future resolves normally; with ``drain=False``
        queued-but-not-started requests are cancelled.  Idempotent.
        """
        self._closed.set()
        with self._join_lock:
            if not self._workers:
                return
            if not drain:
                while True:
                    try:
                        item = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    _, future = item
                    future.cancel()
                    self._queue.task_done()
            for _ in self._workers:
                self._queue.put(_SHUTDOWN)
            for worker in self._workers:
                worker.join()
            self._workers = []

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _observe_latency(self, seconds: float) -> None:
        with self._latency_lock:
            if self._latency_ewma == 0.0:
                self._latency_ewma = seconds
            else:
                self._latency_ewma += _EWMA_ALPHA * (
                    seconds - self._latency_ewma
                )

    def _worker_loop(self) -> None:
        state = self._state_factory() if self._state_factory is not None else None
        metrics = get_metrics()
        while True:
            item = self._queue.get()
            try:
                if item is _SHUTDOWN:
                    return
                request, future = item
                if not future.set_running_or_notify_cancel():
                    continue
                started = perf_counter()
                try:
                    result = self._handler(state, request, started)
                except BaseException as error:  # delivered via the future
                    metrics.counter("service.errors").inc()
                    future.set_exception(error)
                else:
                    future.set_result(result)
                    self._observe_latency(perf_counter() - started)
            finally:
                self._queue.task_done()
