"""PlanCache: shared compiled dynamic plans for the serving layer.

The paper's economic argument is amortization — a dynamic plan is compiled
once and re-activated per invocation, breaking even with run-time
optimization after a handful of calls (Section 6's break-even analysis).
A single :class:`~repro.runtime.prepared.PreparedQuery` amortizes only
within one caller; this cache shares the compiled access module across
every client of a query service, so millions of invocations of the same
statement pay for one optimization.

Keying and invalidation rules:

* **Key** — normalized query text (whitespace-collapsed, trailing ``;``
  dropped) + the catalog version read at lookup time + optimization mode.
  Because the version is part of the key, a DDL change can never hand out
  a plan compiled against older metadata: post-DDL lookups form a new key
  and miss.
* **Eager invalidation** — the cache subscribes to
  :meth:`Catalog.subscribe`; every version bump drops entries keyed under
  older versions immediately (they could only waste capacity — no future
  lookup can reach them).
* **Staleness** — on every hit the entry's module is re-checked with
  ``validate`` and ``is_stale`` (statistics drift beyond
  ``stale_threshold``); failing entries are dropped and recompiled.
* **Capacity / TTL** — least-recently-used eviction over ``capacity``
  entries, plus optional wall-clock expiry ``ttl_seconds`` after compile.

Concurrent misses on one key are collapsed into a single compilation
(single-flight): the first miss compiles while the rest wait on the same
in-flight slot, so an invalidated hot statement is recompiled exactly once
rather than once per waiting worker (no thundering herd).

Counters in the :mod:`repro.obs` registry: ``plan_cache.hits``,
``plan_cache.misses``, ``plan_cache.compilations``,
``plan_cache.evictions`` (capacity), ``plan_cache.expirations`` (TTL),
``plan_cache.invalidations`` (DDL hook), ``plan_cache.recompiles``
(validate/stale failures), and the ``plan_cache.entries`` gauge.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.obs.log import get_logger
from repro.obs.metrics import get_metrics
from repro.optimizer.optimizer import OptimizationMode
from repro.runtime.prepared import PreparedQuery

_LOG = get_logger(__name__)


def normalize_query_text(sql: str) -> str:
    """Canonical cache-key form of a statement.

    Whitespace runs collapse to single spaces and one trailing ``;`` is
    dropped, so textual variants of the same statement share an entry.
    Identifier case is preserved — the parser is case-sensitive.
    """
    text = " ".join(sql.split())
    if text.endswith(";"):
        text = text[:-1].rstrip()
    return text


@dataclass(frozen=True, slots=True)
class CacheKey:
    """Identity of one cached plan."""

    query_text: str
    catalog_version: int
    mode: OptimizationMode


@dataclass
class CacheEntry:
    """One cached compiled statement.

    ``lock`` serializes activation (choose-plan resolution mutates the
    module's usage statistics); execution itself runs outside the lock.
    """

    key: CacheKey
    prepared: PreparedQuery
    expires_at: float | None
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def compiled_catalog_version(self) -> int:
        """Catalog version the entry's current module was compiled under."""
        return self.prepared.module.catalog_version


class _InFlight:
    """Single-flight slot: the first miss compiles, the rest wait on it."""

    __slots__ = ("event", "entry", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.entry: CacheEntry | None = None
        self.error: BaseException | None = None


class PlanCache:
    """Thread-safe LRU + TTL cache of compiled access modules."""

    def __init__(
        self,
        catalog: Catalog,
        model: CostModel | None = None,
        *,
        capacity: int = 128,
        ttl_seconds: float | None = None,
        stale_threshold: float = 0.0,
        max_dop: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self._catalog = catalog
        self._model = model if model is not None else CostModel()
        self._capacity = capacity
        self._ttl_seconds = ttl_seconds
        self._stale_threshold = stale_threshold
        self._max_dop = max_dop
        self._clock = clock
        self._entries: OrderedDict[CacheKey, CacheEntry] = OrderedDict()
        self._inflight: dict[CacheKey, _InFlight] = {}
        self._lock = threading.Lock()
        # Normalized statement texts flagged for recompile after a
        # runtime regression (flight recorder, adaptive replans), mapped
        # to the catalog version current when the flag was raised;
        # checked (and cleared) on the next lookup so the entry takes
        # the recompile path.  ``_flag_history`` remembers the last
        # version each text was flagged at, making repeated flags at the
        # same catalog version no-ops: N worker threads reporting the
        # same regression mid-query produce exactly one recompile, not a
        # thrash of N.
        self._flagged: dict[str, int] = {}
        self._flag_history: dict[str, int] = {}
        self._listener = catalog.subscribe(self._on_catalog_change)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def close(self) -> None:
        """Detach from the catalog and drop every entry."""
        self._catalog.unsubscribe(self._listener)
        with self._lock:
            self._entries.clear()
            get_metrics().gauge("plan_cache.entries").set(0.0)

    # ------------------------------------------------------------------
    # Lookup / compile
    # ------------------------------------------------------------------
    def get_or_compile(
        self,
        sql: str,
        mode: OptimizationMode = OptimizationMode.DYNAMIC,
    ) -> tuple[CacheEntry, bool]:
        """The cached entry for ``sql`` (compiling on miss) and a hit flag.

        Waiting on another worker's in-flight compilation counts as a miss
        (the plan was not yet available) but never compiles twice.
        """
        key = CacheKey(
            query_text=normalize_query_text(sql),
            catalog_version=self._catalog.version,
            mode=mode,
        )
        metrics = get_metrics()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                reason = self._invalid_reason(entry)
                if reason is None:
                    self._entries.move_to_end(key)
                    metrics.counter("plan_cache.hits").inc()
                    return entry, True
                del self._entries[key]
                metrics.counter(f"plan_cache.{reason}").inc()
            flight = self._inflight.get(key)
            owner = flight is None
            if owner:
                flight = self._inflight[key] = _InFlight()
        metrics.counter("plan_cache.misses").inc()
        if not owner:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.entry is not None
            return flight.entry, False
        try:
            with metrics.histogram("plan_cache.compile_seconds").time():
                prepared = PreparedQuery.prepare(
                    sql,
                    self._catalog,
                    self._model,
                    mode=mode,
                    max_dop=self._max_dop,
                )
            prepared.stale_threshold = self._stale_threshold
            entry = CacheEntry(
                key=key, prepared=prepared, expires_at=self._deadline()
            )
            metrics.counter("plan_cache.compilations").inc()
        except BaseException as error:
            with self._lock:
                self._inflight.pop(key, None)
            flight.error = error
            flight.event.set()
            raise
        with self._lock:
            self._inflight.pop(key, None)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                metrics.counter("plan_cache.evictions").inc()
                _LOG.debug("plan cache evicted %s", evicted_key)
            metrics.gauge("plan_cache.entries").set(float(len(self._entries)))
        flight.entry = entry
        flight.event.set()
        return entry, False

    def _deadline(self) -> float | None:
        if self._ttl_seconds is None:
            return None
        return self._clock() + self._ttl_seconds

    def _invalid_reason(self, entry: CacheEntry) -> str | None:
        """Why a stored entry cannot be served, as a counter suffix."""
        if entry.expires_at is not None and self._clock() >= entry.expires_at:
            return "expirations"
        flagged_version = self._flagged.get(entry.key.query_text)
        if flagged_version is not None:
            # Runtime regression: treat exactly like statistics drift —
            # drop and recompile through the same counter.  A flag older
            # than the entry's own catalog version is moot (the entry
            # was already recompiled against newer statistics): consume
            # it without forcing another recompile.
            del self._flagged[entry.key.query_text]
            if entry.key.catalog_version <= flagged_version:
                return "recompiles"
        module = entry.prepared.module
        if not module.validate(self._catalog):
            return "recompiles"
        if module.is_stale(self._catalog, self._stale_threshold):
            return "recompiles"
        return None

    def flag_recompile(self, sql: str) -> None:
        """Mark ``sql``'s cached plan for recompilation at next lookup.

        The reaction to a runtime regression (flight-recorder
        ``plan.regression``, or an adaptive mid-query replan): the plan
        still serves the current invocation, but the next lookup takes the
        existing recompile path (``plan_cache.recompiles``) and re-optimizes
        against current statistics.

        Safe to call from worker threads mid-query, and idempotent per
        catalog version: once a text has been flagged at the current
        version, further flags at that version are no-ops, so a burst of
        concurrent regression reports forces exactly one recompile.
        """
        text = normalize_query_text(sql)
        with self._lock:
            version = self._catalog.version
            if self._flag_history.get(text) == version:
                return
            self._flag_history[text] = version
            self._flagged[text] = version

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _on_catalog_change(self, version: int) -> None:
        """Catalog listener: drop entries keyed under older versions."""
        metrics = get_metrics()
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key.catalog_version != version
            ]
            for key in stale:
                del self._entries[key]
            # DDL recompiles everything anyway; pending flags (and the
            # per-version no-op history) are moot at the new version.
            self._flagged.clear()
            self._flag_history.clear()
            if stale:
                metrics.counter("plan_cache.invalidations").inc(len(stale))
                metrics.gauge("plan_cache.entries").set(
                    float(len(self._entries))
                )
        if stale:
            _LOG.debug(
                "plan cache invalidated %d entries at catalog version %d",
                len(stale),
                version,
            )

    def invalidate(self, sql: str | None = None) -> int:
        """Explicitly drop entries; all of them when ``sql`` is None.

        Returns the number of entries removed.  DDL normally invalidates
        through the catalog subscription; this hook serves administrative
        paths (e.g. statistics refresh that should force recompilation).
        """
        metrics = get_metrics()
        text = None if sql is None else normalize_query_text(sql)
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if text is None or key.query_text == text
            ]
            for key in doomed:
                del self._entries[key]
            if doomed:
                metrics.counter("plan_cache.invalidations").inc(len(doomed))
                metrics.gauge("plan_cache.entries").set(
                    float(len(self._entries))
                )
        return len(doomed)
