"""repro.service — the serving layer: shared plan cache + query service.

The paper's break-even analysis (Section 6) shows a dynamic plan pays for
its compile-time optimization after N ∈ [2, 4] invocations.  This package
moves that amortization from one :class:`PreparedQuery` held by one caller
to a process-wide serving layer:

* :class:`PlanCache` — a thread-safe LRU/TTL cache of compiled access
  modules keyed by normalized query text + catalog version + optimization
  mode, with DDL-driven invalidation (via :meth:`Catalog.subscribe`),
  statistics-drift recompilation, and single-flight compilation.
* :class:`QueryService` — a bounded worker pool with admission control
  (fast-reject backpressure), per-query latency metrics, and graceful
  draining shutdown.
* :mod:`repro.service.workload` — Zipfian synthetic invocation streams
  and a measured :func:`run_workload` report (throughput, p50/p95/p99
  latency, cache hit rate), driving the ``repro serve-bench`` CLI.
"""

from repro.service.cache import (
    CacheEntry,
    CacheKey,
    PlanCache,
    normalize_query_text,
)
from repro.service.service import QueryService, ServiceResult
from repro.service.workload import (
    Invocation,
    StatementSpec,
    WorkloadReport,
    default_statements,
    generate_invocations,
    percentile,
    run_workload,
    zipf_weights,
)

__all__ = [
    "CacheEntry",
    "CacheKey",
    "PlanCache",
    "normalize_query_text",
    "QueryService",
    "ServiceResult",
    "Invocation",
    "StatementSpec",
    "WorkloadReport",
    "default_statements",
    "generate_invocations",
    "percentile",
    "run_workload",
    "zipf_weights",
]
