"""QueryService: a concurrent front door over a shared plan cache.

The serving-layer view of the paper's amortization argument: many clients
invoke a small set of parameterized statements millions of times, so the
compiled dynamic plan must be shared, and invocations must flow through a
bounded worker pool with explicit backpressure instead of unbounded
threads.

Lifecycle::

    service = QueryService(catalog, workers=4, queue_limit=64)
    service.prepare("SELECT * FROM R WHERE R.a < :v")   # optional warm-up
    result = service.execute("SELECT * FROM R WHERE R.a < :v", {"v": 120})
    service.close()                                     # drains in-flight

``submit`` is the asynchronous form, returning a
:class:`concurrent.futures.Future` of :class:`ServiceResult`.  Admission
control is a fast path: when the queue already holds ``queue_limit``
requests, ``submit`` raises :class:`ServiceOverloadedError` immediately
(counted in ``service.rejected``) rather than blocking the caller.

Each worker owns a private :class:`~repro.executor.database.Database`
(the storage engine's buffer pool and iterators are single-threaded), all
loaded from the same seed so every worker sees identical data.  The
compiled plans, the catalog, and the metrics registry are the shared
state.  Activation (choose-plan resolution, which mutates the module's
usage statistics) runs under the cache entry's lock; plan execution runs
outside it.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Mapping

from repro.adaptive import AdaptiveExecution, AdaptivePolicy, execute_adaptive_plan
from repro.catalog.catalog import Catalog
from repro.cost.context import DOP_PARAMETER
from repro.cost.model import CostModel
from repro.errors import ServiceClosedError
from repro.executor.database import Database
from repro.executor.executor import ExecutionResult, execute_plan
from repro.obs.log import get_logger
from repro.obs.metrics import get_metrics, render_openmetrics, snapshot_jsonl
from repro.obs.telemetry import get_flight_recorder, plan_signature
from repro.obs.trace import Span, get_tracer
from repro.optimizer.optimizer import OptimizationMode
from repro.service.cache import CacheEntry, PlanCache
from repro.service.frontend import AdmissionController

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class _Request:
    """One admitted invocation, queued for a worker."""

    sql: str
    value_bindings: Mapping[str, object]
    mode: OptimizationMode
    parameter_values: Mapping[str, float] | None
    memory_pages: int | None
    dop: int | None
    execution_mode: str
    batch_size: int | None
    adaptive: bool = False
    # The submitter's open span (if any): the worker re-parents its
    # ``service.invoke`` span under it, so one trace covers submission,
    # queueing, and execution across the thread boundary.
    trace_parent: "Span | None" = None


@dataclass(frozen=True)
class ServiceResult:
    """Outcome of one service invocation."""

    execution: ExecutionResult
    latency_seconds: float  # dequeue-to-result, as the latency timer sees it
    cache_hit: bool
    compiled_catalog_version: int
    # Present only for adaptive invocations: the controller's full
    # account (attempts, triggers, per-replan events).
    adaptive: AdaptiveExecution | None = None

    @property
    def rows(self):
        """The result rows (delegates to the execution result)."""
        return self.execution.rows

    @property
    def row_count(self) -> int:
        return self.execution.metrics.rows


class QueryService:
    """Bounded worker pool executing cached dynamic plans."""

    def __init__(
        self,
        catalog: Catalog,
        model: CostModel | None = None,
        *,
        workers: int = 4,
        queue_limit: int = 64,
        cache_capacity: int = 128,
        cache_ttl_seconds: float | None = None,
        stale_threshold: float = 0.0,
        max_dop: int | None = None,
        parallel_worker_budget: int | None = None,
        database_factory: Callable[[], Database] | None = None,
        seed: int = 0,
        execution_mode: str = "fused",
        batch_size: int | None = None,
        adaptive: "AdaptivePolicy | bool | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("query service needs at least one worker")
        if queue_limit < 1:
            raise ValueError("admission queue limit must be at least 1")
        if execution_mode not in ("row", "batch", "fused"):
            raise ValueError(
                f"unknown execution mode {execution_mode!r}; "
                "use 'fused', 'batch', or 'row'"
            )
        # Service-wide executor defaults; per-request values win.
        self._execution_mode = execution_mode
        self._batch_size = batch_size
        # Adaptivity default and policy.  ``True`` enables the default
        # policy for every request; an AdaptivePolicy enables with that
        # policy; None/False leaves requests non-adaptive unless they
        # opt in — and an opting-in request uses the configured policy if
        # one was given, the defaults otherwise.
        if isinstance(adaptive, AdaptivePolicy):
            self._adaptive_policy = adaptive
            self._adaptive_default = True
        else:
            self._adaptive_policy = AdaptivePolicy()
            self._adaptive_default = bool(adaptive)
        self._catalog = catalog
        self._model = model if model is not None else CostModel()
        self._queue_limit = queue_limit
        self._max_dop = max_dop
        # Total exchange workers allowed across concurrent requests.  A
        # request asking for more parallelism than currently available is
        # granted a clamped degree rather than queued or rejected —
        # degraded service beats no service, and DOP=1 is always free
        # (serial execution reserves nothing).
        if parallel_worker_budget is None:
            parallel_worker_budget = workers * (max_dop if max_dop else 1)
        self._parallel_budget = max(1, parallel_worker_budget)
        self._parallel_lock = threading.Lock()
        self._parallel_in_use = 0
        self.cache = PlanCache(
            catalog,
            self._model,
            capacity=cache_capacity,
            ttl_seconds=cache_ttl_seconds,
            stale_threshold=stale_threshold,
            max_dop=max_dop,
        )
        self._database_factory = database_factory or (
            lambda: self._default_database(seed)
        )
        self._frontend: AdmissionController[_Request, ServiceResult] = (
            AdmissionController(
                workers=workers,
                queue_limit=queue_limit,
                handler=self._invoke,
                worker_state_factory=self._database_factory,
                name_prefix="repro-service",
            )
        )

    def _default_database(self, seed: int) -> Database:
        db = Database(self._catalog, self._model)
        db.load_synthetic(seed=seed)
        return db

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def prepare(
        self,
        sql: str,
        mode: OptimizationMode = OptimizationMode.DYNAMIC,
    ) -> CacheEntry:
        """Warm the plan cache for ``sql`` (compiling if needed)."""
        if self._frontend.closed:
            raise ServiceClosedError("query service is closed")
        entry, _ = self.cache.get_or_compile(sql, mode)
        return entry

    def submit(
        self,
        sql: str,
        value_bindings: Mapping[str, object] | None = None,
        *,
        mode: OptimizationMode = OptimizationMode.DYNAMIC,
        parameter_values: Mapping[str, float] | None = None,
        memory_pages: int | None = None,
        dop: int | None = None,
        execution_mode: str | None = None,
        batch_size: int | None = None,
        adaptive: bool | None = None,
    ) -> "Future[ServiceResult]":
        """Admit one invocation; fast-rejects when the queue is full.

        ``dop`` requests parallel execution; the granted degree is clamped
        to the service's ``max_dop`` and to the exchange workers still
        available under ``parallel_worker_budget`` at execution time.
        ``execution_mode`` / ``batch_size`` override the service-level
        executor defaults for this invocation only.  ``adaptive`` opts
        this invocation in to (True) or out of (False) mid-query
        re-optimization, overriding the service-level default; a replan
        also flags the cached plan for recompilation, so later
        invocations start from a plan optimized against the observed
        reality.

        Raises :class:`ServiceClosedError` after :meth:`close`, and
        :class:`ServiceOverloadedError` (carrying ``retry_after_hint``
        and ``queue_depth``) when ``queue_limit`` requests are already
        pending — the typed backpressure signal.
        """
        tracer = get_tracer()
        request = _Request(
            sql=sql,
            value_bindings=dict(value_bindings or {}),
            mode=mode,
            parameter_values=(
                dict(parameter_values) if parameter_values is not None else None
            ),
            memory_pages=memory_pages,
            dop=dop,
            execution_mode=execution_mode or self._execution_mode,
            batch_size=batch_size if batch_size is not None else self._batch_size,
            adaptive=(
                self._adaptive_default if adaptive is None else bool(adaptive)
            ),
            trace_parent=tracer.current_span() if tracer.enabled else None,
        )
        return self._frontend.submit(request)

    def execute(
        self,
        sql: str,
        value_bindings: Mapping[str, object] | None = None,
        *,
        mode: OptimizationMode = OptimizationMode.DYNAMIC,
        parameter_values: Mapping[str, float] | None = None,
        memory_pages: int | None = None,
        dop: int | None = None,
        execution_mode: str | None = None,
        batch_size: int | None = None,
        adaptive: bool | None = None,
    ) -> ServiceResult:
        """Synchronous invocation: :meth:`submit` plus waiting."""
        return self.submit(
            sql,
            value_bindings,
            mode=mode,
            parameter_values=parameter_values,
            memory_pages=memory_pages,
            dop=dop,
            execution_mode=execution_mode,
            batch_size=batch_size,
            adaptive=adaptive,
        ).result()

    def close(self, *, drain: bool = True) -> None:
        """Shut down: refuse new work, settle pending work, join workers.

        With ``drain=True`` (the default) every already-admitted request
        finishes and its future resolves normally — graceful shutdown.
        With ``drain=False`` queued-but-not-started requests are
        cancelled.  Idempotent.
        """
        self._frontend.close(drain=drain)
        self.cache.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Telemetry export
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The shared metrics registry in OpenMetrics text format — the
        payload a ``/metrics`` scrape endpoint would serve."""
        return render_openmetrics(get_metrics())

    def metrics_jsonl(self) -> str:
        """The shared metrics registry as one JSON object per line."""
        return snapshot_jsonl(get_metrics())

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _invoke(
        self, db: Database, request: _Request, started: float
    ) -> ServiceResult:
        tracer = get_tracer()
        if request.trace_parent is None and not tracer.active:
            return self._execute_request(db, request, started)
        # Re-parent under the submitter's span so one trace covers
        # submission, queueing, and execution across the thread boundary.
        # Without a parent this opens a root span — which is exactly the
        # sampling tracer's per-request decision point in serving.
        with tracer.attach(request.trace_parent):
            with tracer.span("service.invoke", query=request.sql) as span:
                result = self._execute_request(db, request, started)
                span.set(
                    rows=result.row_count,
                    cache_hit=result.cache_hit,
                    latency_seconds=result.latency_seconds,
                )
                return result

    def _execute_request(
        self, db: Database, request: _Request, started: float
    ) -> ServiceResult:
        metrics = get_metrics()
        entry, hit = self.cache.get_or_compile(request.sql, request.mode)
        prepared = entry.prepared
        granted = self._acquire_dop(request.dop)
        try:
            parameter_values = request.parameter_values
            if parameter_values is None:
                parameter_values = prepared.derive_parameters(
                    db,
                    request.value_bindings,
                    memory_pages=request.memory_pages,
                    dop=granted,
                )
            elif granted is not None and DOP_PARAMETER in prepared.graph.parameters:
                parameter_values = {
                    **parameter_values,
                    DOP_PARAMETER: float(granted),
                }
            with entry.lock:
                # PreparedQuery.activate transparently re-optimizes when DDL
                # lands between key computation and activation; surface that
                # in the cache's recompile counter so invalidations stay
                # countable.
                reoptimizations_before = prepared.reoptimizations
                activation = prepared.activate(parameter_values)
                if prepared.reoptimizations != reoptimizations_before:
                    metrics.counter("plan_cache.recompiles").inc()
                plan = prepared.module.plan
                ctx = prepared.module.ctx
                compiled_version = prepared.module.catalog_version
            adaptive_run: AdaptiveExecution | None = None
            if request.adaptive:
                adaptive_run = execute_adaptive_plan(
                    plan,
                    prepared.graph,
                    db,
                    ctx,
                    policy=self._adaptive_policy,
                    bindings=request.value_bindings,
                    parameter_values=parameter_values,
                    choices=activation.decision.choices,
                    memory_pages=request.memory_pages,
                    dop=granted,
                    execution_mode=request.execution_mode,
                    batch_size=request.batch_size,
                    mode=prepared.mode,
                )
                execution = adaptive_run.result
            else:
                execution = execute_plan(
                    plan,
                    db,
                    bindings=request.value_bindings,
                    choices=activation.decision.choices,
                    memory_pages=request.memory_pages,
                    dop=granted,
                    execution_mode=request.execution_mode,
                    batch_size=request.batch_size,
                )
        finally:
            self._release_dop(granted)
        elapsed = perf_counter() - started
        metrics.histogram("service.latency").observe(elapsed)
        metrics.counter("service.completed").inc()
        recorder = get_flight_recorder()
        if recorder.enabled:
            # Baseline on pure execution wall time, not dequeue-to-result:
            # a cold compile would otherwise look like a 10x regression of
            # the very plan it just produced.
            regressed = recorder.record(
                entry.key.query_text,
                plan_signature(plan),
                dict(request.value_bindings),
                tuple(
                    node.label
                    for node in activation.decision.choices.values()
                ),
                execution.metrics.wall_seconds,
                max_error_ratio=execution.max_estimate_error,
                cache_hit=hit,
            )
            if regressed:
                self.cache.flag_recompile(entry.key.query_text)
        if adaptive_run is not None and adaptive_run.replans:
            # A mid-query replan is direct evidence the compiled plan's
            # intervals missed reality: flag it so the next lookup
            # recompiles against current statistics.  Idempotent per
            # catalog version, so concurrent workers replanning the same
            # statement force exactly one recompile.
            metrics.counter("service.adaptive_replans").inc(
                len(adaptive_run.replans)
            )
            self.cache.flag_recompile(entry.key.query_text)
        return ServiceResult(
            execution=execution,
            latency_seconds=elapsed,
            cache_hit=hit,
            compiled_catalog_version=compiled_version,
            adaptive=adaptive_run,
        )

    # ------------------------------------------------------------------
    # Parallel-worker admission control
    # ------------------------------------------------------------------
    def _acquire_dop(self, requested: int | None) -> int | None:
        """Grant a degree of parallelism within the shared worker budget.

        Serial requests (``None`` or 1) reserve nothing.  Parallel requests
        are clamped twice — to ``max_dop`` and to the workers currently
        unreserved — never queued: a busy service degrades toward serial
        execution instead of stalling.
        """
        if requested is None:
            return None
        asked = max(1, int(requested))
        granted = asked
        if self._max_dop is not None:
            granted = min(granted, self._max_dop)
        if granted > 1:
            with self._parallel_lock:
                available = self._parallel_budget - self._parallel_in_use
                granted = max(1, min(granted, available))
                if granted > 1:
                    self._parallel_in_use += granted
                in_use = self._parallel_in_use
            get_metrics().gauge("service.parallel_workers").set(float(in_use))
        if granted < asked:
            get_metrics().counter("service.dop_clamped").inc()
        return granted

    def _release_dop(self, granted: int | None) -> None:
        if granted is None or granted <= 1:
            return
        with self._parallel_lock:
            self._parallel_in_use -= granted
            in_use = self._parallel_in_use
        get_metrics().gauge("service.parallel_workers").set(float(in_use))
