"""Synthetic invocation streams for the serving layer.

Production query traffic is highly skewed: a few prepared statements
account for most invocations, which is exactly what makes a shared plan
cache pay off.  This driver models that shape — statement popularity is
Zipfian over a statement list, and each invocation draws fresh
host-variable values from the statement's binding ranges — so service
throughput, latency percentiles, and cache hit rates are measurable under
a controlled, reproducible load.

The pieces compose::

    statements = default_statements(catalog)            # one per relation
    invocations = generate_invocations(statements, n=10_000, zipf_s=1.1)
    report = run_workload(service, invocations)
    print(report.as_dict())
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from time import perf_counter
from typing import Mapping, Sequence

from repro.catalog.catalog import Catalog
from repro.errors import ServiceOverloadedError
from repro.obs.metrics import get_metrics
from repro.service.service import QueryService
from repro.util.rng import make_rng


@dataclass(frozen=True)
class StatementSpec:
    """A parameterized statement plus the value ranges of its host
    variables: ``bindings[name] = (low, high)`` draws integers uniformly
    from ``[low, high)``."""

    sql: str
    bindings: Mapping[str, tuple[int, int]]


@dataclass(frozen=True)
class Invocation:
    """One concrete call: statement text plus bound host-variable values."""

    sql: str
    value_bindings: Mapping[str, object]


def zipf_weights(n: int, s: float = 1.0) -> list[float]:
    """Normalized Zipfian popularity for ranks 1..n (``s`` = skew).

    ``s=0`` degenerates to uniform; larger ``s`` concentrates traffic on
    the first statements.
    """
    if n < 1:
        raise ValueError("need at least one rank")
    raw = [1.0 / (rank**s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def default_statements(
    catalog: Catalog, count: int | None = None
) -> list[StatementSpec]:
    """One unbound-selection statement per catalog relation.

    Each statement is the paper's motivating shape — ``SELECT * FROM R
    WHERE R.a < :v`` over the relation's first attribute — so dynamic
    plans carry a real choose-plan decision (index scan vs. file scan)
    whenever the attribute is indexed.
    """
    specs: list[StatementSpec] = []
    names = catalog.relation_names
    if count is not None:
        names = names[:count]
    for name in names:
        info = catalog.relation(name)
        attribute = next(iter(info.schema))
        specs.append(
            StatementSpec(
                sql=(
                    f"SELECT * FROM {name} "
                    f"WHERE {name}.{attribute.name} < :v"
                ),
                bindings={"v": (1, max(2, attribute.domain_size))},
            )
        )
    if not specs:
        raise ValueError("catalog has no relations to build statements from")
    return specs


def generate_invocations(
    statements: Sequence[StatementSpec],
    n: int,
    *,
    zipf_s: float = 1.0,
    seed: int = 2026,
) -> list[Invocation]:
    """Draw ``n`` invocations: Zipfian statement choice, uniform bindings.

    Statement rank follows list order (first = most popular).
    Deterministic given ``seed``.
    """
    rng = make_rng(seed)
    weights = zipf_weights(len(statements), zipf_s)
    invocations: list[Invocation] = []
    for _ in range(n):
        spec = rng.choices(statements, weights=weights)[0]
        values = {
            name: rng.randrange(low, high)
            for name, (low, high) in spec.bindings.items()
        }
        invocations.append(Invocation(sql=spec.sql, value_bindings=values))
    return invocations


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (``q`` in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without math
    return sorted_values[int(rank) - 1]


@dataclass(frozen=True)
class WorkloadReport:
    """Measured outcome of one workload run against a service."""

    invocations: int
    completed: int
    failed: int
    rejections: int  # backpressure events (retried, not lost)
    elapsed_seconds: float
    throughput_qps: float
    latency_p50_seconds: float
    latency_p95_seconds: float
    latency_p99_seconds: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    optimizer_runs: int  # optimizations triggered during the run
    # Shed-load accounting: the distinct machine-readable rejection
    # reasons seen (message -> count) and the largest retry_after_hint /
    # queue_depth the service reported, so overload shows up as data
    # rather than a bare exception string.
    shed_load_reasons: Mapping[str, int] = None  # type: ignore[assignment]
    max_retry_after_hint: float = 0.0
    max_rejection_queue_depth: int = 0

    def as_dict(self) -> dict[str, object]:
        """Flat JSON-ready form (CLI artifact and benchmark tables)."""
        return {
            "invocations": self.invocations,
            "completed": self.completed,
            "failed": self.failed,
            "rejections": self.rejections,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_qps": self.throughput_qps,
            "latency_p50_seconds": self.latency_p50_seconds,
            "latency_p95_seconds": self.latency_p95_seconds,
            "latency_p99_seconds": self.latency_p99_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "optimizer_runs": self.optimizer_runs,
            "shed_load_reasons": dict(self.shed_load_reasons or {}),
            "max_retry_after_hint": self.max_retry_after_hint,
            "max_rejection_queue_depth": self.max_rejection_queue_depth,
        }


def run_workload(
    service: QueryService,
    invocations: Sequence[Invocation],
    *,
    overload_backoff_seconds: float = 0.0005,
) -> WorkloadReport:
    """Drive ``invocations`` through ``service`` and measure the outcome.

    Overload rejections are counted and the submission retried after a
    short backoff, so backpressure shows up in the report without losing
    invocations.  Cache and optimizer figures are deltas of the process
    metrics over the run, so concurrent unrelated work would distort them
    — drive one workload at a time.
    """
    metrics = get_metrics()
    before = metrics.snapshot()
    futures = []
    rejections = 0
    shed_reasons: dict[str, int] = {}
    max_hint = 0.0
    max_depth = 0
    started = perf_counter()
    for invocation in invocations:
        while True:
            try:
                futures.append(
                    service.submit(invocation.sql, invocation.value_bindings)
                )
                break
            except ServiceOverloadedError as overload:
                rejections += 1
                reason = str(overload)
                shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
                max_hint = max(max_hint, overload.retry_after_hint)
                max_depth = max(max_depth, overload.queue_depth)
                # Back off by the service's own hint when it gives one
                # (capped — the hint estimates full-backlog drain, one
                # slot frees much sooner); the fixed backoff is the
                # floor for hintless rejections.
                time.sleep(
                    min(
                        max(
                            overload_backoff_seconds,
                            overload.retry_after_hint,
                        ),
                        0.05,
                    )
                )
    latencies: list[float] = []
    failed = 0
    for future in futures:
        try:
            latencies.append(future.result().latency_seconds)
        except Exception:
            failed += 1
    elapsed = perf_counter() - started
    after = metrics.snapshot()

    def delta(name: str) -> float:
        return after.get(name, 0.0) - before.get(name, 0.0)

    hits = int(delta("plan_cache.hits"))
    misses = int(delta("plan_cache.misses"))
    looked_up = hits + misses
    latencies.sort()
    return WorkloadReport(
        invocations=len(invocations),
        completed=len(latencies),
        failed=failed,
        rejections=rejections,
        elapsed_seconds=elapsed,
        throughput_qps=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_p50_seconds=percentile(latencies, 50),
        latency_p95_seconds=percentile(latencies, 95),
        latency_p99_seconds=percentile(latencies, 99),
        cache_hits=hits,
        cache_misses=misses,
        cache_hit_rate=hits / looked_up if looked_up else 0.0,
        optimizer_runs=int(delta("optimizer.runs")),
        shed_load_reasons=shed_reasons,
        max_retry_after_hint=max_hint,
        max_rejection_queue_depth=max_depth,
    )
