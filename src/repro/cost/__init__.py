"""Cost abstraction: interval costs, model constants, operator formulas.

The paper encapsulates cost in an abstract data type whose comparison may
return *incomparable* in addition to less/equal/greater.  This package
provides that ADT (:class:`Cost` / :class:`IntervalCost`), the device and
algorithm constants (:class:`CostModel`), and the per-operator cost
formulas used by both the optimizer and the start-up-time decision
procedure (:mod:`repro.cost.formulas`).
"""

from repro.cost.cost import Comparison, Cost, IntervalCost
from repro.cost.model import CostModel
from repro.cost import formulas

__all__ = ["Comparison", "Cost", "IntervalCost", "CostModel", "formulas"]
