"""Device and algorithm constants of the cost model.

The defaults follow the paper's experimental setup (Section 6) where it is
explicit — 2048-byte pages, 512-byte records, 64 pages of expected memory,
128-byte plan nodes, 2 MB/s module-read bandwidth, 0.1 s activation
overhead — and early-1990s disk/CPU characteristics elsewhere.  Absolute
numbers only shift curves; the reproduction targets their *shapes*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.statistics import RelationStats


@dataclass(frozen=True)
class CostModel:
    """All knobs of the analytic cost model, in seconds and bytes."""

    # --- storage device -------------------------------------------------
    page_bytes: int = 2048
    sequential_page_io: float = 0.005
    random_page_io: float = 0.020

    # --- CPU ------------------------------------------------------------
    cpu_per_tuple: float = 20e-6  # produce/copy one output tuple
    cpu_per_predicate: float = 5e-6  # evaluate one predicate
    cpu_per_compare: float = 2e-6  # one comparison (sort / merge)
    cpu_per_hash: float = 4e-6  # hash one tuple

    # --- B-tree indexes ---------------------------------------------------
    btree_key_bytes: int = 16  # key + record pointer in a leaf entry
    btree_root_cached: bool = True  # non-leaf levels assumed resident
    # Mackert/Lohman-style buffer-aware fetch accounting ([MaL89], cited by
    # the paper's footnote 2): when enabled, unclustered fetches are capped
    # by the expected number of DISTINCT heap pages touched (Cardenas'
    # formula) instead of one random I/O per matching record.  Off by
    # default to keep the paper-calibrated experiment numbers.
    buffer_aware_fetches: bool = False

    # --- parallel execution (Volcano exchange) ----------------------------
    # Starting one worker (thread spawn, queue setup) and moving one tuple
    # across an exchange boundary (batching, handoff).  The startup term
    # makes parallel plans strictly worse than serial ones at DOP=1, so the
    # start-up decision procedure activates the serial alternative when no
    # parallelism is actually available.
    exchange_startup_seconds: float = 0.02  # per worker
    exchange_tuple_seconds: float = 5e-6  # per tuple crossing the exchange

    # --- dynamic plans ----------------------------------------------------
    choose_plan_overhead: float = 0.01  # per choose-plan decision (Section 5)
    plan_node_bytes: int = 128  # access-module bytes per operator node
    module_read_bandwidth: float = 2_000_000.0  # bytes/second
    activation_base: float = 0.1  # catalog validation + one seek (z)

    # --- counted-work CPU accounting ---------------------------------------
    # Model-time per unit of optimizer/decision work, calibrated to the
    # paper's DECstation measurements (27.1 s for static query-5
    # optimization; 5.8 s for 14,090 start-up cost evaluations).  Used where
    # CPU effort must be combined with modeled I/O and execution times —
    # deterministic and machine-independent, unlike wall-clock.
    optimizer_candidate_seconds: float = 0.06  # per plan candidate costed
    startup_eval_seconds: float = 4.1e-4  # per cost evaluation at start-up

    # --- memory -----------------------------------------------------------
    default_memory_pages: int = 64

    # ------------------------------------------------------------------
    # Derived storage quantities
    # ------------------------------------------------------------------
    def records_per_page(self, stats: RelationStats) -> int:
        """Data records per page (at least one)."""
        return max(1, self.page_bytes // stats.record_bytes)

    def data_pages(self, stats: RelationStats) -> int:
        """Heap-file pages of a relation."""
        return stats.pages(self.page_bytes)

    def leaf_pages(self, stats: RelationStats) -> int:
        """Leaf pages of a B-tree index over the relation."""
        entries_per_leaf = max(1, self.page_bytes // self.btree_key_bytes)
        return max(1, -(-stats.cardinality // entries_per_leaf))

    def btree_height(self, stats: RelationStats) -> int:
        """Number of non-leaf levels traversed for a single index probe.

        With :attr:`btree_root_cached` the non-leaf levels are assumed
        buffer-resident, so a probe costs one leaf I/O.
        """
        if self.btree_root_cached:
            return 1
        leaves = self.leaf_pages(stats)
        fanout = max(2, self.page_bytes // self.btree_key_bytes)
        return 1 + max(1, math.ceil(math.log(max(leaves, 2), fanout)))

    # ------------------------------------------------------------------
    # Access-module time model (Section 6)
    # ------------------------------------------------------------------
    def module_read_time(self, node_count: int) -> float:
        """Seconds to read an access module of ``node_count`` plan nodes."""
        return node_count * self.plan_node_bytes / self.module_read_bandwidth

    def activation_time(self, node_count: int) -> float:
        """Full activation I/O: validation/seek plus module transfer."""
        return self.activation_base + self.module_read_time(node_count)
