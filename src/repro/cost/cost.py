"""The cost abstract data type.

Traditional optimizers require cost comparison to return one of
less / equal / greater.  The paper's essential extension (Section 3) is a
fourth outcome, **incomparable**, produced when missing run-time bindings
make it impossible to rank two plans at compile time.  The search engine
(:mod:`repro.optimizer.engine`) is written against the abstract
:class:`Cost` interface; :class:`IntervalCost` is the concrete model used
by the prototype — cost as a ``[lower, upper]`` interval, incomparable when
intervals overlap.

Database implementors may substitute any other partially ordered cost model
(e.g. multi-dimensional resource vectors) by subclassing :class:`Cost`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Iterable

from repro.util.interval import Interval


class Comparison(enum.Enum):
    """Outcome of comparing two costs under a partial order."""

    LESS = "less"
    EQUAL = "equal"
    GREATER = "greater"
    INCOMPARABLE = "incomparable"


class Cost(ABC):
    """Abstract cost: the operations the search engine relies on."""

    @abstractmethod
    def compare(self, other: "Cost") -> Comparison:
        """Partial-order comparison; may return ``INCOMPARABLE``."""

    @abstractmethod
    def __add__(self, other: "Cost") -> "Cost":
        """Combine the costs of independent work (children + operator)."""

    @abstractmethod
    def choose_min(self, other: "Cost") -> "Cost":
        """Cost of a choose-plan over two alternatives (pointwise minimum)."""

    @abstractmethod
    def lower_bound(self) -> float:
        """Scalar certainly incurred — usable in branch-and-bound budgets."""

    @abstractmethod
    def upper_bound(self) -> float:
        """Scalar never exceeded — usable as a branch-and-bound limit."""

    def dominates(self, other: "Cost") -> bool:
        """True when this cost is certainly no worse than ``other``."""
        return self.compare(other) in (Comparison.LESS, Comparison.EQUAL)


class IntervalCost(Cost):
    """Cost as a closed interval of seconds, the paper's prototype model.

    Two interval costs are comparable only when their intervals are
    disjoint; overlapping intervals are declared incomparable (Section 5).
    A traditional point cost is the degenerate case ``[c, c]``.
    """

    __slots__ = ("interval",)

    def __init__(self, interval: Interval) -> None:
        self.interval = interval

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, low: float, high: float) -> "IntervalCost":
        """Cost interval ``[low, high]`` (subclass-preserving)."""
        return cls(Interval.of(low, high))

    @classmethod
    def point(cls, value: float) -> "IntervalCost":
        """A fully known (traditional) cost (subclass-preserving)."""
        return cls(Interval.point(value))

    @staticmethod
    def zero() -> "IntervalCost":
        """The additive identity."""
        return _ZERO

    @staticmethod
    def sum(costs: Iterable["IntervalCost"]) -> "IntervalCost":
        """Sum of several costs (empty sum is zero)."""
        total = _ZERO
        for cost in costs:
            total = total + cost
        return total

    # ------------------------------------------------------------------
    # Cost interface
    # ------------------------------------------------------------------
    def compare(self, other: Cost) -> Comparison:
        if not isinstance(other, IntervalCost):
            raise TypeError(f"cannot compare IntervalCost with {type(other).__name__}")
        a, b = self.interval, other.interval
        if a.low == b.low and a.high == b.high:
            if a.is_point:
                return Comparison.EQUAL
            # Identical non-point intervals: the actual costs may still
            # differ either way at run time, so they are incomparable
            # (the paper's conservative treatment of "consistently equal"
            # plans keeps both alternatives).
            return Comparison.INCOMPARABLE
        if a.high <= b.low:
            return Comparison.LESS
        if b.high <= a.low:
            return Comparison.GREATER
        return Comparison.INCOMPARABLE

    def __add__(self, other: Cost) -> "IntervalCost":
        if not isinstance(other, IntervalCost):
            raise TypeError(f"cannot add IntervalCost and {type(other).__name__}")
        return IntervalCost(self.interval + other.interval)

    def choose_min(self, other: Cost) -> "IntervalCost":
        if not isinstance(other, IntervalCost):
            raise TypeError(
                f"cannot combine IntervalCost with {type(other).__name__}"
            )
        return IntervalCost(self.interval.min_with(other.interval))

    def lower_bound(self) -> float:
        return self.interval.low

    def upper_bound(self) -> float:
        return self.interval.high

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    @property
    def is_point(self) -> bool:
        """True when the cost is fully known."""
        return self.interval.is_point

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntervalCost) and self.interval == other.interval

    def __hash__(self) -> int:
        return hash(self.interval)

    def __repr__(self) -> str:
        return f"IntervalCost({self.interval})"


_ZERO = IntervalCost(Interval.point(0.0))
