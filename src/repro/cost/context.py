"""Costing context: everything a cost formula needs to evaluate.

A :class:`CostContext` bundles the catalog (known statistics), the cost
model (device constants), and a parameter environment (uncertain values as
intervals, or run-time points).  The optimizer costs plans under a
compile-time context; the choose-plan decision procedure re-costs the same
plan nodes under a start-up-time context whose environment is fully bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.params.parameter import Environment
from repro.util.interval import Interval

MEMORY_PARAMETER = "memory"
DOP_PARAMETER = "dop"


@dataclass(frozen=True)
class CostContext:
    """Immutable bundle of catalog, model, and parameter environment."""

    catalog: Catalog
    model: CostModel
    env: Environment

    @property
    def memory_pages(self) -> Interval:
        """Available memory: the ``memory`` parameter when declared uncertain,
        otherwise the model's fixed default."""
        if MEMORY_PARAMETER in self.env.space:
            return self.env.interval(MEMORY_PARAMETER)
        return Interval.point(float(self.model.default_memory_pages))

    @property
    def degree_of_parallelism(self) -> Interval:
        """Degree of parallelism: the ``dop`` parameter when declared,
        otherwise a fixed serial point of 1."""
        if DOP_PARAMETER in self.env.space:
            return self.env.interval(DOP_PARAMETER)
        return Interval.point(1.0)

    def with_env(self, env: Environment) -> "CostContext":
        """The same catalog and model under a different environment."""
        return CostContext(catalog=self.catalog, model=self.model, env=env)
