"""Per-operator cost formulas, lifted from points to intervals.

Every formula is written as an ordinary scalar function and lifted to
intervals by :func:`monotone_interval`, exactly the paper's recipe
(Section 5): "the upper and lower bounds of the cost intervals are computed
using traditional cost formulas supplied with the appropriate upper and
lower bound values for the parameters ... assuming that cost functions are
monotonic in all their arguments."  Costs are monotonically *increasing* in
cardinalities and selectivities and *decreasing* in available memory.

All costs are in seconds and cover only the work of the operator itself;
the search engine adds the costs of the input plans.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.catalog.statistics import RelationStats
from repro.cost.model import CostModel
from repro.util.interval import Interval

INCREASING = 1
DECREASING = -1


def monotone_interval(
    func: Callable[..., float], *args: tuple[Interval, int]
) -> Interval:
    """Lift a monotone scalar ``func`` to interval arguments.

    ``args`` pairs each interval with its monotonicity direction
    (:data:`INCREASING` or :data:`DECREASING`).  The lower bound of the
    result evaluates ``func`` at each increasing argument's low end and each
    decreasing argument's high end; the upper bound at the opposite corner.
    """
    low = func(
        *(iv.low if direction == INCREASING else iv.high for iv, direction in args)
    )
    high = func(
        *(iv.high if direction == INCREASING else iv.low for iv, direction in args)
    )
    if low > high:
        raise ValueError(
            f"cost function {func.__name__} is not monotone as declared: "
            f"low corner {low} > high corner {high}"
        )
    return Interval(low, high)


def pages_for(cardinality: float, record_bytes: int, model: CostModel) -> float:
    """Fractional pages occupied by ``cardinality`` records."""
    return cardinality * record_bytes / model.page_bytes


def distinct_pages_touched(fetches: float, pages: float) -> float:
    """Cardenas' formula: expected distinct pages hit by random fetches.

    ``pages * (1 - (1 - 1/pages)^k)`` — the basis of the Mackert/Lohman
    buffer-aware I/O model [MaL89].  Monotone increasing in both arguments
    and never exceeds ``min(fetches, pages)``.
    """
    if pages <= 0 or fetches <= 0:
        return 0.0
    if pages < 1.0:
        return min(fetches, pages)
    return pages * (1.0 - (1.0 - 1.0 / pages) ** fetches)


def _unclustered_fetch_io(model: CostModel, matching: float, data_pages: float) -> float:
    """Random-I/O charge for fetching ``matching`` unclustered records."""
    if model.buffer_aware_fetches:
        return distinct_pages_touched(matching, data_pages) * model.random_page_io
    return matching * model.random_page_io


# ----------------------------------------------------------------------
# Data retrieval
# ----------------------------------------------------------------------
def file_scan_cost(model: CostModel, stats: RelationStats) -> Interval:
    """Sequential scan of the whole heap file.

    No uncertain inputs: the result is always a point cost.
    """
    io = model.data_pages(stats) * model.sequential_page_io
    cpu = stats.cardinality * model.cpu_per_tuple
    return Interval.point(io + cpu)


def btree_scan_cost(
    model: CostModel,
    stats: RelationStats,
    selectivity: Interval,
    clustered: bool = False,
) -> Interval:
    """Range scan through a B-tree retrieving a ``selectivity`` fraction.

    Unclustered indexes (the paper's setup) pay one random I/O per
    qualifying record to fetch it from the heap file; clustered indexes read
    the qualifying fraction of data pages sequentially.  Very selective
    predicates make this far cheaper than a file scan; unselective ones make
    it far more expensive — the motivating example of Figure 1.
    """
    descend = model.btree_height(stats) * model.random_page_io
    leaf_pages = model.leaf_pages(stats)
    data_pages = model.data_pages(stats)

    def cost(sel: float) -> float:
        matching = sel * stats.cardinality
        leaf_io = sel * leaf_pages * model.sequential_page_io
        if clustered:
            fetch_io = sel * data_pages * model.sequential_page_io
        else:
            fetch_io = _unclustered_fetch_io(model, matching, data_pages)
        cpu = matching * model.cpu_per_tuple
        return descend + leaf_io + fetch_io + cpu

    return monotone_interval(cost, (selectivity, INCREASING))


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def filter_cost(
    model: CostModel, input_cardinality: Interval, selectivity: Interval
) -> Interval:
    """Apply one predicate to a stream of tuples."""

    def cost(card: float, sel: float) -> float:
        return card * model.cpu_per_predicate + sel * card * model.cpu_per_tuple

    return monotone_interval(
        cost, (input_cardinality, INCREASING), (selectivity, INCREASING)
    )


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
def hash_join_cost(
    model: CostModel,
    build_cardinality: Interval,
    probe_cardinality: Interval,
    output_cardinality: Interval,
    record_bytes: int,
    memory_pages: Interval,
) -> Interval:
    """Hybrid hash join: in-memory when the build input fits, else it
    partitions both inputs to disk for the overflowing fraction.

    The memory dependence is the reason hash-join build-side choice belongs
    in a dynamic plan (the paper's Figure 2 example): which input is smaller
    may be unknown at compile time.
    """

    def cost(build: float, probe: float, out: float, memory: float) -> float:
        build_pages = pages_for(build, record_bytes, model)
        probe_pages = pages_for(probe, record_bytes, model)
        spill_fraction = 0.0
        if build_pages > memory and build_pages > 0:
            spill_fraction = 1.0 - memory / build_pages
        partition_io = (
            2.0
            * (build_pages + probe_pages)
            * spill_fraction
            * model.sequential_page_io
        )
        cpu = (build + probe) * model.cpu_per_hash + out * model.cpu_per_tuple
        return partition_io + cpu

    return monotone_interval(
        cost,
        (build_cardinality, INCREASING),
        (probe_cardinality, INCREASING),
        (output_cardinality, INCREASING),
        (memory_pages, DECREASING),
    )


def nested_loops_join_cost(
    model: CostModel,
    outer_cardinality: Interval,
    inner_cardinality: Interval,
    output_cardinality: Interval,
    record_bytes: int,
    memory_pages: Interval,
) -> Interval:
    """Block nested-loops join (extension; enables cross products).

    The inner input is materialized once, then re-read for every block of
    the outer that fits in memory.  Every outer×inner pair is compared.
    """

    def cost(outer: float, inner: float, out: float, memory: float) -> float:
        outer_pages = pages_for(outer, record_bytes, model)
        inner_pages = pages_for(inner, record_bytes, model)
        block_pages = max(1.0, memory - 2.0)
        passes = max(1.0, math.ceil(outer_pages / block_pages)) if outer > 0 else 0.0
        materialize_io = 2.0 * inner_pages * model.sequential_page_io
        rescan_io = inner_pages * max(0.0, passes - 1.0) * model.sequential_page_io
        cpu = outer * inner * model.cpu_per_compare + out * model.cpu_per_tuple
        return materialize_io + rescan_io + cpu

    return monotone_interval(
        cost,
        (outer_cardinality, INCREASING),
        (inner_cardinality, INCREASING),
        (output_cardinality, INCREASING),
        (memory_pages, DECREASING),
    )


def merge_join_cost(
    model: CostModel,
    left_cardinality: Interval,
    right_cardinality: Interval,
    output_cardinality: Interval,
) -> Interval:
    """Merge two sorted streams; sorting is the Sort enforcer's business."""

    def cost(left: float, right: float, out: float) -> float:
        return (left + right) * model.cpu_per_compare + out * model.cpu_per_tuple

    return monotone_interval(
        cost,
        (left_cardinality, INCREASING),
        (right_cardinality, INCREASING),
        (output_cardinality, INCREASING),
    )


def index_join_cost(
    model: CostModel,
    outer_cardinality: Interval,
    inner_stats: RelationStats,
    output_cardinality: Interval,
    clustered: bool = False,
) -> Interval:
    """Index nested-loops join probing a B-tree on the inner relation.

    Each outer tuple pays one descent plus (for unclustered indexes) one
    random fetch per matching inner record.
    """
    descend = model.btree_height(inner_stats) * model.random_page_io

    def cost(outer: float, out: float) -> float:
        if clustered:
            fetch_io = (
                pages_for(out, inner_stats.record_bytes, model)
                * model.random_page_io
            )
        else:
            # One random heap-page fetch per matching inner record (or the
            # buffer-aware distinct-page cap when enabled).
            inner_pages = float(model.data_pages(inner_stats))
            fetch_io = _unclustered_fetch_io(model, out, inner_pages)
        probe_io = outer * descend
        cpu = outer * model.cpu_per_predicate + out * model.cpu_per_tuple
        return probe_io + fetch_io + cpu

    return monotone_interval(
        cost, (outer_cardinality, INCREASING), (output_cardinality, INCREASING)
    )


# ----------------------------------------------------------------------
# Aggregation (extension)
# ----------------------------------------------------------------------
def hash_aggregate_cost(
    model: CostModel,
    input_cardinality: Interval,
    group_cardinality: Interval,
    record_bytes: int,
    memory_pages: Interval,
) -> Interval:
    """Hash aggregation: build a table of groups, spill when it overflows."""

    def cost(inputs: float, groups: float, memory: float) -> float:
        group_pages = pages_for(groups, record_bytes, model)
        spill_fraction = 0.0
        if group_pages > memory and group_pages > 0:
            spill_fraction = 1.0 - memory / group_pages
        partition_io = (
            2.0
            * pages_for(inputs, record_bytes, model)
            * spill_fraction
            * model.sequential_page_io
        )
        cpu = inputs * model.cpu_per_hash + groups * model.cpu_per_tuple
        return partition_io + cpu

    return monotone_interval(
        cost,
        (input_cardinality, INCREASING),
        (group_cardinality, INCREASING),
        (memory_pages, DECREASING),
    )


def sorted_aggregate_cost(
    model: CostModel,
    input_cardinality: Interval,
    group_cardinality: Interval,
) -> Interval:
    """Streaming aggregation over an input sorted on the grouping key."""

    def cost(inputs: float, groups: float) -> float:
        return inputs * model.cpu_per_compare + groups * model.cpu_per_tuple

    return monotone_interval(
        cost, (input_cardinality, INCREASING), (group_cardinality, INCREASING)
    )


# ----------------------------------------------------------------------
# Enforcers
# ----------------------------------------------------------------------
def sort_cost(
    model: CostModel,
    cardinality: Interval,
    record_bytes: int,
    memory_pages: Interval,
) -> Interval:
    """External merge sort: free of I/O when the input fits in memory."""

    def cost(card: float, memory: float) -> float:
        cpu = card * math.log2(max(card, 2.0)) * model.cpu_per_compare
        data_pages = pages_for(card, record_bytes, model)
        if data_pages <= memory:
            return cpu
        fan_in = max(2.0, memory - 1.0)
        runs = data_pages / max(memory, 1.0)
        passes = max(1.0, math.ceil(math.log(max(runs, 2.0), fan_in)))
        io = 2.0 * data_pages * passes * model.sequential_page_io
        return cpu + io

    return monotone_interval(
        cost, (cardinality, INCREASING), (memory_pages, DECREASING)
    )


def partial_sort_cost(
    model: CostModel,
    cardinality: Interval,
    run_cardinality: Interval,
    record_bytes: int,
    memory_pages: Interval,
) -> Interval:
    """Segmented sort of an input pre-sorted on a key prefix.

    The input decomposes into ``run_cardinality`` runs of equal prefix
    values; each run is sorted independently, so the comparison depth is
    ``log(run length)`` rather than ``log(input)`` and I/O is charged
    only when a single *run* overflows memory.  The result is clipped by
    :func:`sort_cost` (pointwise ``min``): a partial sort degenerates to
    a full sort in the worst case (one run), never worse — which keeps
    choose-plan intervals sound when the optimizer credits the cheaper
    enforcer.
    """

    def cost(card: float, runs: float, memory: float) -> float:
        if card <= 0:
            return 0.0
        runs = max(1.0, min(runs, card))
        per_run = card / runs
        # One comparison per row detects run boundaries; sorting adds the
        # per-run merge-sort depth.
        cpu = (
            card * model.cpu_per_compare
            + card * math.log2(max(per_run, 2.0)) * model.cpu_per_compare
        )
        run_pages = pages_for(per_run, record_bytes, model)
        if run_pages <= memory:
            return cpu
        fan_in = max(2.0, memory - 1.0)
        sub_runs = run_pages / max(memory, 1.0)
        passes = max(1.0, math.ceil(math.log(max(sub_runs, 2.0), fan_in)))
        io = (
            2.0
            * pages_for(card, record_bytes, model)
            * passes
            * model.sequential_page_io
        )
        return cpu + io

    interval = monotone_interval(
        cost,
        (cardinality, INCREASING),
        (run_cardinality, DECREASING),
        (memory_pages, DECREASING),
    )
    return interval.min_with(
        sort_cost(model, cardinality, record_bytes, memory_pages)
    )


def choose_plan_cost(model: CostModel, alternatives: int) -> Interval:
    """Start-up-time overhead of one choose-plan decision.

    The paper charges a small constant per decision (its Section 5 example
    uses [0.01, 0.01]); with more than two alternatives the comparisons
    scale linearly.
    """
    if alternatives < 2:
        raise ValueError("choose-plan needs at least two alternatives")
    return Interval.point(model.choose_plan_overhead * (alternatives - 1))


# ----------------------------------------------------------------------
# Parallel execution (Volcano exchange)
# ----------------------------------------------------------------------
def _parallel_point_cost(
    model: CostModel, subtree: float, tuples: float, dop: float
) -> float:
    """Scalar cost of running a ``subtree`` partitioned ``dop`` ways.

    Ideal linear partitioning of the subtree's work, plus per-worker
    startup and per-tuple transfer across the exchange.  At dop=1 this is
    strictly greater than the serial subtree cost (startup + transfer),
    which is what lets the start-up decision fall back to the serial
    alternative when no parallelism is available.
    """
    return (
        subtree / dop
        + model.exchange_startup_seconds * dop
        + tuples * model.exchange_tuple_seconds
    )


def parallel_execution_cost(
    model: CostModel,
    subtree_cost: Interval,
    output_cardinality: Interval,
    dop: Interval,
) -> Interval:
    """Interval cost of an exchange running its input subtree in parallel.

    The cost is *not* monotone in the degree of parallelism — dividing the
    subtree's work fights the per-worker startup charge, giving a convex
    function of ``dop`` — so :func:`monotone_interval` cannot lift it.
    Convexity means the maximum over a dop interval sits at a corner, while
    the minimum may sit at the interior stationary point
    ``sqrt(subtree / startup)``; both bounds are evaluated accordingly so
    the compile-time interval still contains every run-time point value
    (the containment invariant the fuzzer checks).
    """

    def min_over_dop(subtree: float, tuples: float) -> float:
        candidates = [
            _parallel_point_cost(model, subtree, tuples, dop.low),
            _parallel_point_cost(model, subtree, tuples, dop.high),
        ]
        if model.exchange_startup_seconds > 0.0 and subtree > 0.0:
            stationary = math.sqrt(subtree / model.exchange_startup_seconds)
            if dop.low < stationary < dop.high:
                candidates.append(
                    _parallel_point_cost(model, subtree, tuples, stationary)
                )
        return min(candidates)

    low = min_over_dop(subtree_cost.low, output_cardinality.low)
    high = max(
        _parallel_point_cost(
            model, subtree_cost.high, output_cardinality.high, dop.low
        ),
        _parallel_point_cost(
            model, subtree_cost.high, output_cardinality.high, dop.high
        ),
    )
    return Interval(low, high)
