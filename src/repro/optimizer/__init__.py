"""The dynamic-plan optimizer: Volcano-style search with partial plan orders.

This package holds the paper's core contribution: a top-down, memoizing
dynamic-programming search engine (:mod:`repro.optimizer.engine`) whose
cost comparisons may return *incomparable*, whose memo groups keep *sets*
of non-dominated plans (:mod:`repro.optimizer.winners`), and whose output
links incomparable alternatives with choose-plan operators into a dynamic
plan.  The façade (:mod:`repro.optimizer.optimizer`) selects between
static, dynamic, exhaustive, and run-time optimization modes.
"""

from repro.optimizer.optimizer import (
    OptimizationMode,
    OptimizationResult,
    optimize_query,
)
from repro.optimizer.engine import SearchEngine, SearchStats
from repro.optimizer.winners import WinnerSet

__all__ = [
    "OptimizationMode",
    "OptimizationResult",
    "optimize_query",
    "SearchEngine",
    "SearchStats",
    "WinnerSet",
]
