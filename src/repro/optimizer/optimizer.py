"""Optimizer façade: one call covering all of the paper's scenarios.

:func:`optimize_query` runs the search engine under an environment chosen
by mode:

* ``STATIC`` — expected-value points, "costs as points represented by
  intervals [expected-value, expected-value]" (Section 6); produces a
  traditional static plan.
* ``DYNAMIC`` — full parameter domains, "[domain-minimum, domain-maximum]";
  produces a dynamic plan with choose-plan operators.
* ``RUN_TIME`` — actual run-time values (requires ``binding``); models the
  run-time-optimization scenario of Figure 3.
* ``EXHAUSTIVE`` — every comparison declared incomparable; produces the
  paper's "exhaustive plan" containing absolutely all plans (Section 3's
  optimality baseline, practical only for small queries).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute
from repro.cost.context import CostContext
from repro.cost.model import CostModel
from repro.errors import OptimizationError
from repro.logical.query import QueryGraph
from repro.obs.log import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.optimizer.engine import SearchEngine, SearchStats
from repro.params.parameter import Environment
from repro.physical.plan import (
    PlanNode,
    count_choose_plan_nodes,
    count_plan_nodes,
)


_LOG = get_logger(__name__)


def _record_metrics(
    mode: "OptimizationMode", stats: SearchStats, elapsed: float
) -> None:
    """Fold one optimization run into the process-global metrics registry."""
    metrics = get_metrics()
    metrics.counter("optimizer.runs").inc()
    metrics.counter(f"optimizer.runs.{mode.value}").inc()
    metrics.timer("optimizer.time").observe(elapsed)
    for name, value in stats.as_dict().items():
        if name == "largest_winner_set":
            metrics.gauge("optimizer.largest_winner_set").max(value)
        else:
            metrics.counter(f"optimizer.{name}").inc(value)


class OptimizationMode(enum.Enum):
    """Which of the paper's optimization scenarios to run."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    RUN_TIME = "run-time"
    EXHAUSTIVE = "exhaustive"


@dataclass(frozen=True)
class OptimizationResult:
    """A finished optimization: the plan plus effort accounting."""

    plan: PlanNode
    mode: OptimizationMode
    env: Environment
    ctx: CostContext
    stats: SearchStats
    optimization_seconds: float

    @property
    def plan_node_count(self) -> int:
        """Operator nodes in the plan DAG (the paper's Figure 6 metric)."""
        return count_plan_nodes(self.plan)

    @property
    def choose_plan_count(self) -> int:
        """Choose-plan operators in the plan DAG."""
        return count_choose_plan_nodes(self.plan)

    @property
    def is_dynamic(self) -> bool:
        """True when the plan contains at least one choose-plan operator."""
        return self.choose_plan_count > 0

    @property
    def modeled_optimization_seconds(self) -> float:
        """Optimization effort in model time (counted work × calibration).

        Deterministic and machine-independent, used wherever optimization
        effort must be combined with the analytic I/O and execution model
        (Figure 8, break-even analysis).  ``optimization_seconds`` remains
        the truly measured wall-clock time (Figure 5).
        """
        return (
            self.stats.candidates_considered
            * self.ctx.model.optimizer_candidate_seconds
        )


def optimize_query(
    query: QueryGraph,
    catalog: Catalog,
    model: CostModel | None = None,
    mode: OptimizationMode = OptimizationMode.DYNAMIC,
    binding: Mapping[str, float] | None = None,
    required_order: Attribute | tuple[Attribute, ...] | None = None,
    pruning: bool = True,
    access_rules=None,
    join_rules=None,
    probe_samples: int = 0,
) -> OptimizationResult:
    """Optimize ``query`` against ``catalog`` in the given mode.

    ``binding`` supplies actual parameter values and is required for (and
    only for) ``RUN_TIME`` mode.  ``pruning=False`` disables
    branch-and-bound entirely (ablation support).  ``access_rules`` /
    ``join_rules`` replace the default implementation-rule sets — the
    Volcano-generator extensibility point for adding algorithms without
    touching the search engine.  ``probe_samples > 0`` enables the
    Section 3 consistently-cheaper heuristic: plans whose intervals overlap
    are additionally compared at that many sampled bindings (plus the two
    domain corners) and the loser is dropped — smaller dynamic plans, but
    optimality becomes heuristic.
    """
    from repro.optimizer.probing import ProbePolicy
    from repro.optimizer.rules import DEFAULT_ACCESS_RULES, DEFAULT_JOIN_RULES

    model = model if model is not None else CostModel()
    env = _environment_for(query, mode, binding)
    ctx = CostContext(catalog=catalog, model=model, env=env)
    probe = ProbePolicy(ctx, samples=probe_samples) if probe_samples > 0 else None
    engine = SearchEngine(
        query=query,
        ctx=ctx,
        access_rules=(
            tuple(access_rules) if access_rules is not None else DEFAULT_ACCESS_RULES
        ),
        join_rules=(
            tuple(join_rules) if join_rules is not None else DEFAULT_JOIN_RULES
        ),
        exhaustive=(mode is OptimizationMode.EXHAUSTIVE),
        pruning=pruning and mode is not OptimizationMode.EXHAUSTIVE,
        probe=probe,
    )
    tracer = get_tracer()
    started = time.perf_counter()
    if tracer.enabled:
        with tracer.span(
            "optimizer.query",
            mode=mode.value,
            relations=sorted(query.relation_set),
            uncertain=sorted(env.uncertain_names),
        ) as span:
            plan = engine.optimize(required_order=required_order)
            span.set(**engine.stats.as_dict())
    else:
        plan = engine.optimize(required_order=required_order)
    elapsed = time.perf_counter() - started
    _record_metrics(mode, engine.stats, elapsed)
    _LOG.debug(
        "optimized %d relations in %s mode: %d candidates, %.2f ms",
        len(query.relation_set),
        mode.value,
        engine.stats.candidates_considered,
        elapsed * 1000,
    )
    return OptimizationResult(
        plan=plan,
        mode=mode,
        env=env,
        ctx=ctx,
        stats=engine.stats,
        optimization_seconds=elapsed,
    )


def _environment_for(
    query: QueryGraph,
    mode: OptimizationMode,
    binding: Mapping[str, float] | None,
) -> Environment:
    space = query.parameters
    if mode is OptimizationMode.RUN_TIME:
        if binding is None:
            raise OptimizationError("RUN_TIME optimization requires a binding")
        return space.bind(binding)
    if binding is not None:
        raise OptimizationError(f"{mode.value} optimization does not take a binding")
    if mode is OptimizationMode.STATIC:
        return space.static_environment()
    return space.dynamic_environment()
