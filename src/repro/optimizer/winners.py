"""Winner sets: the non-dominated frontier of a memo group.

Traditional dynamic programming keeps exactly one winner per group; with
partially ordered costs a group keeps every plan not *dominated* by another
(Section 3: "there may be more than a single plan for a given combination
of a logical algebra expression and desirable physical properties, and it
is impossible to prune all but one of them").

Dominance is certainty of being no more expensive: plan A dominates plan B
when A's worst case does not exceed B's best case.  Overlapping cost
intervals leave both plans in the set — they will be linked by a
choose-plan operator.  With point costs (static optimization) the set
always collapses to a single plan, recovering traditional behaviour.

Dominance compares *execution* costs (excluding choose-plan decision
overhead): the start-up decision procedure minimizes execution cost, so a
plan may only be discarded when its execution cost certainly loses.
Comparing overhead-inflated totals instead can prune an alternative whose
embedded choose-plans make its total look expensive even though it wins
the start-up decision at some binding — which would silently break the
gᵢ = dᵢ guarantee.
"""

from __future__ import annotations

from repro.physical.plan import PlanNode
from repro.util.interval import Interval


class WinnerSet:
    """Mutually incomparable plans for one (group, properties) pair."""

    __slots__ = ("plans", "keep_all", "probe")

    def __init__(self, keep_all: bool = False, probe=None) -> None:
        self.plans: list[PlanNode] = []
        # keep_all realizes the paper's "exhaustive plan": every cost
        # comparison is treated as incomparable, so nothing is pruned.
        self.keep_all = keep_all
        # Optional ProbePolicy: detect consistently-cheaper plans whose
        # intervals overlap (the paper's Section 3 heuristic, opt-in).
        self.probe = probe

    def __len__(self) -> int:
        return len(self.plans)

    def __iter__(self):
        return iter(self.plans)

    def consider(self, candidate: PlanNode) -> bool:
        """Offer a plan to the set.

        Returns True when the candidate was retained.  Plans dominated by
        the candidate are removed; the candidate is dropped when an existing
        plan dominates it.  Ties between identical point costs keep the
        earlier plan (traditional arbitrary tie-breaking).
        """
        if self.keep_all:
            self.plans.append(candidate)
            return True
        cost = candidate.execution_cost
        for existing in self.plans:
            if existing.execution_cost.dominates(cost):
                return False
        self.plans = [
            p for p in self.plans if not cost.dominates(p.execution_cost)
        ]
        if self.probe is not None:
            for existing in self.plans:
                if self.probe.consistently_cheaper(existing, candidate):
                    return False
            self.plans = [
                p
                for p in self.plans
                if not self.probe.consistently_cheaper(candidate, p)
            ]
        self.plans.append(candidate)
        return True

    def best_upper_bound(self) -> float:
        """Tightest worst-case bound proven by any retained plan.

        This is the only bound branch-and-bound may use with interval costs
        (Section 3): a new plan can be discarded only when its *minimum*
        cost exceeds some retained plan's *maximum*.  Measured over
        execution costs, consistently with :meth:`consider`.
        """
        if not self.plans:
            return float("inf")
        return min(plan.execution_cost.high for plan in self.plans)

    def combined_cost(self, choose_plan_overhead: float) -> Interval:
        """Cost interval of the group's dynamic plan.

        A single winner keeps its own cost; multiple winners combine as the
        pointwise minimum plus the choose-plan decision overhead
        (Section 5's interval semantics of choose-plan).
        """
        if not self.plans:
            raise ValueError("empty winner set has no cost")
        combined = self.plans[0].cost
        for plan in self.plans[1:]:
            combined = combined.min_with(plan.cost)
        if len(self.plans) > 1:
            overhead = choose_plan_overhead * (len(self.plans) - 1)
            combined = combined + Interval.point(overhead)
        return combined
