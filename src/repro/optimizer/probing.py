"""Probing comparison: detecting consistently-cheaper plans (Section 3).

The paper identifies two situations where interval costs look incomparable
but are not: consistently *equal* plans (the two merge-join orders) and
consistently *cheaper* plans (one cost function below the other across the
whole parameter domain).  Analytic comparison of cost functions is ruled
out as unrealistic; instead the paper proposes "to evaluate the cost
function for a number of possible parameter values and to surmise that if
one plan is estimated more expensive than the other for all these
parameter values, it ... can be dropped from further consideration."

The prototype in the paper deliberately leaves this out ("the most naive
manner ... to present our techniques in the most conservative way").  We
implement it as an *opt-in* :class:`ProbePolicy` so the ablation benchmark
can quantify the trade-off: smaller dynamic plans versus a heuristic
guarantee — if two plans are actually both optimal for different bindings
but the sampled probes miss it, the optimal dynamic plan is lost.
"""

from __future__ import annotations

from repro.cost.context import CostContext
from repro.params.parameter import Environment
from repro.physical.plan import PlanNode
from repro.util.rng import make_rng


class ProbePolicy:
    """Samples the parameter domain and compares plans point-wise.

    ``samples`` random bindings are drawn uniformly from each parameter's
    domain (plus the all-minimum and all-maximum corners).  Plan costs at a
    binding are obtained by re-evaluating the cost functions bottom-up —
    the same machinery as the start-up decision procedure — and memoized
    per (plan, binding).
    """

    def __init__(self, ctx: CostContext, samples: int = 6, seed: int = 0) -> None:
        from repro.runtime.chooser import resolve_plan

        self._resolve = resolve_plan
        self.ctx = ctx
        space = ctx.env.space
        rng = make_rng(seed)
        bindings = [
            {p.name: p.domain.low for p in space},
            {p.name: p.domain.high for p in space},
        ]
        for _ in range(max(0, samples)):
            bindings.append(
                {p.name: rng.uniform(p.domain.low, p.domain.high) for p in space}
            )
        self._envs: list[Environment] = [space.bind(b) for b in bindings]
        self._costs: dict[tuple[int, int], float] = {}
        self.comparisons = 0
        self.drops = 0

    def cost_at(self, plan: PlanNode, env_index: int) -> float:
        """Plan cost at the given sample binding (memoized)."""
        key = (id(plan), env_index)
        cached = self._costs.get(key)
        if cached is None:
            ctx = self.ctx.with_env(self._envs[env_index])
            cached = self._resolve(plan, ctx).execution_cost
            self._costs[key] = cached
        return cached

    def consistently_cheaper(self, cheaper: PlanNode, pricier: PlanNode) -> bool:
        """True when ``cheaper`` wins or ties at every sampled binding.

        Requires a strict win somewhere: two consistently *equal* plans
        (e.g. the two merge-join orders) are also collapsed, implementing
        the paper's first situation with an arbitrary (first-wins) choice.
        """
        self.comparisons += 1
        strict = False
        for index in range(len(self._envs)):
            a = self.cost_at(cheaper, index)
            b = self.cost_at(pricier, index)
            if a > b * (1 + 1e-12):
                return False
            if a < b:
                strict = True
        if strict or all(
            self.cost_at(cheaper, i) == self.cost_at(pricier, i)
            for i in range(len(self._envs))
        ):
            self.drops += 1
            return True
        return False
