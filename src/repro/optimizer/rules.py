"""Implementation rules: logical operators → physical algorithms.

Following the Volcano optimizer generator's architecture, each rule is a
first-class object mapping a logical situation to a physical algorithm
(Table 1: Get-Set → File-Scan / B-tree-Scan, Select → Filter /
Filter-B-tree-Scan, Join → Hash-Join / Merge-Join / Index-Join).  The
engine supplies services (cost context, memoized input optimization with a
branch-and-bound budget, subset cardinalities); rules stay declarative and
independently testable, preserving the generator's extensibility story —
adding an algorithm means adding a rule, not touching the search engine.

Rules return ``PRUNED`` when the branch-and-bound budget cut off an input's
optimization; the engine decides whether that affects group completeness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Protocol

from repro.catalog.schema import Attribute
from repro.cost import formulas
from repro.cost.context import CostContext
from repro.logical.predicates import JoinPredicate, SelectionPredicate
from repro.physical.plan import (
    BtreeScanNode,
    FileScanNode,
    FilterNode,
    HashJoinNode,
    IndexJoinNode,
    MergeJoinNode,
    NestedLoopsJoinNode,
    PlanNode,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.engine import SearchEngine


class _PrunedType:
    """Sentinel: a candidate was cut off by the cost limit."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PRUNED"


PRUNED = _PrunedType()


class AccessRule(Protocol):
    """Produces access plans for a single-relation (leaf) group."""

    name: str

    def build(
        self,
        engine: "SearchEngine",
        relation: str,
        predicates: tuple[SelectionPredicate, ...],
        required_order: Attribute | None,
    ) -> Iterator[PlanNode]:
        """Yield candidate access plans (order enforcement is the engine's)."""
        ...


class JoinRule(Protocol):
    """Produces join plans for a partition of a multi-relation group."""

    name: str

    def build(
        self,
        engine: "SearchEngine",
        left: frozenset[str],
        right: frozenset[str],
        predicates: tuple[JoinPredicate, ...],
        budget: float | None,
    ) -> Iterator[PlanNode | _PrunedType]:
        """Yield candidate join plans, or ``PRUNED`` markers."""
        ...


def _apply_filters(
    ctx: CostContext, plan: PlanNode, predicates: Iterator[SelectionPredicate]
) -> PlanNode:
    """Stack Filter operators for the given predicates on top of ``plan``."""
    for predicate in predicates:
        plan = FilterNode(ctx, plan, predicate)
    return plan


# ----------------------------------------------------------------------
# Access rules (Get-Set / Select implementations)
# ----------------------------------------------------------------------
class FileScanRule:
    """Get-Set → File-Scan, selections via Filter operators on top."""

    name = "file-scan"

    def build(self, engine, relation, predicates, required_order):
        plan: PlanNode = FileScanNode(engine.ctx, relation)
        yield _apply_filters(engine.ctx, plan, iter(predicates))


class FilterBtreeScanRule:
    """Select + Get-Set → Filter-B-tree-Scan through an index.

    One candidate per indexed range predicate: that predicate is evaluated
    in the index; remaining selections become Filters above.
    """

    name = "filter-btree-scan"

    def build(self, engine, relation, predicates, required_order):
        ctx = engine.ctx
        for lead in predicates:
            if not lead.op.is_range:
                continue
            if ctx.catalog.index_on(lead.attribute) is None:
                continue
            plan: PlanNode = BtreeScanNode(
                ctx, relation, key=lead.attribute, predicate=lead
            )
            rest = (p for p in predicates if p is not lead)
            yield _apply_filters(ctx, plan, rest)


class BtreeScanRule:
    """Get-Set → full B-tree-Scan, valuable only for the order it delivers.

    Generated only when the group requires a sort order this relation can
    provide through an index; without an order requirement a full
    unclustered B-tree scan is always dominated by a file scan.
    """

    name = "btree-scan"

    def build(self, engine, relation, predicates, required_order):
        if required_order is None or required_order.relation != relation:
            return
        ctx = engine.ctx
        if ctx.catalog.index_on(required_order) is None:
            return
        # Skip when a predicate on the order attribute exists: the
        # Filter-B-tree-Scan rule already yields an ordered plan for it.
        if any(p.attribute == required_order and p.op.is_range for p in predicates):
            return
        plan: PlanNode = BtreeScanNode(ctx, relation, key=required_order, predicate=None)
        yield _apply_filters(ctx, plan, iter(predicates))


# ----------------------------------------------------------------------
# Join rules
# ----------------------------------------------------------------------
class HashJoinRule:
    """Join → Hash-Join with the left partition as the build input.

    Ordered partition enumeration realizes commutativity, so each call
    builds exactly one role assignment; the swapped roles arrive with the
    mirrored partition.
    """

    name = "hash-join"

    def build(self, engine, left, right, predicates, budget):
        if not predicates:
            return  # cross products belong to the nested-loops rule
        ctx = engine.ctx
        op_cost = formulas.hash_join_cost(
            ctx.model,
            engine.cardinality(left),
            engine.cardinality(right),
            engine.join_cardinality(left, right, predicates),
            record_bytes=512,
            memory_pages=ctx.memory_pages,
        )
        inputs = engine.optimize_inputs(
            ((left, None), (right, None)), op_cost.low, budget
        )
        if inputs is None:
            yield PRUNED
            return
        build_input, probe_input = inputs
        yield HashJoinNode(ctx, build_input, probe_input, predicates)


class MergeJoinRule:
    """Join → Merge-Join; inputs must deliver the join attributes' order.

    The required orders are satisfied either by naturally ordered inputs
    (B-tree scans, prior merge joins) or by Sort enforcers the input groups
    insert themselves.
    """

    name = "merge-join"

    def build(self, engine, left, right, predicates, budget):
        if not predicates:
            return  # cross products belong to the nested-loops rule
        ctx = engine.ctx
        primary = predicates[0]
        left_key = _side_in(primary, left)
        right_key = _side_in(primary, right)
        op_cost = formulas.merge_join_cost(
            ctx.model,
            engine.cardinality(left),
            engine.cardinality(right),
            engine.join_cardinality(left, right, predicates),
        )
        inputs = engine.optimize_inputs(
            ((left, left_key), (right, right_key)), op_cost.low, budget
        )
        if inputs is None:
            yield PRUNED
            return
        left_input, right_input = inputs
        yield MergeJoinNode(ctx, left_input, right_input, predicates)


class IndexJoinRule:
    """Join → Index-Join probing a B-tree on a single inner relation.

    Applicable when the right partition is one base relation with an index
    on its join attribute.  The inner relation's selection predicates are
    applied by Filters above the join, after each probe.
    """

    name = "index-join"

    def build(self, engine, left, right, predicates, budget):
        if not predicates or len(right) != 1:
            return
        ctx = engine.ctx
        (inner_relation,) = right
        inner_key = _side_in(predicates[0], right)
        index = ctx.catalog.index_on(inner_key)
        if index is None:
            return
        # The budget check must use the same clusteredness the constructed
        # node will cost with: treating a clustered index as unclustered
        # overstates the candidate's lower bound, and an overstated lower
        # bound makes branch-and-bound pruning unsound (it can discard the
        # run-time optimum and break g = d).
        op_cost = formulas.index_join_cost(
            ctx.model,
            engine.cardinality(left),
            ctx.catalog.relation(inner_relation).stats,
            engine.join_cardinality(left, right, predicates),
            clustered=index.clustered,
        )
        inputs = engine.optimize_inputs(((left, None),), op_cost.low, budget)
        if inputs is None:
            yield PRUNED
            return
        (outer,) = inputs
        plan: PlanNode = IndexJoinNode(
            ctx, outer, inner_relation, inner_key, predicates
        )
        inner_selections = engine.query.selections_on(inner_relation)
        yield _apply_filters(ctx, plan, iter(inner_selections))


class NestedLoopsJoinRule:
    """Join → block nested-loops join.

    By default only instantiated for *cross products* (empty predicate
    sets), where it is the only applicable algorithm; with
    ``cross_products_only=False`` it competes on every partition (usually
    dominated, but a DBI may want it for non-equijoin extensions).
    """

    name = "nested-loops-join"

    def __init__(self, cross_products_only: bool = True) -> None:
        self.cross_products_only = cross_products_only

    def build(self, engine, left, right, predicates, budget):
        if predicates and self.cross_products_only:
            return
        ctx = engine.ctx
        op_cost = formulas.nested_loops_join_cost(
            ctx.model,
            engine.cardinality(left),
            engine.cardinality(right),
            engine.join_cardinality(left, right, predicates),
            record_bytes=512,
            memory_pages=ctx.memory_pages,
        )
        inputs = engine.optimize_inputs(
            ((left, None), (right, None)), op_cost.low, budget
        )
        if inputs is None:
            yield PRUNED
            return
        outer, inner = inputs
        yield NestedLoopsJoinNode(ctx, outer, inner, predicates)


def _side_in(predicate: JoinPredicate, relations: frozenset[str]) -> Attribute:
    """The attribute of ``predicate`` belonging to a relation in the set."""
    if predicate.left.relation in relations:
        return predicate.left
    return predicate.right


DEFAULT_ACCESS_RULES: tuple[AccessRule, ...] = (
    FileScanRule(),
    FilterBtreeScanRule(),
    BtreeScanRule(),
)

DEFAULT_JOIN_RULES: tuple[JoinRule, ...] = (
    HashJoinRule(),
    MergeJoinRule(),
    IndexJoinRule(),
    NestedLoopsJoinRule(),
)
