"""The search engine: top-down memoizing DP with partially ordered costs.

The engine refines the Volcano search strategy (Section 2) in exactly the
ways the paper describes:

* **Winner sets instead of single winners.**  Each (relation set, required
  sort order) group keeps every plan not dominated under the interval-cost
  partial order; multiple winners are linked by a choose-plan operator and
  the group's cost becomes the pointwise minimum plus decision overhead.
* **Weakened branch-and-bound (Section 3).**  Only a retained plan's
  *maximum* cost can serve as a limit, and only *minimum* costs can be
  subtracted when budgeting input optimizations.  With point costs (static
  mode) limits collapse to the traditional, much more effective pruning —
  the difference is the paper's main optimization-time result (Figure 5).
* **Memoization-safe pruning.**  Every group is optimized to completion and
  memoized; candidate-level pruning uses only the group's *own* best
  worst-case bound (pure dominance), and a caller's limit is checked against
  the completed group's proven lower bound.  Both prunes are sound for
  dynamic plans — a discarded candidate is certainly non-optimal for every
  run-time binding — so the Section 3 optimality guarantee holds: every plan
  that could be optimal for some binding is in the winner set.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.catalog.schema import Attribute
from repro.cost.context import DOP_PARAMETER, CostContext
from repro.errors import OptimizationError
from repro.logical.estimation import estimate_selectivity
from repro.logical.query import QueryGraph, enumerate_partitions
from repro.logical.predicates import JoinPredicate
from repro.obs.trace import get_tracer
from repro.optimizer.memo import GroupResult, Memo, Pruned
from repro.optimizer.rules import (
    DEFAULT_ACCESS_RULES,
    DEFAULT_JOIN_RULES,
    PRUNED,
    AccessRule,
    JoinRule,
)
from repro.optimizer.winners import WinnerSet
from repro.parallel.rules import parallel_alternative
from repro.physical.ordering import Ordering, as_ordering
from repro.physical.plan import (
    ChoosePlanNode,
    HashAggregateNode,
    PlanNode,
    ProjectNode,
    SortedAggregateNode,
    SortNode,
    enforce_ordering,
)
from repro.util.interval import Interval


@dataclass
class SearchStats:
    """Search-effort counters, reported alongside optimization times."""

    groups_completed: int = 0
    partitions_considered: int = 0
    candidates_considered: int = 0
    candidates_retained: int = 0
    candidates_pruned: int = 0
    largest_winner_set: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat dict form — the one serialization path shared by harness
        reports, metrics snapshots, and trace span attributes."""
        return asdict(self)


@dataclass
class SearchEngine:
    """One optimization run over one query under one environment."""

    query: QueryGraph
    ctx: CostContext
    access_rules: tuple[AccessRule, ...] = DEFAULT_ACCESS_RULES
    join_rules: tuple[JoinRule, ...] = DEFAULT_JOIN_RULES
    exhaustive: bool = False
    pruning: bool = True
    probe: object | None = None  # optional ProbePolicy (Section 3 heuristic)
    memo: Memo = field(default_factory=Memo)
    stats: SearchStats = field(default_factory=SearchStats)

    def __post_init__(self) -> None:
        self._cardinalities: dict[frozenset[str], Interval] = {}
        # One tracer lookup per engine; hot paths guard on `.enabled` so
        # the default no-op tracer costs a single attribute check.
        self._obs = get_tracer()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def optimize(
        self,
        required_order: Attribute | tuple[Attribute, ...] | None = None,
    ) -> PlanNode:
        """Optimize the whole query; returns the (possibly dynamic) plan.

        ``required_order`` is a single attribute, an attribute tuple (a
        multi-key ORDER BY, leading key first), or None.
        """
        keys = as_ordering(required_order)
        if self.query.aggregate is not None:
            return self._optimize_aggregate(self.query.aggregate, keys)
        if len(keys) > 1:
            return self._optimize_multikey_root(keys)
        order = keys[0] if keys else None
        result = self.optimize_group(self.query.relation_set, order, None)
        if isinstance(result, Pruned):  # pragma: no cover - limit=None never prunes
            raise OptimizationError("root group pruned without a cost limit")
        plan = result.plan
        if self._parallel_enabled():
            plan = self._parallelize_root(result.winners, order)
        if self.query.projection is not None:
            plan = ProjectNode(self.ctx, plan, tuple(self.query.projection))
        return plan

    def _optimize_multikey_root(self, keys: Ordering) -> PlanNode:
        """Root handling for a multi-attribute ORDER BY.

        Memo groups are keyed on single sort attributes (the leading key),
        so the full ordering is enforced per alternative at the root: a
        full Sort over the unordered group's shared plan competes with
        every winner of the leading-key-ordered group extended by
        :func:`enforce_ordering` (a no-op when the winner's derived
        ordering already covers the keys, a partial sort when only a
        prefix does, a full sort otherwise).  Enforcement stays *below*
        the combining choose-plan, preserving gᵢ = dᵢ.  Parallel twins
        are skipped: the exchange merge restores order on a single merge
        key only, which would destroy a multi-key global order.
        """
        winners = WinnerSet(keep_all=self.exhaustive, probe=self.probe)
        base = self.optimize_group(self.query.relation_set, None, None)
        assert isinstance(base, GroupResult)
        self._consider(winners, SortNode(self.ctx, base.plan, keys), keys[0])
        ordered = self.optimize_group(self.query.relation_set, keys[0], None)
        assert isinstance(ordered, GroupResult)
        for winner in ordered.winners.plans:
            self._consider(
                winners, enforce_ordering(self.ctx, winner, keys), keys[0]
            )
        plan = self._combined_plan(winners)
        if self.query.projection is not None:
            plan = ProjectNode(self.ctx, plan, tuple(self.query.projection))
        return plan

    def _parallel_enabled(self) -> bool:
        """Parallel alternatives are produced only when the query declares a
        degree-of-parallelism parameter — serial queries see zero change."""
        return DOP_PARAMETER in self.ctx.env.space

    def _parallelize_root(
        self, winners: WinnerSet, required_order: Attribute | None
    ) -> PlanNode:
        """Augment the root winner set with parallel alternatives.

        Each retained serial winner competes against its exchange-wrapped
        twin in a fresh winner set.  Because the parallel cost transform is
        strictly increasing in the serial subtree cost at every binding
        (see :mod:`repro.parallel.rules`), re-considering only the *root*
        winners loses nothing: a serial plan dominated before
        parallelization is still dominated after, so the group-level search
        need not know about exchanges at all.  With the DOP interval
        spanning 1, a parallel plan's cost straddles its serial twin's
        (startup-penalized at DOP=1, cheaper at high DOP) — the
        incomparability that keeps both alive under a choose-plan until the
        start-up decision binds the actual degree.
        """
        augmented = WinnerSet(keep_all=self.exhaustive, probe=self.probe)
        for serial in winners.plans:
            self._consider_with_parallel(augmented, serial, required_order)
        return self._combined_plan(augmented)

    def _consider_with_parallel(
        self, winners: WinnerSet, plan: PlanNode, order: Attribute | None
    ) -> None:
        """Offer a candidate and, when enabled and safe, its parallel twin."""
        self._consider(winners, plan, order)
        if not self._parallel_enabled():
            return
        parallel = parallel_alternative(self.ctx, plan)
        if parallel is not None:
            self._consider(winners, parallel, order)

    def _optimize_aggregate(
        self, spec, required_order: Ordering = ()
    ) -> PlanNode:
        """Aggregation root: hash vs sorted implementations compete.

        Hash aggregation consumes the unordered group's plan; sorted
        aggregation consumes the group optimized for the grouping order
        (free from an index, a merge join, or a Sort enforcer).  The two
        costs depend on uncertain input cardinalities and memory, so with
        interval costs they are frequently incomparable and a choose-plan
        tops the dynamic plan.

        A final ORDER BY is enforced on each alternative *before* it enters
        the winner set, never above the combining choose-plan: the sorted
        aggregate often delivers the order for free, and a Sort bolted onto
        the choose node would be paid even when the start-up decision picks
        the already-ordered alternative, breaking gᵢ = dᵢ.
        """
        winners = WinnerSet(keep_all=self.exhaustive, probe=self.probe)
        base = self.optimize_group(self.query.relation_set, None, None)
        assert isinstance(base, GroupResult)
        # Parallel variants of each aggregate implementation enter the same
        # winner set as first-class candidates (the aggregate itself stays
        # serial; only its input subtree is exchanged), preserving the
        # frontier property that underlies gᵢ = dᵢ.  Under a *multi-key*
        # ORDER BY parallel twins are skipped — the exchange merge restores
        # a single merge key's order only.
        self._consider_aggregate_candidate(
            winners,
            self._enforce_order(
                HashAggregateNode(self.ctx, base.plan, spec), required_order
            ),
            required_order,
        )
        if spec.group_by:
            ordered = self.optimize_group(
                self.query.relation_set, spec.group_by[0], None
            )
            assert isinstance(ordered, GroupResult)
            self._consider_aggregate_candidate(
                winners,
                self._enforce_order(
                    SortedAggregateNode(self.ctx, ordered.plan, spec),
                    required_order,
                ),
                required_order,
            )
        return self._combined_plan(winners)

    def _consider_aggregate_candidate(
        self, winners: WinnerSet, plan: PlanNode, required_order: Ordering
    ) -> None:
        if len(required_order) > 1:
            self._consider(winners, plan, None)
        else:
            self._consider_with_parallel(winners, plan, None)

    def _enforce_order(
        self, plan: PlanNode, required_order: Ordering
    ) -> PlanNode:
        """Enforce the ordering above one alternative, never above a
        choose-plan: a no-op when delivered, a partial sort when a usable
        prefix is available, a full Sort otherwise."""
        return enforce_ordering(self.ctx, plan, required_order)

    # ------------------------------------------------------------------
    # Group optimization
    # ------------------------------------------------------------------
    def optimize_group(
        self,
        subset: frozenset[str],
        order: Attribute | None,
        limit: float | None,
    ) -> GroupResult | Pruned:
        """Optimize one (relations, order) group under a cost limit.

        ``limit`` is an upper bound from the caller's branch-and-bound
        budget: if every plan of this group certainly costs at least
        ``limit``, the caller's candidate cannot matter and ``Pruned`` is
        returned.
        """
        key = (subset, order)
        cached = self.memo.lookup(key)
        if cached is None:
            if self._obs.enabled:
                with self._obs.span(
                    "optimizer.group",
                    relations=sorted(subset),
                    order=order.qualified_name if order is not None else None,
                ) as span:
                    cached = self._optimize_group_fresh(subset, order)
                    span.set(
                        winners=len(cached.winners),
                        cost_low=cached.cost.low,
                        cost_high=cached.cost.high,
                    )
            else:
                cached = self._optimize_group_fresh(subset, order)
            self.memo.store(key, cached)
            self.stats.groups_completed += 1
        # Limits are execution-cost bounds (see WinnerSet), so the group's
        # proven lower bound must be execution cost too.
        lower_bound = cached.plan.execution_cost.low
        if limit is not None and lower_bound >= limit:
            if self._obs.enabled:
                self._obs.event(
                    "search.group_pruned",
                    relations=sorted(subset),
                    order=order.qualified_name if order is not None else None,
                    lower_bound=lower_bound,
                    limit=limit,
                )
            return Pruned(lower_bound)
        return cached

    def _optimize_group_fresh(
        self, subset: frozenset[str], order: Attribute | None
    ) -> GroupResult:
        """Optimize an uncached group to completion (no memo interaction)."""
        winners = WinnerSet(keep_all=self.exhaustive, probe=self.probe)
        if order is not None:
            # Enforcer candidate: Sort over the unordered group's plan.
            # Sharing the unordered group's (possibly dynamic) plan object
            # keeps the emitted DAG small — one scan of R serves both the
            # unordered uses and every sort-enforced use.
            base = self.optimize_group(subset, None, None)
            assert isinstance(base, GroupResult)
            self._consider(winners, SortNode(self.ctx, base.plan, order), order)
        if len(subset) == 1:
            self._generate_access_plans(subset, order, winners)
        else:
            self._generate_join_plans(subset, order, winners)
        if not winners.plans:
            raise OptimizationError(
                f"no plan found for relations {sorted(subset)} "
                f"(disconnected join graph?)"
            )
        plan = self._combined_plan(winners)
        self.stats.largest_winner_set = max(
            self.stats.largest_winner_set, len(winners)
        )
        return GroupResult(winners=winners, plan=plan, cost=plan.cost)

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _generate_access_plans(
        self,
        subset: frozenset[str],
        order: Attribute | None,
        winners: WinnerSet,
    ) -> None:
        (relation,) = subset
        predicates = self.query.selections_on(relation)
        for rule in self.access_rules:
            for plan in rule.build(self, relation, predicates, order):
                self._consider(winners, plan, order)

    def _generate_join_plans(
        self,
        subset: frozenset[str],
        order: Attribute | None,
        winners: WinnerSet,
    ) -> None:
        """Enumerate partitions × join rules for a multi-relation group.

        The first pass considers only *connected* partitions joined by at
        least one predicate — the useful plan space for connected query
        graphs.  When that yields nothing (the subset's join graph is
        disconnected), a fallback pass offers predicate-free partitions so
        cross-product-capable rules (nested-loops join) can cover it.
        """
        for left, right in enumerate_partitions(subset):
            predicates = tuple(self.query.joins_between(left, right))
            if not predicates:
                continue
            if not (self.query.is_connected(left) and self.query.is_connected(right)):
                continue
            self._apply_join_rules(left, right, predicates, winners, order)
        if winners.plans:
            return
        for left, right in enumerate_partitions(subset):
            predicates = tuple(self.query.joins_between(left, right))
            self._apply_join_rules(left, right, predicates, winners, order)

    def _apply_join_rules(
        self,
        left: frozenset[str],
        right: frozenset[str],
        predicates,
        winners: WinnerSet,
        order: Attribute | None,
    ) -> None:
        self.stats.partitions_considered += 1
        for rule in self.join_rules:
            budget = self._budget(winners)
            for outcome in rule.build(self, left, right, predicates, budget):
                if outcome is PRUNED:
                    self.stats.candidates_pruned += 1
                    if self._obs.enabled:
                        self._obs.event(
                            "search.prune",
                            reason="budget",
                            rule=type(rule).__name__,
                            left=sorted(left),
                            right=sorted(right),
                            budget=budget,
                        )
                    continue
                self._consider(winners, outcome, order)

    def _budget(self, winners: WinnerSet) -> float | None:
        """Cost limit for the next candidate of a group.

        This is the winner set's best worst-case bound: with interval costs
        only a retained plan's *maximum* can serve as a limit (Section 3).
        A candidate whose proven minimum reaches the bound is dominated and
        can be skipped before it is even constructed.  With point costs the
        bound is exact and pruning is far more effective — the asymmetry
        behind Figure 5.
        """
        if not self.pruning:
            return None
        internal = winners.best_upper_bound()
        return internal if internal != float("inf") else None

    def _consider(
        self, winners: WinnerSet, plan: PlanNode, order: Attribute | None
    ) -> None:
        """Offer a candidate that delivers the required order.

        Candidates not delivering the order are dropped rather than wrapped:
        the sort-enforced variant is already represented by the Sort over
        the unordered group's shared plan (see :meth:`optimize_group`).
        """
        self.stats.candidates_considered += 1
        if order is not None and plan.order != order:
            return
        retained = winners.consider(plan)
        if retained:
            self.stats.candidates_retained += 1
        if self._obs.enabled:
            if retained:
                # `incomparable` marks a retained plan that joined (rather
                # than replaced) the frontier — exactly the Section 3
                # situation that forces a choose-plan into the plan.
                self._obs.event(
                    "search.retain",
                    plan=plan.label,
                    cost_low=plan.cost.low,
                    cost_high=plan.cost.high,
                    incomparable=len(winners) > 1,
                )
            else:
                self._obs.event(
                    "search.prune",
                    reason="dominated",
                    plan=plan.label,
                    cost_low=plan.cost.low,
                    cost_high=plan.cost.high,
                )

    def _combined_plan(self, winners: WinnerSet) -> PlanNode:
        """The group's representative plan: sole winner or a choose-plan."""
        if len(winners.plans) == 1:
            return winners.plans[0]
        return ChoosePlanNode(self.ctx, tuple(winners.plans))

    # ------------------------------------------------------------------
    # Services for rules
    # ------------------------------------------------------------------
    def optimize_inputs(
        self,
        requests: tuple[tuple[frozenset[str], Attribute | None], ...],
        operator_lower_bound: float,
        budget: float | None,
    ) -> tuple[PlanNode, ...] | None:
        """Optimize a join candidate's inputs under a shared budget.

        Implements the paper's Section 3 budget arithmetic: the budget for
        one input is the candidate's limit minus the operator's *minimum*
        cost and the other inputs' proven *minimum* costs.  Returns None
        when any input optimization is pruned (the candidate is infeasible
        under the budget).
        """
        pending_lower_bounds = [
            self._proven_lower_bound(subset, order) for subset, order in requests
        ]
        results: list[GroupResult] = []
        for i, (subset, order) in enumerate(requests):
            if budget is None:
                child_limit = None
            else:
                already = sum(r.plan.execution_cost.low for r in results)
                pending = sum(pending_lower_bounds[i + 1 :])
                child_limit = budget - operator_lower_bound - already - pending
            outcome = self.optimize_group(subset, order, child_limit)
            if isinstance(outcome, Pruned):
                return None
            results.append(outcome)
        return tuple(r.plan for r in results)

    def _proven_lower_bound(
        self, subset: frozenset[str], order: Attribute | None
    ) -> float:
        """Best known lower bound on a group's execution cost (0 when
        unoptimized)."""
        cached = self.memo.lookup((subset, order))
        return cached.plan.execution_cost.low if cached is not None else 0.0

    def cardinality(self, subset: frozenset[str]) -> Interval:
        """Estimated output cardinality of any plan covering ``subset``.

        Plan-shape independent: the product of base cardinalities, selection
        selectivities, and the selectivities of every join predicate inside
        the subset.  Memoized per subset so all candidates of a group cost
        against identical statistics.
        """
        cached = self._cardinalities.get(subset)
        if cached is not None:
            return cached
        cardinality = Interval.point(1.0)
        for relation in subset:
            stats = self.ctx.catalog.relation(relation).stats
            cardinality = cardinality * Interval.point(float(stats.cardinality))
            for predicate in self.query.selections_on(relation):
                cardinality = cardinality * estimate_selectivity(
                    predicate, self.ctx.env, self.ctx.catalog
                )
        for join in self.query.joins_within(subset):
            cardinality = cardinality * join.selectivity()
        self._cardinalities[subset] = cardinality
        return cardinality

    def join_cardinality(
        self,
        left: frozenset[str],
        right: frozenset[str],
        predicates: tuple[JoinPredicate, ...],
    ) -> Interval:
        """Output cardinality of joining the two partitions."""
        del predicates  # implied by the union's join set
        return self.cardinality(left | right)
