"""The memo: groups of equivalent plans keyed by relations + properties.

A *group* is the paper's "combination of a logical algebra expression and
desired physical properties": here, the set of base relations covered and
the required output sort order.  Memoization ("memoizing variant of dynamic
programming", Section 2) stores each group's completed winner set so shared
subproblems — and therefore shared subplans in the emitted DAG — are
optimized exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Attribute
from repro.optimizer.winners import WinnerSet
from repro.physical.plan import PlanNode
from repro.util.interval import Interval

GroupKey = tuple[frozenset[str], Attribute | None]


@dataclass
class GroupResult:
    """A fully optimized group: its winners and their combined dynamic plan.

    ``plan`` is what a parent embeds: the sole winner, or a choose-plan over
    all winners.  ``cost`` is ``plan.cost`` (kept separately for clarity in
    branch-and-bound arithmetic).
    """

    winners: WinnerSet
    plan: PlanNode
    cost: Interval


@dataclass
class Pruned:
    """Signal that a group's optimization was cut off by a cost limit.

    ``lower_bound`` is the proven minimum cost — every plan of the group
    costs at least this much for every run-time binding, so the caller may
    soundly discard the candidate that requested the group.
    """

    lower_bound: float


@dataclass
class Memo:
    """Group table plus search-effort counters."""

    groups: dict[GroupKey, GroupResult] = field(default_factory=dict)

    def lookup(self, key: GroupKey) -> GroupResult | None:
        """The completed result for ``key``, if any."""
        return self.groups.get(key)

    def store(self, key: GroupKey, result: GroupResult) -> None:
        """Record a completed group optimization."""
        self.groups[key] = result

    def __len__(self) -> int:
        return len(self.groups)
