"""Statement-level optimization: compose branch optima under SPJU operators.

:func:`optimize_statement` extends :func:`~repro.optimizer.optimizer.
optimize_query` to the full statement grammar (UNION / UNION ALL, LEFT
OUTER JOIN, IN/EXISTS semi-joins).  The composition strategy keeps the
paper's invariants intact:

* Each branch *core* (the SPJ block the Volcano engine understands) is
  optimized exactly as before — join order, access paths, and choose-plan
  operators all live inside the cores and the single-relation subquery /
  outer-right inputs.
* The structure *above* the cores (semi-joins, outer join, projection,
  union, distinct, sort) is **fixed**: no choose-plan alternatives are
  introduced there.  Under a fully bound environment every alternative
  inside a choose-plan computes identical cardinalities, so the
  composition's cost is a deterministic function of the branch optima —
  which is why the start-up choice cost g still equals the from-scratch
  run-time optimum d for compound statements.
* Cardinality bounds on the new operators are *hard* (Chen &
  Schneider-style): a semi-join emits at most one row per outer row; a
  left outer join emits at least every left row, and exactly the left
  cardinality when the right join attribute is a declared unary key
  (:meth:`~repro.catalog.catalog.Catalog.declare_unique`); UNION ALL adds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.cost.context import CostContext
from repro.cost.model import CostModel
from repro.errors import OptimizationError
from repro.logical.query import QueryGraph
from repro.logical.statement import Statement, StatementBranch
from repro.optimizer.optimizer import (
    OptimizationMode,
    OptimizationResult,
    optimize_query,
)
from repro.params.parameter import Environment
from repro.physical.plan import (
    DistinctNode,
    LeftOuterJoinNode,
    PlanNode,
    ProjectNode,
    SemiJoinNode,
    UnionAllNode,
    count_choose_plan_nodes,
    count_plan_nodes,
    enforce_ordering,
)


@dataclass(frozen=True)
class BranchPlan:
    """One branch's optimized pieces plus its composed root."""

    branch: StatementBranch
    core: OptimizationResult
    semi_inners: tuple[OptimizationResult, ...]
    outer_right: OptimizationResult | None
    root: PlanNode


@dataclass(frozen=True)
class StatementResult:
    """A finished statement optimization (duck-compatible with
    :class:`~repro.optimizer.optimizer.OptimizationResult` where the QA
    harness needs it: ``plan`` / ``mode`` / ``env`` / ``ctx``)."""

    statement: Statement
    plan: PlanNode
    mode: OptimizationMode
    env: Environment
    ctx: CostContext
    branch_plans: tuple[BranchPlan, ...]
    optimization_seconds: float

    @property
    def plan_node_count(self) -> int:
        return count_plan_nodes(self.plan)

    @property
    def choose_plan_count(self) -> int:
        return count_choose_plan_nodes(self.plan)

    @property
    def is_dynamic(self) -> bool:
        return self.choose_plan_count > 0

    @property
    def is_simple(self) -> bool:
        return self.statement.is_simple


def _single_relation_graph(
    relation: str, selections, space
) -> QueryGraph:
    return QueryGraph(
        relations=(relation,),
        selections={relation: tuple(selections)} if selections else {},
        joins=(),
        parameters=space,
    )


def optimize_statement(
    statement: Statement,
    catalog: Catalog,
    model: CostModel | None = None,
    mode: OptimizationMode = OptimizationMode.DYNAMIC,
    binding: Mapping[str, float] | None = None,
) -> StatementResult:
    """Optimize a full statement in the given mode.

    Simple statements (one plain SPJ branch) delegate to
    :func:`optimize_query` unchanged — same plan, same search effort.
    Compound statements optimize each branch core and each
    single-relation extension input independently, then compose the fixed
    superstructure (semi-joins → outer join → projection → union →
    distinct → sort) above the optima.
    """
    model = model if model is not None else CostModel()
    started = time.perf_counter()

    if statement.is_simple:
        core = optimize_query(
            statement.branches[0].graph,
            catalog,
            model,
            mode=mode,
            binding=binding,
            required_order=statement.order_by_keys or None,
        )
        return StatementResult(
            statement=statement,
            plan=core.plan,
            mode=mode,
            env=core.env,
            ctx=core.ctx,
            branch_plans=(
                BranchPlan(statement.branches[0], core, (), None, core.plan),
            ),
            optimization_seconds=time.perf_counter() - started,
        )

    space = statement.parameters
    branch_plans: list[BranchPlan] = []
    ctx: CostContext | None = None
    for branch in statement.branches:
        if branch.graph.aggregate is not None:
            raise OptimizationError(
                "aggregates are not supported inside compound statements"
            )
        core = optimize_query(
            branch.graph, catalog, model, mode=mode, binding=binding
        )
        if ctx is None:
            ctx = core.ctx
        root: PlanNode = core.plan
        inners = []
        for semijoin in branch.semijoins:
            inner = optimize_query(
                _single_relation_graph(
                    semijoin.inner_relation, semijoin.selections, space
                ),
                catalog,
                model,
                mode=mode,
                binding=binding,
            )
            inners.append(inner)
            root = SemiJoinNode(
                ctx, root, inner.plan, semijoin.outer_attr, semijoin.inner_attr
            )
        outer_right: OptimizationResult | None = None
        if branch.outer is not None:
            outer_right = optimize_query(
                _single_relation_graph(
                    branch.outer.right_relation, (), space
                ),
                catalog,
                model,
                mode=mode,
                binding=binding,
            )
            root = LeftOuterJoinNode(
                ctx,
                root,
                outer_right.plan,
                branch.outer.left_attr,
                branch.outer.right_attr,
                right_unique=catalog.is_unique(
                    branch.outer.right_attr.qualified_name
                ),
            )
        if branch.projection is not None:
            root = ProjectNode(ctx, root, branch.projection)
        branch_plans.append(
            BranchPlan(branch, core, tuple(inners), outer_right, root)
        )

    assert ctx is not None
    plan: PlanNode = branch_plans[0].root
    if len(branch_plans) > 1:
        plan = UnionAllNode(ctx, tuple(bp.root for bp in branch_plans))
        if not statement.union_all:
            attributes = statement.output_attributes()
            assert attributes is not None  # validated by Statement
            plan = DistinctNode(ctx, plan, attributes)
    if statement.order_by is not None:
        plan = enforce_ordering(ctx, plan, statement.order_by_keys)

    return StatementResult(
        statement=statement,
        plan=plan,
        mode=mode,
        env=branch_plans[0].core.env,
        ctx=ctx,
        branch_plans=tuple(branch_plans),
        optimization_seconds=time.perf_counter() - started,
    )
