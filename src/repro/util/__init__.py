"""Shared utilities: interval arithmetic, deterministic RNG, formatting."""

from repro.util.interval import Interval
from repro.util.fmt import format_table
from repro.util.rng import make_rng

__all__ = ["Interval", "format_table", "make_rng"]
