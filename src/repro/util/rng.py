"""Deterministic random-number helpers.

All randomized parts of the reproduction (workload generation, synthetic
data loading) accept an explicit seed so experiments are repeatable; the
paper's N = 100 random binding sets are regenerated identically across runs.
"""

from __future__ import annotations

import random


def make_rng(seed: int | None) -> random.Random:
    """Create an isolated :class:`random.Random`.

    A fresh instance is always returned so callers never perturb (or depend
    on) the global random state.  ``seed=None`` yields a nondeterministic
    stream, which tests avoid.
    """
    return random.Random(seed)


def spawn(rng: random.Random) -> random.Random:
    """Derive an independent child stream from ``rng``.

    Used when one seed must drive several independent generators (e.g. one
    per uncertain variable) without the consumption order of one affecting
    the others.
    """
    return random.Random(rng.getrandbits(64))
