"""Small statistics helpers (dependency-free).

The validation tests only need Spearman rank correlation, which scipy
provides but the test environment should not have to: rank both samples
(ties get their average rank, matching ``scipy.stats.spearmanr``) and
take the Pearson correlation of the ranks.
"""

from __future__ import annotations

import math
from typing import Sequence


def average_ranks(values: Sequence[float]) -> list[float]:
    """1-based ranks; tied values share the mean of their rank range."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2 + 1  # ranks are 1-based
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def pearson_r(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation; NaN when either sample is constant."""
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two observations")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return math.nan
    return cov / math.sqrt(var_x * var_y)


def spearman_rho(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (tie-aware, as ``scipy.stats.spearmanr``)."""
    return pearson_r(average_ranks(xs), average_ranks(ys))
