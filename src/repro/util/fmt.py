"""Plain-text table rendering for experiment reports.

The benchmark harness prints paper-style rows (one line per query /
uncertain-variable count).  Keeping the formatter here avoids a plotting
dependency while still producing readable, alignable output in
``EXPERIMENTS.md`` and benchmark logs.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
