"""Closed numeric intervals with monotone arithmetic.

Intervals are the substrate of the whole reproduction: uncertain cost-model
parameters (selectivities, memory) are intervals, cardinalities derived from
them are intervals, and plan costs are intervals (see ``repro.cost.cost``).
A *point* value is represented as a degenerate interval ``[v, v]``, which
makes traditional (static) optimization a special case of dynamic-plan
optimization, exactly as in the paper's prototype (Section 6: static plans
use costs ``[expected, expected]``).

The arithmetic here assumes the paper's monotonicity convention (Section 5):
cost functions are monotonic in all their arguments, so interval results are
obtained by evaluating at the bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Union

Number = Union[int, float]


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``[low, high]`` over the reals.

    Instances are immutable and hashable.  ``low == high`` models a fully
    known (point) value; ``low < high`` models compile-time uncertainty.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError("interval bounds must not be NaN")
        if self.low > self.high:
            raise ValueError(
                f"interval low bound {self.low!r} exceeds high bound {self.high!r}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def point(value: Number) -> "Interval":
        """An interval containing exactly ``value``."""
        return Interval(float(value), float(value))

    @staticmethod
    def of(low: Number, high: Number) -> "Interval":
        """An interval ``[low, high]``; bounds are coerced to float."""
        return Interval(float(low), float(high))

    @staticmethod
    def zero() -> "Interval":
        """The additive identity ``[0, 0]``."""
        return _ZERO

    @staticmethod
    def hull(intervals: Iterable["Interval"]) -> "Interval":
        """Smallest interval containing all ``intervals`` (non-empty)."""
        items = list(intervals)
        if not items:
            raise ValueError("hull of no intervals is undefined")
        return Interval(min(i.low for i in items), max(i.high for i in items))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_point(self) -> bool:
        """True when the interval contains a single value."""
        return self.low == self.high

    @property
    def width(self) -> float:
        """Length of the interval (0 for points)."""
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        """Arithmetic center of the interval."""
        return (self.low + self.high) / 2.0

    def contains(self, value: Number) -> bool:
        """True when ``low <= value <= high``."""
        return self.low <= float(value) <= self.high

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one value."""
        return self.low <= other.high and other.low <= self.high

    def strictly_below(self, other: "Interval") -> bool:
        """True when every value here is below every value of ``other``."""
        return self.high < other.low

    def dominates(self, other: "Interval") -> bool:
        """Partial-order dominance used for plan pruning.

        ``a.dominates(b)`` means ``a`` is *certainly* no more expensive than
        ``b`` for every possible run-time binding: ``a.high <= b.low``.  The
        comparison is non-strict so that identical point costs dominate each
        other (ties are broken by arrival order in the search engine).
        """
        return self.high <= other.low

    # ------------------------------------------------------------------
    # Arithmetic (monotone)
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval | Number") -> "Interval":
        other = _coerce(other)
        return Interval(self.low + other.low, self.high + other.high)

    __radd__ = __add__

    def __sub__(self, other: "Interval | Number") -> "Interval":
        """Dependent subtraction as used for branch-and-bound budgets.

        Unlike classical interval arithmetic (``[a,b] - [c,d] = [a-d, b-c]``)
        this subtracts bound-wise, matching the paper's Section 5: when a
        child plan's cost is "used up" from a cost limit, only the amounts
        actually guaranteed can be subtracted, and the result must remain a
        valid budget interval.
        """
        other = _coerce(other)
        return Interval(self.low - other.low, self.high - other.high)

    def __mul__(self, other: "Interval | Number") -> "Interval":
        other = _coerce(other)
        # Fast path for the overwhelmingly common case in cost arithmetic:
        # cardinalities, selectivities, and costs are all non-negative, so
        # the product's extremes are the products of like bounds — no need
        # to build and scan the 4-tuple of corner products.
        if self.low >= 0.0 and other.low >= 0.0:
            return Interval(self.low * other.low, self.high * other.high)
        products = (
            self.low * other.low,
            self.low * other.high,
            self.high * other.low,
            self.high * other.high,
        )
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def __truediv__(self, other: "Interval | Number") -> "Interval":
        other = _coerce(other)
        if other.contains(0.0):
            raise ZeroDivisionError(f"division by interval containing zero: {other}")
        # Same non-negative fast path as multiplication (divisor strictly
        # positive here, since intervals containing zero were rejected).
        if self.low >= 0.0 and other.low > 0.0:
            return Interval(self.low / other.high, self.high / other.low)
        quotients = (
            self.low / other.low,
            self.low / other.high,
            self.high / other.low,
            self.high / other.high,
        )
        return Interval(min(quotients), max(quotients))

    def min_with(self, other: "Interval") -> "Interval":
        """Pointwise minimum: the cost of a choose-plan over two plans.

        Section 5: the cost of a dynamic plan with alternatives of cost
        ``[a,b]`` and ``[c,d]`` is ``[min(a,c), min(b,d)]`` — in the best
        case the cheaper best case, in the worst case the cheaper worst case.
        """
        return Interval(min(self.low, other.low), min(self.high, other.high))

    def max_with(self, other: "Interval") -> "Interval":
        """Pointwise maximum (dual of :meth:`min_with`)."""
        return Interval(max(self.low, other.low), max(self.high, other.high))

    def clamp(self, low: Number, high: Number) -> "Interval":
        """Intersect with ``[low, high]``; empty intersections collapse."""
        low_f, high_f = float(low), float(high)
        new_low = min(max(self.low, low_f), high_f)
        new_high = max(min(self.high, high_f), low_f)
        return Interval(min(new_low, new_high), max(new_low, new_high))

    def map_monotone(
        self, func: Callable[[float], float], increasing: bool = True
    ) -> "Interval":
        """Apply a monotone scalar function to the interval.

        For an increasing ``func`` the image is ``[f(low), f(high)]``; for a
        decreasing one it is ``[f(high), f(low)]``.  This is how cost
        formulas lift their point form to intervals (e.g. cost decreasing in
        available memory).
        """
        if increasing:
            return Interval(func(self.low), func(self.high))
        return Interval(func(self.high), func(self.low))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        if self.is_point:
            return f"[{self.low:g}]"
        return f"[{self.low:g}, {self.high:g}]"


def _coerce(value: "Interval | Number") -> Interval:
    if isinstance(value, Interval):
        return value
    return Interval.point(value)


_ZERO = Interval(0.0, 0.0)
