"""Tokenizer for the SQL subset.

Produces a flat token stream; all error positions are character offsets
into the original text so :class:`~repro.errors.ParseError` messages point
at the offending spot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "AND",
        "AS",
        "ORDER",
        "GROUP",
        "BY",
        "UNION",
        "ALL",
        "LEFT",
        "OUTER",
        "JOIN",
        "ON",
        "IN",
        "EXISTS",
    }
)

_SYMBOLS = ("<=", ">=", "<>", "=", "<", ">", ",", ".", "*", "(", ")")


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    HOST_VARIABLE = "host-variable"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source offset."""

    kind: TokenKind
    text: str
    position: int

    @property
    def value(self) -> object:
        """The Python value of a literal token."""
        if self.kind is TokenKind.NUMBER:
            return float(self.text) if "." in self.text else int(self.text)
        if self.kind is TokenKind.STRING:
            return self.text[1:-1]
        return self.text


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens; the list always ends with an END token."""
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == ":":
            start = i + 1
            j = start
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == start:
                raise ParseError("':' must be followed by a host variable name", i)
            tokens.append(Token(TokenKind.HOST_VARIABLE, text[start:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = TokenKind.KEYWORD if word.upper() in KEYWORDS else TokenKind.IDENT
            tokens.append(
                Token(kind, word.upper() if kind is TokenKind.KEYWORD else word, i)
            )
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < length and text[j].isdigit():
                j += 1
            if j < length and text[j] == ".":
                j += 1
                while j < length and text[j].isdigit():
                    j += 1
            tokens.append(Token(TokenKind.NUMBER, text[i:j], i))
            i = j
            continue
        if ch == "'":
            j = i + 1
            while j < length and text[j] != "'":
                j += 1
            if j >= length:
                raise ParseError("unterminated string literal", i)
            tokens.append(Token(TokenKind.STRING, text[i : j + 1], i))
            i = j + 1
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token(TokenKind.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenKind.END, "", length))
    return tokens
