"""A small SQL front end for embedded queries with host variables.

Supports the select-project-join fragment the paper's experiments use::

    SELECT R.a, S.b FROM R, S
    WHERE R.a < :v AND R.k = S.j

Host variables (``:name``) become uncertain selectivity parameters in the
produced :class:`~repro.logical.query.QueryGraph`, which is exactly the
paper's embedded-SQL scenario: the predicate's selectivity is unknown until
the application binds the variable at start-up time.
"""

from repro.query.parser import ParsedQuery, parse_query
from repro.query.tokenizer import Token, TokenKind, tokenize

__all__ = ["ParsedQuery", "parse_query", "Token", "TokenKind", "tokenize"]
