"""Recursive-descent parser: SQL text → normalized query graph.

Grammar (conjunctive select-project-join-aggregate queries)::

    query      :=  SELECT select_list FROM table_list [WHERE condition_list]
                   [GROUP BY attribute (',' attribute)*] [ORDER BY attribute]
    select_list:=  '*' | select_item (',' select_item)*
    select_item:=  attribute | func '(' ('*' | attribute) ')'
    func       :=  COUNT | SUM | MIN | MAX | AVG
    table_list :=  ident (',' ident)*
    conditions :=  condition (AND condition)*
    condition  :=  attribute op operand        -- selection
                |  attribute '=' attribute     -- equijoin
    operand    :=  number | string | host_variable
    attribute  :=  ident '.' ident

Host variables introduce uncertain selectivity parameters named
``sel:<variable>``; literal predicates keep their static estimates.
Aggregate select lists produce an :class:`AggregateSpec` on the query
graph; plain attributes in such lists must appear in GROUP BY.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute
from repro.errors import ParseError
from repro.logical.predicates import (
    CompareOp,
    HostVariable,
    JoinPredicate,
    Literal,
    SelectionPredicate,
)
from repro.logical.aggregates import (
    AggregateExpr,
    AggregateFunction,
    AggregateSpec,
)
from repro.logical.query import QueryGraph
from repro.params.parameter import ParameterSpace
from repro.query.tokenizer import Token, TokenKind, tokenize

_OPERATORS = {
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


_AGGREGATE_FUNCTIONS = {f.value.upper(): f for f in AggregateFunction}


@dataclass(frozen=True)
class ParsedQuery:
    """Parser output: the query graph plus presentation details."""

    graph: QueryGraph
    select_list: tuple[Attribute, ...] | None  # None means SELECT *
    order_by: Attribute | None
    host_variables: tuple[str, ...]

    @property
    def is_aggregate(self) -> bool:
        """True when the query computes aggregates."""
        return self.graph.aggregate is not None


def parse_query(
    text: str,
    catalog: Catalog,
    default_selectivity: float = 0.05,
) -> ParsedQuery:
    """Parse ``text`` against ``catalog``.

    ``default_selectivity`` is the expected value assigned to each host
    variable's selectivity parameter (the paper's static default is 0.05).
    """
    return _Parser(text, catalog, default_selectivity).parse()


class _Parser:
    def __init__(
        self, text: str, catalog: Catalog, default_selectivity: float
    ) -> None:
        self.tokens = tokenize(text)
        self.position = 0
        self.catalog = catalog
        self.default_selectivity = default_selectivity
        self.relations: list[str] = []
        self.selections: dict[str, list[SelectionPredicate]] = {}
        self.joins: list[JoinPredicate] = []
        self.space = ParameterSpace()
        self.host_variables: list[str] = []

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind is not TokenKind.END:
            self.position += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if token.kind is not TokenKind.KEYWORD or token.text != word:
            raise ParseError(f"expected {word}, found {token.text!r}", token.position)
        return token

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._advance()
        if token.kind is not TokenKind.SYMBOL or token.text != symbol:
            raise ParseError(
                f"expected {symbol!r}, found {token.text!r}", token.position
            )
        return token

    def _expect_ident(self) -> Token:
        token = self._advance()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {token.text!r}", token.position
            )
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.text == word

    def _at_symbol(self, symbol: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.SYMBOL and token.text == symbol

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse(self) -> ParsedQuery:
        self._expect_keyword("SELECT")
        select_list, aggregate_items = self._parse_select_list()
        self._expect_keyword("FROM")
        self._parse_table_list()
        if self._at_keyword("WHERE"):
            self._advance()
            self._parse_conditions()
        group_by: list[Attribute] = []
        if self._at_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            group_by.append(self._parse_attribute())
            while self._at_symbol(","):
                self._advance()
                group_by.append(self._parse_attribute())
        order_by = None
        order_by_position = 0
        if self._at_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            order_by_position = self._peek().position
            order_by = self._parse_attribute()
        end = self._advance()
        if end.kind is not TokenKind.END:
            raise ParseError(f"unexpected trailing {end.text!r}", end.position)
        if order_by is not None and (aggregate_items or group_by):
            # Aggregation replaces base columns with group keys; ordering
            # by anything else cannot be evaluated over the output.
            if order_by not in group_by:
                raise ParseError(
                    f"ORDER BY {order_by.qualified_name} must be a GROUP BY "
                    "attribute in an aggregate query",
                    order_by_position,
                )

        resolved_select = None
        if select_list is not None:
            resolved_select = tuple(
                self._resolve(name, pos) for name, pos in select_list
            )
        aggregate = self._build_aggregate(
            resolved_select, aggregate_items, group_by
        )
        graph = QueryGraph(
            relations=tuple(self.relations),
            selections={r: tuple(p) for r, p in self.selections.items()},
            joins=tuple(self.joins),
            parameters=self.space,
            projection=None if aggregate is not None else resolved_select,
            aggregate=aggregate,
        )
        return ParsedQuery(
            graph=graph,
            select_list=resolved_select if aggregate is None else None,
            order_by=order_by,
            host_variables=tuple(self.host_variables),
        )

    def _build_aggregate(
        self, resolved_select, aggregate_items, group_by
    ) -> AggregateSpec | None:
        if not aggregate_items and not group_by:
            return None
        if not aggregate_items:
            raise ParseError("GROUP BY requires at least one aggregate", 0)
        plain = tuple(resolved_select or ())
        for attribute in plain:
            if attribute not in group_by:
                raise ParseError(
                    f"{attribute.qualified_name} appears in SELECT but not "
                    "in GROUP BY",
                    0,
                )
        aggregates = []
        for func, operand in aggregate_items:
            if operand is None:
                aggregates.append(AggregateExpr(func, None))
            else:
                aggregates.append(
                    AggregateExpr(func, self._resolve(operand[0], operand[1]))
                )
        return AggregateSpec(group_by=tuple(group_by), aggregates=tuple(aggregates))

    def _parse_select_list(self):
        """Returns (plain attribute names, aggregate items).

        Aggregate items are ``(function, (attribute name, position) | None)``.
        """
        if self._at_symbol("*"):
            self._advance()
            return None, []
        plain: list[tuple[str, int]] = []
        aggregates: list[tuple[AggregateFunction, tuple[str, int] | None]] = []

        def item() -> None:
            token = self._peek()
            if (
                token.kind is TokenKind.IDENT
                and token.text.upper() in _AGGREGATE_FUNCTIONS
                and self.tokens[self.position + 1].kind is TokenKind.SYMBOL
                and self.tokens[self.position + 1].text == "("
            ):
                self._advance()
                self._expect_symbol("(")
                function = _AGGREGATE_FUNCTIONS[token.text.upper()]
                if self._at_symbol("*"):
                    self._advance()
                    if function is not AggregateFunction.COUNT:
                        raise ParseError(
                            f"{token.text}(*) is not supported", token.position
                        )
                    operand = None
                else:
                    operand = self._parse_attribute_name()
                self._expect_symbol(")")
                aggregates.append((function, operand))
            else:
                plain.append(self._parse_attribute_name())

        item()
        while self._at_symbol(","):
            self._advance()
            item()
        return plain or None, aggregates

    def _parse_table_list(self) -> None:
        while True:
            token = self._expect_ident()
            name = token.text
            if name in self.relations:
                raise ParseError(f"relation {name} listed twice", token.position)
            self.catalog.relation(name)  # existence check; raises CatalogError
            self.relations.append(name)
            if not self._at_symbol(","):
                break
            self._advance()

    def _parse_conditions(self) -> None:
        while True:
            self._parse_condition()
            if not self._at_keyword("AND"):
                break
            self._advance()

    def _parse_condition(self) -> None:
        left = self._parse_attribute()
        op_token = self._advance()
        if op_token.kind is not TokenKind.SYMBOL or op_token.text not in _OPERATORS:
            raise ParseError(
                f"expected comparison operator, found {op_token.text!r}",
                op_token.position,
            )
        op = _OPERATORS[op_token.text]
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            right = self._parse_attribute()
            if op is not CompareOp.EQ:
                raise ParseError(
                    "join predicates must be equijoins", op_token.position
                )
            self.joins.append(JoinPredicate(left, right))
            return
        if token.kind is TokenKind.HOST_VARIABLE:
            self._advance()
            parameter = f"sel:{token.text}"
            if parameter not in self.space:
                self.space.add_selectivity(
                    parameter, expected=self.default_selectivity
                )
            self.host_variables.append(token.text)
            operand: Literal | HostVariable = HostVariable(token.text, parameter)
        elif token.kind in (TokenKind.NUMBER, TokenKind.STRING):
            self._advance()
            operand = Literal(token.value)
        else:
            raise ParseError(
                f"expected literal or host variable, found {token.text!r}",
                token.position,
            )
        predicate = SelectionPredicate(left, op, operand)
        self.selections.setdefault(left.relation, []).append(predicate)

    def _parse_attribute_name(self) -> tuple[str, int]:
        relation = self._expect_ident()
        self._expect_symbol(".")
        attribute = self._expect_ident()
        return f"{relation.text}.{attribute.text}", relation.position

    def _parse_attribute(self) -> Attribute:
        name, position = self._parse_attribute_name()
        return self._resolve(name, position)

    def _resolve(self, qualified_name: str, position: int) -> Attribute:
        relation, _, _ = qualified_name.partition(".")
        if relation not in {t for t in self.relations} and self.relations:
            raise ParseError(
                f"attribute {qualified_name} references relation {relation}, "
                "which is not in the FROM list",
                position,
            )
        try:
            return self.catalog.attribute(qualified_name)
        except Exception as exc:
            raise ParseError(str(exc), position) from None
