"""Recursive-descent parser: SQL text → normalized query graph.

Grammar (conjunctive SPJU queries with aggregates, outer joins, and
semi-join subqueries)::

    statement  :=  query (UNION [ALL] query)*
                   [ORDER BY attribute (',' attribute)*]
    query      :=  SELECT select_list FROM table_list
                   [LEFT OUTER JOIN ident ON attribute '=' attribute]
                   [WHERE condition_list]
                   [GROUP BY attribute (',' attribute)*]
    select_list:=  '*' | select_item (',' select_item)*
    select_item:=  attribute | func '(' ('*' | attribute) ')'
    func       :=  COUNT | SUM | MIN | MAX | AVG
    table_list :=  ident (',' ident)*
    conditions :=  condition (AND condition)*
    condition  :=  attribute op operand        -- selection
                |  attribute '=' attribute     -- equijoin
                |  attribute IN '(' subquery ')'        -- semi-join
                |  EXISTS '(' exists_subquery ')'       -- semi-join
    subquery   :=  SELECT attribute FROM ident [WHERE simple_conditions]
    exists_subq:=  SELECT ('*'|attribute) FROM ident WHERE correlation
                   (AND simple_condition)*
    operand    :=  number | string | host_variable
    attribute  :=  ident '.' ident

Host variables introduce uncertain selectivity parameters named
``sel:<variable>``; literal predicates keep their static estimates.  All
UNION branches share one :class:`~repro.params.parameter.ParameterSpace`.
Aggregate select lists produce an :class:`AggregateSpec` on the query
graph; plain attributes in such lists must appear in GROUP BY.
Aggregates cannot be combined with UNION, outer joins, or subqueries.

:func:`parse_query` keeps the historical single-query contract (it
rejects compound statements); :func:`parse_statement` accepts the full
grammar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute
from repro.errors import ParseError
from repro.logical.predicates import (
    CompareOp,
    HostVariable,
    JoinPredicate,
    Literal,
    SelectionPredicate,
)
from repro.logical.aggregates import (
    AggregateExpr,
    AggregateFunction,
    AggregateSpec,
)
from repro.logical.query import QueryGraph
from repro.logical.statement import (
    OuterJoin,
    SemiJoin,
    Statement,
    StatementBranch,
)
from repro.params.parameter import ParameterSpace
from repro.query.tokenizer import Token, TokenKind, tokenize

_OPERATORS = {
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


_AGGREGATE_FUNCTIONS = {f.value.upper(): f for f in AggregateFunction}


@dataclass(frozen=True)
class ParsedQuery:
    """Parser output: the query graph plus presentation details."""

    graph: QueryGraph
    select_list: tuple[Attribute, ...] | None  # None means SELECT *
    order_by: Attribute | None
    host_variables: tuple[str, ...]
    order_by_rest: tuple[Attribute, ...] = ()

    @property
    def is_aggregate(self) -> bool:
        """True when the query computes aggregates."""
        return self.graph.aggregate is not None

    @property
    def order_by_keys(self) -> tuple[Attribute, ...]:
        """All ORDER BY attributes (leading key first), () when unordered."""
        if self.order_by is None:
            return ()
        return (self.order_by,) + self.order_by_rest


@dataclass(frozen=True)
class ParsedStatement:
    """Parser output for the full statement grammar."""

    statement: Statement
    order_by: Attribute | None
    host_variables: tuple[str, ...]
    order_by_rest: tuple[Attribute, ...] = ()

    @property
    def order_by_keys(self) -> tuple[Attribute, ...]:
        """All ORDER BY attributes (leading key first), () when unordered."""
        if self.order_by is None:
            return ()
        return (self.order_by,) + self.order_by_rest

    @property
    def graph(self) -> QueryGraph:
        """The first branch's core graph (the whole graph when simple)."""
        return self.statement.branches[0].graph

    @property
    def parameters(self) -> ParameterSpace:
        """The shared parameter space of every branch."""
        return self.statement.parameters


def parse_query(
    text: str,
    catalog: Catalog,
    default_selectivity: float = 0.05,
) -> ParsedQuery:
    """Parse a single SPJ(+aggregate) query against ``catalog``.

    ``default_selectivity`` is the expected value assigned to each host
    variable's selectivity parameter (the paper's static default is 0.05).
    Compound statements (UNION, outer joins, subqueries) are rejected —
    use :func:`parse_statement` for those.
    """
    parsed = parse_statement(text, catalog, default_selectivity)
    statement = parsed.statement
    if statement.is_compound:
        raise ParseError(
            "compound statements (UNION / OUTER JOIN / subqueries) are not "
            "supported here; use parse_statement",
            0,
        )
    graph = statement.branches[0].graph
    return ParsedQuery(
        graph=graph,
        select_list=graph.projection if graph.aggregate is None else None,
        order_by=parsed.order_by,
        host_variables=parsed.host_variables,
        order_by_rest=parsed.order_by_rest,
    )


def parse_statement(
    text: str,
    catalog: Catalog,
    default_selectivity: float = 0.05,
) -> ParsedStatement:
    """Parse the full statement grammar (SPJU + outer joins + subqueries)."""
    return _Parser(text, catalog, default_selectivity).parse()


class _BranchState:
    """Mutable per-branch accumulation while one SELECT block parses."""

    __slots__ = (
        "relations",
        "selections",
        "joins",
        "semijoins",
        "outer",
        "select_list",
        "aggregate_items",
        "group_by",
    )

    def __init__(self) -> None:
        self.relations: list[str] = []
        self.selections: dict[str, list[SelectionPredicate]] = {}
        self.joins: list[JoinPredicate] = []
        self.semijoins: list[SemiJoin] = []
        self.outer: OuterJoin | None = None
        self.select_list: list[tuple[str, int]] | None = None
        self.aggregate_items: list = []
        self.group_by: list[Attribute] = []


class _Parser:
    def __init__(
        self, text: str, catalog: Catalog, default_selectivity: float
    ) -> None:
        self.tokens = tokenize(text)
        self.position = 0
        self.catalog = catalog
        self.default_selectivity = default_selectivity
        self.space = ParameterSpace()
        self.host_variables: list[str] = []
        self.branch = _BranchState()

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind is not TokenKind.END:
            self.position += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if token.kind is not TokenKind.KEYWORD or token.text != word:
            raise ParseError(f"expected {word}, found {token.text!r}", token.position)
        return token

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._advance()
        if token.kind is not TokenKind.SYMBOL or token.text != symbol:
            raise ParseError(
                f"expected {symbol!r}, found {token.text!r}", token.position
            )
        return token

    def _expect_ident(self) -> Token:
        token = self._advance()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {token.text!r}", token.position
            )
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.text == word

    def _at_symbol(self, symbol: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.SYMBOL and token.text == symbol

    # ------------------------------------------------------------------
    # Statement grammar
    # ------------------------------------------------------------------
    def parse(self) -> ParsedStatement:
        branches = [self._parse_branch()]
        union_all: bool | None = None
        while self._at_keyword("UNION"):
            union_token = self._advance()
            this_all = False
            if self._at_keyword("ALL"):
                self._advance()
                this_all = True
            if union_all is not None and union_all != this_all:
                raise ParseError(
                    "mixing UNION and UNION ALL in one statement is not "
                    "supported",
                    union_token.position,
                )
            union_all = this_all
            branches.append(self._parse_branch())
        order_keys: list[Attribute] = []
        order_by_position = 0
        if self._at_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            order_by_position = self._peek().position
            while True:
                name, position = self._parse_attribute_name()
                key = self._resolve_in_branch(branches[0], name, position)
                if key in order_keys:
                    raise ParseError(
                        f"ORDER BY lists {key.qualified_name} twice", position
                    )
                order_keys.append(key)
                if not self._at_symbol(","):
                    break
                self._advance()
        order_by = order_keys[0] if order_keys else None
        end = self._advance()
        if end.kind is not TokenKind.END:
            raise ParseError(f"unexpected trailing {end.text!r}", end.position)

        if len(branches) > 1:
            for state in branches:
                if state.aggregate_items or state.group_by:
                    raise ParseError(
                        "aggregates are not supported in UNION branches", 0
                    )
                if state.select_list is None:
                    raise ParseError(
                        "UNION branches must name their output columns "
                        "(SELECT * is ambiguous across branches)",
                        0,
                    )
        first = branches[0]
        if order_keys and (first.aggregate_items or first.group_by):
            # Aggregation replaces base columns with group keys; ordering
            # by anything else cannot be evaluated over the output.
            for key in order_keys:
                if key not in first.group_by:
                    raise ParseError(
                        f"ORDER BY {key.qualified_name} must be a GROUP BY "
                        "attribute in an aggregate query",
                        order_by_position,
                    )

        built = tuple(
            self._build_branch(state, compound=len(branches) > 1)
            for state in branches
        )
        if len(built) > 1:
            projection = built[0].projection or ()
            for key in order_keys:
                if key not in projection:
                    raise ParseError(
                        f"ORDER BY {key.qualified_name} must be projected "
                        "by the first UNION branch",
                        order_by_position,
                    )
        statement = Statement(
            branches=built,
            union_all=True if union_all is None else union_all,
            parameters=self.space,
            order_by=order_by,
            order_by_rest=tuple(order_keys[1:]),
        )
        return ParsedStatement(
            statement=statement,
            order_by=order_by,
            host_variables=tuple(self.host_variables),
            order_by_rest=tuple(order_keys[1:]),
        )

    # ------------------------------------------------------------------
    # Branch grammar
    # ------------------------------------------------------------------
    def _parse_branch(self) -> _BranchState:
        state = _BranchState()
        self.branch = state
        self._expect_keyword("SELECT")
        state.select_list, state.aggregate_items = self._parse_select_list()
        self._expect_keyword("FROM")
        self._parse_table_list()
        if self._at_keyword("LEFT"):
            self._parse_outer_join()
        if self._at_keyword("WHERE"):
            self._advance()
            self._parse_conditions()
        if self._at_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            state.group_by.append(self._parse_attribute())
            while self._at_symbol(","):
                self._advance()
                state.group_by.append(self._parse_attribute())
        return state

    def _build_branch(
        self, state: _BranchState, compound: bool
    ) -> StatementBranch:
        is_extended = bool(state.semijoins) or state.outer is not None
        if is_extended and (state.aggregate_items or state.group_by):
            raise ParseError(
                "aggregates are not supported with OUTER JOIN or "
                "subqueries",
                0,
            )
        resolved_select = None
        if state.select_list is not None:
            resolved_select = tuple(
                self._resolve_in_branch(state, name, pos)
                for name, pos in state.select_list
            )
        aggregate = self._build_aggregate(
            state, resolved_select, state.aggregate_items, state.group_by
        )
        if compound or is_extended:
            graph = QueryGraph(
                relations=tuple(state.relations),
                selections={
                    r: tuple(p) for r, p in state.selections.items()
                },
                joins=tuple(state.joins),
                parameters=self.space,
            )
            return StatementBranch(
                graph=graph,
                semijoins=tuple(state.semijoins),
                outer=state.outer,
                projection=resolved_select,
            )
        graph = QueryGraph(
            relations=tuple(state.relations),
            selections={r: tuple(p) for r, p in state.selections.items()},
            joins=tuple(state.joins),
            parameters=self.space,
            projection=None if aggregate is not None else resolved_select,
            aggregate=aggregate,
        )
        return StatementBranch(graph=graph)

    def _build_aggregate(
        self, state, resolved_select, aggregate_items, group_by
    ) -> AggregateSpec | None:
        if not aggregate_items and not group_by:
            return None
        if not aggregate_items:
            raise ParseError("GROUP BY requires at least one aggregate", 0)
        plain = tuple(resolved_select or ())
        for attribute in plain:
            if attribute not in group_by:
                raise ParseError(
                    f"{attribute.qualified_name} appears in SELECT but not "
                    "in GROUP BY",
                    0,
                )
        aggregates = []
        for func, operand in aggregate_items:
            if operand is None:
                aggregates.append(AggregateExpr(func, None))
            else:
                aggregates.append(
                    AggregateExpr(
                        func,
                        self._resolve_in_branch(state, operand[0], operand[1]),
                    )
                )
        return AggregateSpec(group_by=tuple(group_by), aggregates=tuple(aggregates))

    def _parse_select_list(self):
        """Returns (plain attribute names, aggregate items).

        Aggregate items are ``(function, (attribute name, position) | None)``.
        """
        if self._at_symbol("*"):
            self._advance()
            return None, []
        plain: list[tuple[str, int]] = []
        aggregates: list[tuple[AggregateFunction, tuple[str, int] | None]] = []

        def item() -> None:
            token = self._peek()
            if (
                token.kind is TokenKind.IDENT
                and token.text.upper() in _AGGREGATE_FUNCTIONS
                and self.tokens[self.position + 1].kind is TokenKind.SYMBOL
                and self.tokens[self.position + 1].text == "("
            ):
                self._advance()
                self._expect_symbol("(")
                function = _AGGREGATE_FUNCTIONS[token.text.upper()]
                if self._at_symbol("*"):
                    self._advance()
                    if function is not AggregateFunction.COUNT:
                        raise ParseError(
                            f"{token.text}(*) is not supported", token.position
                        )
                    operand = None
                else:
                    operand = self._parse_attribute_name()
                self._expect_symbol(")")
                aggregates.append((function, operand))
            else:
                plain.append(self._parse_attribute_name())

        item()
        while self._at_symbol(","):
            self._advance()
            item()
        return plain or None, aggregates

    def _parse_table_list(self) -> None:
        state = self.branch
        while True:
            token = self._expect_ident()
            name = token.text
            if name in state.relations:
                raise ParseError(f"relation {name} listed twice", token.position)
            self.catalog.relation(name)  # existence check; raises CatalogError
            state.relations.append(name)
            if not self._at_symbol(","):
                break
            self._advance()

    def _parse_outer_join(self) -> None:
        state = self.branch
        self._expect_keyword("LEFT")
        self._expect_keyword("OUTER")
        self._expect_keyword("JOIN")
        token = self._expect_ident()
        right_relation = token.text
        if right_relation in state.relations:
            raise ParseError(
                f"outer-join relation {right_relation} already in FROM",
                token.position,
            )
        self.catalog.relation(right_relation)
        self._expect_keyword("ON")
        first_name, first_pos = self._parse_attribute_name()
        op = self._advance()
        if op.kind is not TokenKind.SYMBOL or op.text != "=":
            raise ParseError(
                "outer-join condition must be an equality", op.position
            )
        second_name, second_pos = self._parse_attribute_name()
        sides = {
            name.partition(".")[0]: (name, pos)
            for name, pos in ((first_name, first_pos), (second_name, second_pos))
        }
        if right_relation not in sides or len(sides) != 2:
            raise ParseError(
                "outer-join condition must compare a FROM attribute with "
                f"an attribute of {right_relation}",
                first_pos,
            )
        right_name, _ = sides.pop(right_relation)
        (left_name, left_pos), = sides.values()
        if left_name.partition(".")[0] not in state.relations:
            raise ParseError(
                f"outer-join attribute {left_name} references a relation "
                "outside the FROM list",
                left_pos,
            )
        state.outer = OuterJoin(
            left_attr=self._attribute_of(left_name, left_pos),
            right_relation=right_relation,
            right_attr=self._attribute_of(right_name, second_pos),
        )

    def _parse_conditions(self) -> None:
        while True:
            self._parse_condition()
            if not self._at_keyword("AND"):
                break
            self._advance()

    def _parse_condition(self) -> None:
        if self._at_keyword("EXISTS"):
            self._parse_exists_subquery()
            return
        left = self._parse_attribute()
        if self._at_keyword("IN"):
            self._advance()
            self._parse_in_subquery(left)
            return
        op_token = self._advance()
        if op_token.kind is not TokenKind.SYMBOL or op_token.text not in _OPERATORS:
            raise ParseError(
                f"expected comparison operator, found {op_token.text!r}",
                op_token.position,
            )
        op = _OPERATORS[op_token.text]
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            right = self._parse_attribute()
            if op is not CompareOp.EQ:
                raise ParseError(
                    "join predicates must be equijoins", op_token.position
                )
            self.branch.joins.append(JoinPredicate(left, right))
            return
        operand = self._parse_operand(token)
        predicate = SelectionPredicate(left, op, operand)
        self.branch.selections.setdefault(left.relation, []).append(predicate)

    def _parse_operand(self, token: Token) -> Literal | HostVariable:
        if token.kind is TokenKind.HOST_VARIABLE:
            self._advance()
            parameter = f"sel:{token.text}"
            if parameter not in self.space:
                self.space.add_selectivity(
                    parameter, expected=self.default_selectivity
                )
            self.host_variables.append(token.text)
            return HostVariable(token.text, parameter)
        if token.kind in (TokenKind.NUMBER, TokenKind.STRING):
            self._advance()
            return Literal(token.value)
        raise ParseError(
            f"expected literal or host variable, found {token.text!r}",
            token.position,
        )

    # ------------------------------------------------------------------
    # Subqueries (semi-join rewrite)
    # ------------------------------------------------------------------
    def _subquery_relation(self, token: Token) -> str:
        name = token.text
        state = self.branch
        if name in state.relations or any(
            s.inner_relation == name for s in state.semijoins
        ):
            raise ParseError(
                f"subquery relation {name} already appears in the branch",
                token.position,
            )
        self.catalog.relation(name)
        return name

    def _parse_subquery_selections(
        self, relation: str
    ) -> list[SelectionPredicate]:
        """WHERE clause of a subquery: selections on ``relation`` only."""
        selections: list[SelectionPredicate] = []
        while True:
            name, position = self._parse_attribute_name()
            if name.partition(".")[0] != relation:
                raise ParseError(
                    f"subquery predicate on {name} must reference "
                    f"{relation}",
                    position,
                )
            attribute = self._attribute_of(name, position)
            op_token = self._advance()
            if (
                op_token.kind is not TokenKind.SYMBOL
                or op_token.text not in _OPERATORS
            ):
                raise ParseError(
                    f"expected comparison operator, found {op_token.text!r}",
                    op_token.position,
                )
            operand = self._parse_operand(self._peek())
            selections.append(
                SelectionPredicate(attribute, _OPERATORS[op_token.text], operand)
            )
            if not self._at_keyword("AND"):
                break
            self._advance()
        return selections

    def _parse_in_subquery(self, outer_attr: Attribute) -> None:
        """``attr IN (SELECT inner.attr FROM inner [WHERE ...])``"""
        self._expect_symbol("(")
        self._expect_keyword("SELECT")
        inner_name, inner_pos = self._parse_attribute_name()
        self._expect_keyword("FROM")
        relation = self._subquery_relation(self._expect_ident())
        if inner_name.partition(".")[0] != relation:
            raise ParseError(
                f"IN subquery must select from {relation}", inner_pos
            )
        selections: list[SelectionPredicate] = []
        if self._at_keyword("WHERE"):
            self._advance()
            selections = self._parse_subquery_selections(relation)
        self._expect_symbol(")")
        self.branch.semijoins.append(
            SemiJoin(
                outer_attr=outer_attr,
                inner_relation=relation,
                inner_attr=self._attribute_of(inner_name, inner_pos),
                selections=tuple(selections),
                style="in",
            )
        )

    def _parse_exists_subquery(self) -> None:
        """``EXISTS (SELECT * FROM inner WHERE inner.a = outer.b ...)``"""
        self._expect_keyword("EXISTS")
        self._expect_symbol("(")
        self._expect_keyword("SELECT")
        if self._at_symbol("*"):
            self._advance()
        else:
            self._parse_attribute_name()  # projection is irrelevant
        self._expect_keyword("FROM")
        token = self._expect_ident()
        relation = self._subquery_relation(token)
        self._expect_keyword("WHERE")
        correlation: tuple[Attribute, Attribute] | None = None
        selections: list[SelectionPredicate] = []
        while True:
            name, position = self._parse_attribute_name()
            op_token = self._advance()
            if (
                op_token.kind is not TokenKind.SYMBOL
                or op_token.text not in _OPERATORS
            ):
                raise ParseError(
                    f"expected comparison operator, found {op_token.text!r}",
                    op_token.position,
                )
            if self._peek().kind is TokenKind.IDENT:
                other, other_pos = self._parse_attribute_name()
                if op_token.text != "=" or correlation is not None:
                    raise ParseError(
                        "EXISTS supports exactly one correlated equality",
                        op_token.position,
                    )
                pair = {
                    name.partition(".")[0]: (name, position),
                    other.partition(".")[0]: (other, other_pos),
                }
                if relation not in pair or len(pair) != 2:
                    raise ParseError(
                        "EXISTS correlation must compare the subquery "
                        "relation with an outer attribute",
                        position,
                    )
                inner_name, inner_pos = pair.pop(relation)
                (outer_name, outer_pos), = pair.values()
                if outer_name.partition(".")[0] not in self.branch.relations:
                    raise ParseError(
                        f"correlated attribute {outer_name} references a "
                        "relation outside the FROM list",
                        outer_pos,
                    )
                correlation = (
                    self._attribute_of(outer_name, outer_pos),
                    self._attribute_of(inner_name, inner_pos),
                )
            else:
                if name.partition(".")[0] != relation:
                    raise ParseError(
                        f"subquery predicate on {name} must reference "
                        f"{relation}",
                        position,
                    )
                operand = self._parse_operand(self._peek())
                selections.append(
                    SelectionPredicate(
                        self._attribute_of(name, position),
                        _OPERATORS[op_token.text],
                        operand,
                    )
                )
            if not self._at_keyword("AND"):
                break
            self._advance()
        self._expect_symbol(")")
        if correlation is None:
            raise ParseError(
                "EXISTS subquery needs a correlated equality with the "
                "outer query",
                token.position,
            )
        outer_attr, inner_attr = correlation
        self.branch.semijoins.append(
            SemiJoin(
                outer_attr=outer_attr,
                inner_relation=relation,
                inner_attr=inner_attr,
                selections=tuple(selections),
                style="exists",
            )
        )

    # ------------------------------------------------------------------
    # Attribute resolution
    # ------------------------------------------------------------------
    def _parse_attribute_name(self) -> tuple[str, int]:
        relation = self._expect_ident()
        self._expect_symbol(".")
        attribute = self._expect_ident()
        return f"{relation.text}.{attribute.text}", relation.position

    def _parse_attribute(self) -> Attribute:
        """Resolve an attribute of the current branch's FROM relations."""
        name, position = self._parse_attribute_name()
        relation = name.partition(".")[0]
        state = self.branch
        if relation not in state.relations and state.relations:
            raise ParseError(
                f"attribute {name} references relation {relation}, "
                "which is not in the FROM list",
                position,
            )
        return self._attribute_of(name, position)

    def _resolve_in_branch(
        self, state: _BranchState, qualified_name: str, position: int
    ) -> Attribute:
        """Resolve against the branch's *extended* relations (FROM + outer)."""
        relation = qualified_name.partition(".")[0]
        allowed = set(state.relations)
        if state.outer is not None:
            allowed.add(state.outer.right_relation)
        if relation not in allowed and allowed:
            raise ParseError(
                f"attribute {qualified_name} references relation {relation}, "
                "which is not in the FROM list",
                position,
            )
        return self._attribute_of(qualified_name, position)

    def _attribute_of(self, qualified_name: str, position: int) -> Attribute:
        try:
            return self.catalog.attribute(qualified_name)
        except Exception as exc:
            raise ParseError(str(exc), position) from None
