"""repro.qa — differential fuzzing of the whole query pipeline.

The paper's correctness story rests on invariants (notably ∀i gᵢ = dᵢ:
the dynamic plan's start-up choice costs exactly what from-scratch
run-time optimization would) that the hand-written tests exercise only on
chain queries.  This package generates random catalogs, data, and queries;
evaluates each query with a deliberately naive reference evaluator; and
checks a battery of invariants across the parser, the three optimization
modes, the run-time chooser, the executor, and the serving layer.  Failing
cases are greedily shrunk and written as replayable JSON artifacts.

Everything here is stdlib-only, mirroring the repo's zero-dependency rule.

* :mod:`repro.qa.generator` — seeded random schemas/catalogs/queries with
  both the SQL text and the expected logical query graph.
* :mod:`repro.qa.oracle` — nested-loops + full-sort reference evaluator.
* :mod:`repro.qa.invariants` — per-case invariant checkers.
* :mod:`repro.qa.shrinker` — greedy minimization of failing cases.
* :mod:`repro.qa.harness` — the fuzz loop, artifacts, and replay.
"""

from repro.qa.generator import (
    AggregateItemSpec,
    CaseGenerator,
    FuzzCase,
    JoinSpec,
    PredicateSpec,
    QuerySpec,
    RelationSpec,
    generate_case,
)
from repro.qa.harness import (
    FuzzFailure,
    FuzzReport,
    load_artifact,
    replay_artifact,
    run_fuzz,
    write_artifact,
)
from repro.qa.invariants import CaseOutcome, Violation, run_case
from repro.qa.oracle import evaluate_reference
from repro.qa.shrinker import shrink_case

__all__ = [
    "AggregateItemSpec",
    "CaseGenerator",
    "CaseOutcome",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "JoinSpec",
    "PredicateSpec",
    "QuerySpec",
    "RelationSpec",
    "Violation",
    "evaluate_reference",
    "generate_case",
    "load_artifact",
    "replay_artifact",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "write_artifact",
]
