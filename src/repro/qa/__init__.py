"""repro.qa — differential fuzzing of the whole query pipeline.

The paper's correctness story rests on invariants (notably ∀i gᵢ = dᵢ:
the dynamic plan's start-up choice costs exactly what from-scratch
run-time optimization would) that the hand-written tests exercise only on
chain queries.  This package generates random catalogs, data, and queries
over the full SPJU grammar (UNION / UNION ALL, LEFT OUTER JOIN, IN/EXISTS
subqueries); evaluates each query with a deliberately naive reference
evaluator; and checks a battery of invariants across the parser, the
three optimization modes, the run-time chooser, the executor, and the
serving layer — including a CERT-style monotonicity oracle on every case.
Failing cases are greedily shrunk and written as replayable JSON
artifacts.

Fuzzing can run *coverage-guided*: every case's plans are fingerprinted
into a plan-shape coverage map, and when discovery goes stale the
generator's catalog/data state evolves (statistics skew, index churn,
relation growth, grammar mix) to unlock new shapes.

Everything here is stdlib-only, mirroring the repo's zero-dependency rule.

* :mod:`repro.qa.generator` — seeded random schemas/catalogs/queries with
  both the SQL text and the expected logical statement.
* :mod:`repro.qa.oracle` — nested-loops + full-sort reference evaluator.
* :mod:`repro.qa.invariants` — per-case invariant checkers.
* :mod:`repro.qa.coverage` — plan-shape fingerprints, the coverage map,
  and the guided corpus-evolution sweep.
* :mod:`repro.qa.shrinker` — greedy minimization of failing cases.
* :mod:`repro.qa.harness` — the fuzz loop, artifacts, and replay.
"""

from repro.qa.coverage import (
    CoverageMap,
    SweepResult,
    collect_case_shapes,
    coverage_sweep,
    load_baseline,
    plan_fingerprint,
    plan_shape,
    write_coverage_report,
)
from repro.qa.generator import (
    PROFILE_SCHEDULE,
    AggregateItemSpec,
    CaseGenerator,
    FuzzCase,
    GenerationProfile,
    JoinSpec,
    OuterJoinSpec,
    PredicateSpec,
    QuerySpec,
    RelationSpec,
    SemiJoinSpec,
    generate_case,
)
from repro.qa.harness import (
    FuzzFailure,
    FuzzReport,
    load_artifact,
    replay_artifact,
    run_fuzz,
    write_artifact,
)
from repro.qa.invariants import CaseOutcome, Violation, run_case
from repro.qa.oracle import evaluate_reference
from repro.qa.shrinker import shrink_case

__all__ = [
    "AggregateItemSpec",
    "CaseGenerator",
    "CaseOutcome",
    "CoverageMap",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "GenerationProfile",
    "JoinSpec",
    "OuterJoinSpec",
    "PROFILE_SCHEDULE",
    "PredicateSpec",
    "QuerySpec",
    "RelationSpec",
    "SemiJoinSpec",
    "SweepResult",
    "Violation",
    "collect_case_shapes",
    "coverage_sweep",
    "evaluate_reference",
    "generate_case",
    "load_artifact",
    "load_baseline",
    "plan_fingerprint",
    "plan_shape",
    "replay_artifact",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "write_artifact",
    "write_coverage_report",
]
