"""Naive reference evaluator: nested loops, full materialization, no plans.

The oracle deliberately shares nothing with the optimizer or the executor
beyond the stored data itself: it evaluates the generator's *specification*
of the query (not the parsed graph, not a physical plan) by folding
relations left to right with nested-loop joins over fully materialized row
sets.  Aggregation replicates the documented executor semantics exactly:
COUNT counts rows (the engine has no NULLs, so COUNT(attr) == COUNT(*)),
SUM accumulates as float, AVG is SUM/COUNT, and a scalar aggregate over
zero rows yields exactly one row (COUNT 0, SUM 0.0, MIN/MAX/AVG None)
while a grouped aggregate over zero rows yields none.
"""

from __future__ import annotations

from typing import Iterable

from repro.catalog.schema import Attribute
from repro.executor.database import Database
from repro.logical.aggregates import AggregateExpr, AggregateFunction
from repro.logical.predicates import CompareOp
from repro.qa.generator import FuzzCase, QuerySpec

_OPS = {
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}

# A row during reference evaluation: qualified attribute name -> value.
RefRow = dict[str, object]


def canonical_attributes(case: FuzzCase, db: Database) -> tuple[Attribute, ...]:
    """The fixed output-attribute order both sides are compared under.

    Aggregates output their group-by keys then one column per aggregate
    expression (matching ``AggregateSpec.output_attributes``); plain
    queries output their projection, or every attribute of the FROM
    relations in schema order for ``SELECT *`` — plus the outer-joined
    relation's attributes when the branch carries a LEFT OUTER JOIN
    (semi-joins add no columns).  Compound statements share branch 0's
    projection by construction.
    """
    catalog = db.catalog
    query = case.query
    if query.aggregates:
        out = [catalog.attribute(name) for name in query.group_by]
        for item in query.aggregates:
            expr = AggregateExpr(
                AggregateFunction(item.function),
                None
                if item.attribute is None
                else catalog.attribute(item.attribute),
            )
            out.append(expr.output_attribute())
        return tuple(out)
    if query.projection is not None:
        return tuple(catalog.attribute(name) for name in query.projection)
    out = []
    for relation in query.relations:
        out.extend(catalog.relation(relation).schema)
    if query.outer is not None:
        out.extend(catalog.relation(query.outer.right_relation).schema)
    return tuple(out)


def _relation_rows(db: Database, relation: str) -> list[RefRow]:
    schema = db.catalog.relation(relation).schema
    names = [attribute.qualified_name for attribute in schema]
    return [
        dict(zip(names, row)) for _rid, row in db.heap(relation).scan()
    ]


def _passes(
    row: RefRow, predicates, bindings: dict[str, int]
) -> bool:
    for predicate in predicates:
        operand = (
            bindings[predicate.host]
            if predicate.host is not None
            else predicate.literal
        )
        if not _OPS[predicate.op].evaluate(row[predicate.attribute], operand):
            return False
    return True


def _passes_selections(
    row: RefRow, query: QuerySpec, relation: str, bindings: dict[str, int]
) -> bool:
    return _passes(
        row,
        [p for p in query.selections if p.relation == relation],
        bindings,
    )


def _branch_rows(
    query: QuerySpec, db: Database, bindings: dict[str, int]
) -> list[RefRow]:
    """One branch evaluated naively: filtered nested-loop fold over the
    FROM list, then semi-join filters, then the left outer join."""
    accumulated: list[RefRow] | None = None
    present: set[str] = set()
    applied: set[int] = set()
    for relation in query.relations:
        rows = [
            row
            for row in _relation_rows(db, relation)
            if _passes_selections(row, query, relation, bindings)
        ]
        if accumulated is None:
            accumulated = rows
        else:
            accumulated = [
                {**left, **right} for left in accumulated for right in rows
            ]
        present.add(relation)
        for i, join in enumerate(query.joins):
            if i in applied or not join.relations <= present:
                continue
            applied.add(i)
            accumulated = [
                row for row in accumulated if row[join.left] == row[join.right]
            ]
    assert accumulated is not None  # QuerySpec always has >= 1 relation

    for semijoin in query.semijoins:
        matches = {
            row[semijoin.inner_attr]
            for row in _relation_rows(db, semijoin.inner_relation)
            if _passes(row, semijoin.selections, bindings)
        }
        accumulated = [
            row for row in accumulated if row[semijoin.outer_attr] in matches
        ]

    if query.outer is not None:
        right_schema = db.catalog.relation(query.outer.right_relation).schema
        padding: RefRow = {
            attribute.qualified_name: None for attribute in right_schema
        }
        by_key: dict[object, list[RefRow]] = {}
        for row in _relation_rows(db, query.outer.right_relation):
            by_key.setdefault(row[query.outer.right_attr], []).append(row)
        extended: list[RefRow] = []
        for left in accumulated:
            partners = by_key.get(left[query.outer.left_attr])
            if partners:
                extended.extend({**left, **right} for right in partners)
            else:
                extended.append({**left, **padding})
        accumulated = extended
    return accumulated


def evaluate_reference(case: FuzzCase, db: Database) -> list[tuple]:
    """Rows of the statement under naive evaluation, in canonical column
    order.

    Returned unsorted (callers compare as multisets); ORDER BY is a
    presentation property checked separately against the engine's output.
    UNION branches are evaluated independently and concatenated; plain
    UNION then keeps one copy of each distinct row.
    """
    query = case.query
    out: list[tuple] = []
    for branch in query.all_branches():
        accumulated = _branch_rows(branch, db, case.bindings)
        if branch.aggregates:
            out.extend(_aggregate(branch, accumulated))
            continue
        if branch.projection is not None:
            names: Iterable[str] = branch.projection
        else:
            names = [
                attribute.qualified_name
                for relation in branch.output_relations_for_star()
                for attribute in db.catalog.relation(relation).schema
            ]
        out.extend(tuple(row[name] for name in names) for row in accumulated)
    if len(query.all_branches()) > 1 and not query.union_all:
        seen: set[tuple] = set()
        distinct: list[tuple] = []
        for row in out:
            if row not in seen:
                seen.add(row)
                distinct.append(row)
        out = distinct
    return out


def _aggregate(query: QuerySpec, rows: list[RefRow]) -> list[tuple]:
    groups: dict[tuple, list[RefRow]] = {}
    for row in rows:
        key = tuple(row[name] for name in query.group_by)
        groups.setdefault(key, []).append(row)
    if not query.group_by and not groups:
        groups[()] = []  # scalar aggregate over empty input: one row
    out: list[tuple] = []
    for key, members in groups.items():
        values = list(key)
        for item in query.aggregates:
            column = (
                None
                if item.attribute is None
                else [row[item.attribute] for row in members]
            )
            values.append(_apply(item.function, column, len(members)))
        out.append(tuple(values))
    return out


def _apply(function: str, column: list | None, count: int) -> object:
    if function == "count":
        return count
    assert column is not None
    if function == "sum":
        total = 0.0
        for value in column:
            total += value  # float accumulation, matching the executor
        return total
    if function == "min":
        return min(column) if column else None
    if function == "max":
        return max(column) if column else None
    # avg
    return (sum(column, 0.0) / count) if count else None


def sort_key(row: tuple) -> tuple:
    """Total order over result rows that tolerates None cells."""
    return tuple((value is None, 0 if value is None else value) for value in row)


def canonical_rows(rows: list[tuple]) -> list[tuple]:
    """Multiset-canonical form: rows sorted under :func:`sort_key`."""
    return sorted(rows, key=sort_key)
