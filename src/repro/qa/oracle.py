"""Naive reference evaluator: nested loops, full materialization, no plans.

The oracle deliberately shares nothing with the optimizer or the executor
beyond the stored data itself: it evaluates the generator's *specification*
of the query (not the parsed graph, not a physical plan) by folding
relations left to right with nested-loop joins over fully materialized row
sets.  Aggregation replicates the documented executor semantics exactly:
COUNT counts rows (the engine has no NULLs, so COUNT(attr) == COUNT(*)),
SUM accumulates as float, AVG is SUM/COUNT, and a scalar aggregate over
zero rows yields exactly one row (COUNT 0, SUM 0.0, MIN/MAX/AVG None)
while a grouped aggregate over zero rows yields none.
"""

from __future__ import annotations

from typing import Iterable

from repro.catalog.schema import Attribute
from repro.executor.database import Database
from repro.logical.aggregates import AggregateExpr, AggregateFunction
from repro.logical.predicates import CompareOp
from repro.qa.generator import FuzzCase, QuerySpec

_OPS = {
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}

# A row during reference evaluation: qualified attribute name -> value.
RefRow = dict[str, object]


def canonical_attributes(case: FuzzCase, db: Database) -> tuple[Attribute, ...]:
    """The fixed output-attribute order both sides are compared under.

    Aggregates output their group-by keys then one column per aggregate
    expression (matching ``AggregateSpec.output_attributes``); plain
    queries output their projection, or every attribute of the FROM
    relations in schema order for ``SELECT *``.
    """
    catalog = db.catalog
    query = case.query
    if query.aggregates:
        out = [catalog.attribute(name) for name in query.group_by]
        for item in query.aggregates:
            expr = AggregateExpr(
                AggregateFunction(item.function),
                None
                if item.attribute is None
                else catalog.attribute(item.attribute),
            )
            out.append(expr.output_attribute())
        return tuple(out)
    if query.projection is not None:
        return tuple(catalog.attribute(name) for name in query.projection)
    out = []
    for relation in query.relations:
        out.extend(catalog.relation(relation).schema)
    return tuple(out)


def _relation_rows(db: Database, relation: str) -> list[RefRow]:
    schema = db.catalog.relation(relation).schema
    names = [attribute.qualified_name for attribute in schema]
    return [
        dict(zip(names, row)) for _rid, row in db.heap(relation).scan()
    ]


def _passes_selections(
    row: RefRow, query: QuerySpec, relation: str, bindings: dict[str, int]
) -> bool:
    for predicate in query.selections:
        if predicate.relation != relation:
            continue
        operand = (
            bindings[predicate.host]
            if predicate.host is not None
            else predicate.literal
        )
        if not _OPS[predicate.op].evaluate(row[predicate.attribute], operand):
            return False
    return True


def evaluate_reference(case: FuzzCase, db: Database) -> list[tuple]:
    """Rows of the query under naive evaluation, in canonical column order.

    Returned unsorted (callers compare as multisets); ORDER BY is a
    presentation property checked separately against the engine's output.
    """
    query = case.query
    accumulated: list[RefRow] | None = None
    present: set[str] = set()
    applied: set[int] = set()
    for relation in query.relations:
        rows = [
            row
            for row in _relation_rows(db, relation)
            if _passes_selections(row, query, relation, case.bindings)
        ]
        if accumulated is None:
            accumulated = rows
        else:
            accumulated = [
                {**left, **right} for left in accumulated for right in rows
            ]
        present.add(relation)
        for i, join in enumerate(query.joins):
            if i in applied or not join.relations <= present:
                continue
            applied.add(i)
            accumulated = [
                row for row in accumulated if row[join.left] == row[join.right]
            ]
    assert accumulated is not None  # QuerySpec always has >= 1 relation

    if query.aggregates:
        return _aggregate(query, accumulated)
    if query.projection is not None:
        names: Iterable[str] = query.projection
    else:
        names = [
            attribute.qualified_name
            for relation in query.relations
            for attribute in db.catalog.relation(relation).schema
        ]
    return [tuple(row[name] for name in names) for row in accumulated]


def _aggregate(query: QuerySpec, rows: list[RefRow]) -> list[tuple]:
    groups: dict[tuple, list[RefRow]] = {}
    for row in rows:
        key = tuple(row[name] for name in query.group_by)
        groups.setdefault(key, []).append(row)
    if not query.group_by and not groups:
        groups[()] = []  # scalar aggregate over empty input: one row
    out: list[tuple] = []
    for key, members in groups.items():
        values = list(key)
        for item in query.aggregates:
            column = (
                None
                if item.attribute is None
                else [row[item.attribute] for row in members]
            )
            values.append(_apply(item.function, column, len(members)))
        out.append(tuple(values))
    return out


def _apply(function: str, column: list | None, count: int) -> object:
    if function == "count":
        return count
    assert column is not None
    if function == "sum":
        total = 0.0
        for value in column:
            total += value  # float accumulation, matching the executor
        return total
    if function == "min":
        return min(column) if column else None
    if function == "max":
        return max(column) if column else None
    # avg
    return (sum(column, 0.0) / count) if count else None


def sort_key(row: tuple) -> tuple:
    """Total order over result rows that tolerates None cells."""
    return tuple((value is None, 0 if value is None else value) for value in row)


def canonical_rows(rows: list[tuple]) -> list[tuple]:
    """Multiset-canonical form: rows sorted under :func:`sort_key`."""
    return sorted(rows, key=sort_key)
