"""Greedy minimization of failing fuzz cases.

The shrinker repeatedly proposes structurally smaller variants of a
failing case — drop a relation (with its joins and predicates), drop a
join or selection, strip aggregates, projections and ORDER BY, zero out
constants, drop indexes, halve cardinalities — and keeps a variant iff it
still violates at least one of the invariants the original case violated
(matching on check name, so a shrink cannot wander onto an unrelated
bug).  Every proposal keeps the query well-formed: at least one relation,
a connected join graph, and no references to dropped relations.

The result is deterministic: proposals are enumerated in a fixed order
and the loop runs to a fixpoint.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.qa.generator import FuzzCase, QuerySpec
from repro.qa.invariants import run_case

MAX_ATTEMPTS = 400


def _connected(relations: tuple[str, ...], joins) -> bool:
    if len(relations) <= 1:
        return True
    adjacency: dict[str, set[str]] = {r: set() for r in relations}
    for join in joins:
        pair = tuple(join.relations)
        if len(pair) == 1:
            continue
        a, b = pair
        if a in adjacency and b in adjacency:
            adjacency[a].add(b)
            adjacency[b].add(a)
    seen = {relations[0]}
    frontier = [relations[0]]
    while frontier:
        for neighbor in adjacency[frontier.pop()]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(relations)


def _prune_bindings(case: FuzzCase, query: QuerySpec) -> dict[str, int]:
    used = {p.host for p in query.host_predicates()}
    return {k: v for k, v in case.bindings.items() if k in used}


def _with_query(case: FuzzCase, query: QuerySpec) -> FuzzCase:
    return replace(case, query=query, bindings=_prune_bindings(case, query))


def _drop_relation(case: FuzzCase, name: str) -> FuzzCase | None:
    query = case.query

    def keeps(attribute: str) -> bool:
        return attribute.partition(".")[0] != name

    relations = tuple(r for r in query.relations if r != name)
    if not relations:
        return None
    # Under UNION the first branch's projection fixes the statement's
    # arity; dropping one of its relations would break every other
    # branch.  Branch-level proposals run first and reduce to this case.
    if query.branches:
        return None
    # A relation anchoring the outer join or a semi-join's outer side
    # cannot be dropped without dropping that operator first — the
    # compound proposals (which run earlier) handle those.
    if query.outer is not None and not keeps(query.outer.left_attr):
        return None
    if any(not keeps(s.outer_attr) for s in query.semijoins):
        return None
    joins = tuple(j for j in query.joins if name not in j.relations)
    if not _connected(relations, joins):
        return None

    projection = query.projection
    if projection is not None:
        projection = tuple(a for a in projection if keeps(a)) or None
    group_by = tuple(a for a in query.group_by if keeps(a))
    aggregates = tuple(
        a
        for a in query.aggregates
        if a.attribute is None or keeps(a.attribute)
    )
    if not aggregates:
        group_by = ()
    order_by = query.order_by
    if order_by is not None and (
        not keeps(order_by) or (aggregates and order_by not in group_by)
    ):
        order_by = None
    shrunk = replace(
        query,
        relations=relations,
        selections=tuple(s for s in query.selections if s.relation != name),
        joins=joins,
        projection=projection if not aggregates else None,
        group_by=group_by,
        aggregates=aggregates,
        order_by=order_by,
    )
    return _with_query(case, shrunk)


def _proposals(case: FuzzCase) -> Iterator[FuzzCase]:
    """Structurally smaller variants, biggest shrinks first.

    Compound structure shrinks independently and *before* anything
    inside a branch: a failing UNION loses whole branches (or keeps a
    single non-first branch) before any branch loses a relation, a
    semi-join disappears before its subquery's selections are touched,
    and UNION decays to UNION ALL before row-level simplification — so
    the minimal artifact for a branch-local bug is that branch alone.
    """
    query = case.query

    # Drop extra UNION branches one at a time; also try keeping one
    # non-first branch as the entire (simple) statement, for failures
    # that live in a later branch.
    for i in range(len(query.branches)):
        remaining = query.branches[:i] + query.branches[i + 1 :]
        yield _with_query(case, replace(query, branches=remaining))
    for branch in query.branches:
        yield _with_query(
            case, replace(branch, branches=(), order_by=None)
        )
    if query.branches and not query.union_all:
        # UNION ALL drops the Distinct operator — strictly smaller.
        yield _with_query(case, replace(query, union_all=True))

    # Drop IN/EXISTS subqueries one at a time, then just their inner
    # selections; an EXISTS simplifies to the equivalent IN.
    for i, semijoin in enumerate(query.semijoins):
        remaining = query.semijoins[:i] + query.semijoins[i + 1 :]
        yield _with_query(case, replace(query, semijoins=remaining))
        if semijoin.selections:
            stripped = replace(semijoin, selections=())
            yield _with_query(
                case,
                replace(
                    query,
                    semijoins=query.semijoins[:i]
                    + (stripped,)
                    + query.semijoins[i + 1 :],
                ),
            )
        if semijoin.style == "exists":
            as_in = replace(semijoin, style="in")
            yield _with_query(
                case,
                replace(
                    query,
                    semijoins=query.semijoins[:i]
                    + (as_in,)
                    + query.semijoins[i + 1 :],
                ),
            )

    # Drop the LEFT OUTER JOIN.
    if query.outer is not None:
        yield _with_query(case, replace(query, outer=None))

    # Drop whole relations (largest single reduction).
    for name in query.relations:
        candidate = _drop_relation(case, name)
        if candidate is not None:
            yield candidate

    # Strip the aggregate back to a plain SELECT *.
    if query.aggregates:
        yield _with_query(
            case,
            replace(
                query,
                aggregates=(),
                group_by=(),
                order_by=None,
                projection=None,
            ),
        )
        for i in range(len(query.aggregates)):
            remaining = query.aggregates[:i] + query.aggregates[i + 1 :]
            if remaining:
                yield _with_query(case, replace(query, aggregates=remaining))
        for i in range(len(query.group_by)):
            remaining = query.group_by[:i] + query.group_by[i + 1 :]
            order_by = (
                query.order_by if query.order_by in remaining else None
            )
            yield _with_query(
                case, replace(query, group_by=remaining, order_by=order_by)
            )

    # Drop ORDER BY and the projection (kept under UNION, where the
    # first branch's explicit projection fixes the statement arity).
    if query.order_by is not None:
        yield _with_query(case, replace(query, order_by=None))
    if query.projection is not None and not query.branches:
        yield _with_query(
            case, replace(query, projection=None, order_by=None)
        )

    # Drop selections one at a time.
    for i in range(len(query.selections)):
        remaining = query.selections[:i] + query.selections[i + 1 :]
        yield _with_query(case, replace(query, selections=remaining))

    # Drop redundant joins (only where connectivity survives).
    for i in range(len(query.joins)):
        remaining = query.joins[:i] + query.joins[i + 1 :]
        if _connected(query.relations, remaining):
            yield _with_query(case, replace(query, joins=remaining))

    # Simplify constants: literals and host-variable bindings toward 0.
    for i, predicate in enumerate(query.selections):
        if predicate.literal is not None and predicate.literal != 0:
            for smaller in (0, predicate.literal // 2):
                if smaller == predicate.literal:
                    continue
                simplified = replace(predicate, literal=smaller)
                selections = (
                    query.selections[:i]
                    + (simplified,)
                    + query.selections[i + 1 :]
                )
                yield _with_query(case, replace(query, selections=selections))
    for name, value in case.bindings.items():
        if value != 0:
            for smaller in (0, value // 2):
                if smaller == value:
                    continue
                yield replace(
                    case, bindings={**case.bindings, name: smaller}
                )

    # Shrink the catalog: unused relations, indexes, key declarations,
    # cardinalities.  "Used" includes subquery inners, the outer-joined
    # relation, and every UNION branch's FROM list.
    referenced = set(query.referenced_relations())
    if any(spec.name not in referenced for spec in case.relations):
        yield replace(
            case,
            relations=tuple(
                s for s in case.relations if s.name in referenced
            ),
        )
    for i, spec in enumerate(case.relations):
        if spec.indexes:
            stripped = replace(spec, indexes=())
            yield replace(
                case,
                relations=case.relations[:i]
                + (stripped,)
                + case.relations[i + 1 :],
            )
        if spec.unique:
            unkeyed = replace(spec, unique=())
            yield replace(
                case,
                relations=case.relations[:i]
                + (unkeyed,)
                + case.relations[i + 1 :],
            )
        if spec.cardinality > 1:
            smaller = replace(spec, cardinality=max(1, spec.cardinality // 2))
            yield replace(
                case,
                relations=case.relations[:i]
                + (smaller,)
                + case.relations[i + 1 :],
            )
    if case.analyze:
        yield replace(case, analyze=False)


def shrink_case(
    case: FuzzCase,
    failing_checks: frozenset[str],
    run: Callable[[FuzzCase], object] | None = None,
    max_attempts: int = MAX_ATTEMPTS,
) -> FuzzCase:
    """Greedily minimize ``case`` while it still fails one of
    ``failing_checks``.

    ``run`` defaults to :func:`repro.qa.invariants.run_case`; tests inject
    instrumented runners (e.g. with a bug-injecting monkeypatch active).
    """
    runner = run or run_case
    attempts = 0
    current = case
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _proposals(current):
            attempts += 1
            if attempts >= max_attempts:
                break
            outcome = runner(candidate)
            if outcome.checks & failing_checks:
                current = candidate
                improved = True
                break  # restart proposals from the smaller case
    return current
