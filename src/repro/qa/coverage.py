"""Plan-shape coverage: fingerprints, the coverage map, and guided sweeps.

A *plan shape* is what remains of a physical plan after forgetting
everything run-specific: literals, host-variable values, and concrete
relation names.  Two cases that both produce ``Filter o File-Scan``
joined to a ``B-tree-Scan`` under a choose-plan cover the *same* shape
even though they were generated from different seeds — so counting
distinct shapes measures how much of the optimizer's plan space the
fuzzer has actually exercised, not how many cases it has burned.

:func:`plan_fingerprint` is the coverage-oriented sibling of the
telemetry layer's :func:`~repro.obs.telemetry.plan_signature` (same
node-label walk, same blake2b/12-hex-digit digest) with one crucial
difference: the signature is *injective* over plan trees — every
re-ordered join or re-named relation is a fresh signature, which is
exactly right for correlating ledger observations and exactly wrong for
coverage, where an unbounded fingerprint space means every generated
case is "new" and saturation (the signal that drives corpus evolution)
never occurs.  The fingerprint therefore digests a **bounded feature
summary**: the *set* of operator kinds present (access-path kinds,
join algorithms, aggregation strategies, choose-plan / exchange /
semi-join / outer-join / union / distinct operators — first label token
with numerals erased) plus the plan's depth bucketed at
:data:`DEPTH_CAP`.  The feature space is finite, so a fixed generation
profile exhausts it and the guided loop's staleness detector fires.

With ``choices`` (an :class:`~repro.runtime.chooser.ActivationDecision`'s
mapping) the walk traverses each choose-plan node only through its chosen
alternative, yielding the *activated* shape; without it the full dynamic
plan — alternatives and all — is fingerprinted.

:class:`CoverageMap` accumulates fingerprints per dimension
(``static`` / ``dynamic`` / ``run-time`` / ``activated`` / ``dop1`` /
``dop4`` from the optimizer sweep, plus ``batch`` / ``row`` execution
modes recorded by the harness), and :func:`coverage_sweep` runs the
QPG-style corpus-evolution loop shared by ``repro fuzz --coverage`` and
the benchmark test: when :data:`EVOLVE_AFTER` consecutive cases discover
no new shape, the generator's catalog/data state mutates by advancing to
the next :data:`~repro.qa.generator.PROFILE_SCHEDULE` stage (statistics
skew, index add/drop probability, relation growth, grammar mix).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.cost.model import CostModel
from repro.executor.database import Database
from repro.optimizer.optimizer import OptimizationMode
from repro.optimizer.statement import StatementResult, optimize_statement
from repro.physical.plan import ChoosePlanNode, PlanNode
from repro.qa.generator import (
    PROFILE_SCHEDULE,
    CaseGenerator,
    FuzzCase,
    GenerationProfile,
)
from repro.query.parser import parse_statement
from repro.runtime.chooser import resolve_plan

#: Consecutive no-new-shape cases before the guided loop mutates the
#: generator's catalog/data state (advances the profile schedule).
EVOLVE_AFTER = 6

#: Anti-starvation budget: a stage rich enough to keep producing new
#: shapes never goes stale, which would starve every later stage.  After
#: this many cases in one stage the guided loop advances regardless.
STAGE_BUDGET = 40

#: Optimizer-sweep dimensions every case contributes to (the harness adds
#: ``batch`` / ``row`` for cases whose executor differentials actually ran).
SWEEP_DIMENSIONS = ("static", "dynamic", "run-time", "activated", "dop1", "dop4")

_NUMERAL = re.compile(r"\b\d+(?:\.\d+)?\b")

#: Plans deeper than this all land in one depth bucket: beyond it, extra
#: depth is more of the same join spine, not a new shape family.
DEPTH_CAP = 4


def _operator_kind(label: str) -> str:
    """The operator-kind token of a node label.

    Numerals are erased first so ``Top-3`` and ``Top-7`` share the kind
    ``Top-#``; then everything after the first space — relation names,
    key attributes, predicate text — is dropped.  ``Filter-B-tree-Scan``
    stays distinct from ``B-tree-Scan`` and ``File-Scan``, the join
    algorithms stay distinct from each other, and the compound operators
    (``Semi-Join``, ``Left-Outer-Join``, ``Union-All``, ``Distinct``)
    and run-time operators (``Choose-Plan``, ``Exchange``) each keep
    their own kind.
    """
    return _NUMERAL.sub("#", label).split(" ", 1)[0]


def plan_shape(
    plan: PlanNode, choices: Mapping[int, PlanNode] | None = None
) -> tuple[tuple[str, ...], int]:
    """The raw shape feature pair: (sorted operator-kind set, depth).

    With ``choices`` the walk covers the *effective* plan — each
    choose-plan node is traversed only through its chosen alternative,
    matching the "components that have been used" notion the run-time
    chooser exposes — so an activated plan never contributes the
    ``Choose-Plan`` kind.  Without choices the full dynamic plan is
    walked, alternatives and all, so a dynamic plan's shape differs from
    every one of its resolutions.
    """
    kinds: set[str] = set()

    def walk(node: PlanNode, depth: int) -> int:
        if choices is not None and isinstance(node, ChoosePlanNode):
            return walk(choices[id(node)], depth)
        kinds.add(_operator_kind(node.label))
        deepest = depth
        for child in getattr(node, "inputs", ()):
            deepest = max(deepest, walk(child, depth + 1))
        return deepest

    deepest = walk(plan, 1)
    return tuple(sorted(kinds)), min(deepest, DEPTH_CAP)


def plan_fingerprint(
    plan: PlanNode, choices: Mapping[int, PlanNode] | None = None
) -> str:
    """Shape fingerprint of ``plan`` (12 hex digits, blake2b).

    Digest of :func:`plan_shape` — a bounded feature summary, not an
    injective tree hash; see the module docstring for why.
    """
    kinds, depth = plan_shape(plan, choices)
    digest = blake2b(
        "|".join((*kinds, f"depth={depth}")).encode(), digest_size=6
    )
    return digest.hexdigest()


class CoverageMap:
    """Distinct plan-shape fingerprints, bucketed per dimension."""

    def __init__(self) -> None:
        self._shapes: dict[str, set[str]] = {}

    def record(self, dimension: str, fingerprint: str) -> bool:
        """Record one shape; return True when it was new in its dimension."""
        bucket = self._shapes.setdefault(dimension, set())
        if fingerprint in bucket:
            return False
        bucket.add(fingerprint)
        return True

    def record_case(self, shapes: Mapping[str, Iterable[str]]) -> int:
        """Record a case's shapes; return how many were new overall."""
        return sum(
            self.record(dimension, fingerprint)
            for dimension, fingerprints in shapes.items()
            for fingerprint in fingerprints
        )

    @property
    def distinct_shapes(self) -> int:
        """Distinct (dimension, fingerprint) pairs — the headline metric."""
        return sum(len(bucket) for bucket in self._shapes.values())

    @property
    def distinct_fingerprints(self) -> int:
        """Distinct fingerprints across all dimensions (union)."""
        union: set[str] = set()
        for bucket in self._shapes.values():
            union |= bucket
        return len(union)

    def by_dimension(self) -> dict[str, int]:
        return {
            dimension: len(bucket)
            for dimension, bucket in sorted(self._shapes.items())
        }

    def to_json(self) -> dict:
        return {
            "version": 1,
            "distinct_shapes": self.distinct_shapes,
            "distinct_fingerprints": self.distinct_fingerprints,
            "dimensions": {
                dimension: sorted(bucket)
                for dimension, bucket in sorted(self._shapes.items())
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "CoverageMap":
        coverage = cls()
        for dimension, fingerprints in payload.get("dimensions", {}).items():
            for fingerprint in fingerprints:
                coverage.record(dimension, fingerprint)
        return coverage


def collect_case_shapes(
    case: FuzzCase, model: CostModel | None = None
) -> dict[str, list[str]]:
    """Resolve-only optimizer sweep: the case's shape in every dimension.

    No plan is executed — the sweep parses, optimizes in all three modes,
    and resolves the dynamic plan's choose-plan decisions under the
    case's derived true-selectivity binding (and again with DOP declared,
    bound to 1 and 4).  Cheap enough to run on every fuzz case.
    """
    from repro.cost.context import DOP_PARAMETER
    from repro.qa.invariants import derive_parameter_values

    model = model if model is not None else CostModel()
    catalog = case.build_catalog()
    db = Database(catalog, model)
    db.load_synthetic(case.data_seed)
    if case.analyze:
        db.analyze()

    statement = parse_statement(case.query.to_sql(), catalog).statement
    parameter_values = derive_parameter_values(case, statement, db)

    static = optimize_statement(
        statement, catalog, model, mode=OptimizationMode.STATIC
    )
    dynamic = optimize_statement(
        statement, catalog, model, mode=OptimizationMode.DYNAMIC
    )
    runtime = optimize_statement(
        statement,
        catalog,
        model,
        mode=OptimizationMode.RUN_TIME,
        binding=parameter_values,
    )
    bound = statement.parameters.bind(parameter_values)
    decision = resolve_plan(dynamic.plan, dynamic.ctx.with_env(bound))

    shapes: dict[str, list[str]] = {
        "static": [plan_fingerprint(static.plan)],
        "dynamic": [plan_fingerprint(dynamic.plan)],
        "run-time": [plan_fingerprint(runtime.plan)],
        "activated": [plan_fingerprint(dynamic.plan, decision.choices)],
    }

    parallel_statement = parse_statement(case.query.to_sql(), catalog).statement
    parallel_statement.parameters.add_dop(high=4)
    parallel: StatementResult = optimize_statement(
        parallel_statement, catalog, model, mode=OptimizationMode.DYNAMIC
    )
    for dop in (1, 4):
        binding = {**parameter_values, DOP_PARAMETER: float(dop)}
        env = parallel_statement.parameters.bind(binding)
        dop_decision = resolve_plan(parallel.plan, parallel.ctx.with_env(env))
        shapes[f"dop{dop}"] = [
            plan_fingerprint(parallel.plan, dop_decision.choices)
        ]
    return shapes


@dataclass
class SweepResult:
    """Outcome of one :func:`coverage_sweep`."""

    coverage: CoverageMap
    cases: int
    guided: bool
    profile_advances: int = 0
    profile_names: list[str] = field(default_factory=list)
    new_shape_cases: int = 0

    def to_json(self) -> dict:
        payload = self.coverage.to_json()
        payload.update(
            {
                "cases": self.cases,
                "guided": self.guided,
                "profile_advances": self.profile_advances,
                "profiles": self.profile_names,
                "new_shape_cases": self.new_shape_cases,
                "by_dimension": self.coverage.by_dimension(),
            }
        )
        return payload


def coverage_sweep(
    seed: str,
    cases: int,
    guided: bool = True,
    model: CostModel | None = None,
    evolve_after: int = EVOLVE_AFTER,
    stage_budget: int = STAGE_BUDGET,
    coverage: CoverageMap | None = None,
    on_case: Callable[[int, FuzzCase, int], None] | None = None,
) -> SweepResult:
    """Run ``cases`` generated cases through the resolve-only shape sweep.

    ``guided=True`` runs the QPG-style corpus-evolution loop: after
    ``evolve_after`` consecutive cases with no new shape — or after
    ``stage_budget`` cases in one stage, whichever comes first — the
    generator state mutates to the next :data:`PROFILE_SCHEDULE` stage
    (the RNG stream continues uninterrupted, so guided and blind sweeps
    see the same draws until the first mutation).  ``guided=False`` pins
    the default profile for the whole run — the blind baseline the
    acceptance benchmark compares against.

    ``on_case(index, case, newly_covered)`` is invoked after each case,
    letting the harness interleave invariant checking with coverage
    accounting without a second generation pass.
    """
    model = model if model is not None else CostModel()
    coverage = coverage if coverage is not None else CoverageMap()
    schedule = PROFILE_SCHEDULE if guided else (GenerationProfile(),)
    stage = 0
    generator = CaseGenerator(seed, profile=schedule[stage])
    result = SweepResult(coverage=coverage, cases=cases, guided=guided)
    result.profile_names.append(schedule[stage].name)
    stale = 0
    in_stage = 0
    for index in range(cases):
        case = generator.draw_case()
        in_stage += 1
        try:
            shapes = collect_case_shapes(case, model)
        except Exception:
            # A case the optimizer rejects contributes no shapes; the
            # invariant harness (not the sweep) is where crashes are
            # findings.  Still counts toward staleness so a profile that
            # only produces failures cannot stall the loop.
            shapes = {}
        newly = coverage.record_case(shapes)
        if newly:
            result.new_shape_cases += 1
            stale = 0
        else:
            stale += 1
        exhausted = stale >= evolve_after or in_stage >= stage_budget
        if guided and exhausted and stage + 1 < len(schedule):
            stage += 1
            generator.profile = schedule[stage]
            result.profile_advances += 1
            result.profile_names.append(schedule[stage].name)
            stale = 0
            in_stage = 0
        if on_case is not None:
            on_case(index, case, newly)
    return result


def write_coverage_report(path: Path, result: SweepResult) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result.to_json(), indent=2) + "\n")


def load_baseline(path: Path) -> int:
    """Distinct-shape floor from a checked-in baseline file."""
    payload = json.loads(path.read_text())
    return int(payload["distinct_shapes"])
