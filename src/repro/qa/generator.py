"""Seeded random generator of catalogs, data seeds, and queries.

Every case carries *two* descriptions of the same query: the SQL text fed
to :func:`repro.query.parser.parse_query`, and a specification precise
enough to rebuild the expected :class:`~repro.logical.query.QueryGraph`
directly through the logical-layer constructors.  Comparing the two puts
the parser itself under differential test, not just the optimizer.

Generation is bounded to the engine's documented envelope: conjunctive
equijoin queries over at most six relations, integer literals, host
variables with derived selectivities, optional GROUP BY/aggregates, and a
single ORDER BY attribute.  Join graphs are always connected (a spanning
tree plus occasional extra edges) because the search engine does not
enumerate cross products.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute
from repro.logical.aggregates import (
    AggregateExpr,
    AggregateFunction,
    AggregateSpec,
)
from repro.logical.predicates import (
    CompareOp,
    HostVariable,
    JoinPredicate,
    Literal,
    SelectionPredicate,
)
from repro.logical.query import QueryGraph
from repro.params.parameter import ParameterSpace

# The parser's default expected selectivity for host variables.
DEFAULT_SELECTIVITY = 0.05

_OP_SYMBOLS = {
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}

_ATTRIBUTE_NAMES = ("a", "b", "c")

# How many relations a query references, weighted toward small queries so
# the oracle and the dynamic-mode search stay fast enough for CI smoke runs.
_RELATION_COUNT_WEIGHTS = ((1, 30), (2, 30), (3, 20), (4, 10), (5, 6), (6, 4))


@dataclass(frozen=True)
class RelationSpec:
    """One stored relation: schema, size, indexes, and unary keys."""

    name: str
    attributes: tuple[tuple[str, int], ...]  # (attribute name, domain size)
    cardinality: int
    indexes: tuple[tuple[str, bool], ...] = ()  # (attribute name, clustered)
    unique: tuple[str, ...] = ()  # declared unary keys (attribute names)

    def to_json(self) -> dict:
        payload = {
            "name": self.name,
            "attributes": [list(a) for a in self.attributes],
            "cardinality": self.cardinality,
            "indexes": [list(ix) for ix in self.indexes],
        }
        if self.unique:
            payload["unique"] = list(self.unique)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "RelationSpec":
        return cls(
            name=payload["name"],
            attributes=tuple((a[0], a[1]) for a in payload["attributes"]),
            cardinality=payload["cardinality"],
            indexes=tuple((ix[0], bool(ix[1])) for ix in payload["indexes"]),
            unique=tuple(payload.get("unique", ())),
        )


@dataclass(frozen=True)
class PredicateSpec:
    """One selection predicate: ``attribute op (literal | :host)``."""

    attribute: str  # qualified name, e.g. "R1.a"
    op: str  # symbol, e.g. "<="
    literal: int | None = None
    host: str | None = None  # host-variable name, exclusive with literal

    def __post_init__(self) -> None:
        if (self.literal is None) == (self.host is None):
            raise ValueError("predicate needs exactly one of literal/host")

    @property
    def relation(self) -> str:
        return self.attribute.partition(".")[0]

    def to_sql(self) -> str:
        operand = f":{self.host}" if self.host is not None else str(self.literal)
        return f"{self.attribute} {self.op} {operand}"

    def to_json(self) -> dict:
        return {
            "attribute": self.attribute,
            "op": self.op,
            "literal": self.literal,
            "host": self.host,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PredicateSpec":
        return cls(
            attribute=payload["attribute"],
            op=payload["op"],
            literal=payload["literal"],
            host=payload["host"],
        )


@dataclass(frozen=True)
class JoinSpec:
    """One equijoin predicate ``left = right`` (qualified names)."""

    left: str
    right: str

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(
            (self.left.partition(".")[0], self.right.partition(".")[0])
        )

    def to_sql(self) -> str:
        return f"{self.left} = {self.right}"

    def to_json(self) -> dict:
        return {"left": self.left, "right": self.right}

    @classmethod
    def from_json(cls, payload: dict) -> "JoinSpec":
        return cls(left=payload["left"], right=payload["right"])


@dataclass(frozen=True)
class SemiJoinSpec:
    """One IN/EXISTS subquery: ``outer_attr (IN|EXISTS) inner relation``."""

    outer_attr: str  # qualified name in the branch's FROM list
    inner_relation: str
    inner_attr: str  # qualified name in inner_relation
    selections: tuple[PredicateSpec, ...] = ()  # on inner_relation only
    style: str = "in"  # "in" | "exists"

    def to_sql(self) -> str:
        if self.style == "exists":
            conditions = [f"{self.inner_attr} = {self.outer_attr}"]
            conditions += [p.to_sql() for p in self.selections]
            return f"EXISTS (SELECT * FROM {self.inner_relation} WHERE " + (
                " AND ".join(conditions) + ")"
            )
        body = f"SELECT {self.inner_attr} FROM {self.inner_relation}"
        if self.selections:
            body += " WHERE " + " AND ".join(p.to_sql() for p in self.selections)
        return f"{self.outer_attr} IN ({body})"

    def to_json(self) -> dict:
        return {
            "outer_attr": self.outer_attr,
            "inner_relation": self.inner_relation,
            "inner_attr": self.inner_attr,
            "selections": [p.to_json() for p in self.selections],
            "style": self.style,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SemiJoinSpec":
        return cls(
            outer_attr=payload["outer_attr"],
            inner_relation=payload["inner_relation"],
            inner_attr=payload["inner_attr"],
            selections=tuple(
                PredicateSpec.from_json(p) for p in payload["selections"]
            ),
            style=payload["style"],
        )


@dataclass(frozen=True)
class OuterJoinSpec:
    """A trailing ``LEFT OUTER JOIN right ON left_attr = right_attr``."""

    left_attr: str  # qualified name in the branch's FROM list
    right_relation: str
    right_attr: str  # qualified name in right_relation

    def to_sql(self) -> str:
        return (
            f"LEFT OUTER JOIN {self.right_relation} "
            f"ON {self.left_attr} = {self.right_attr}"
        )

    def to_json(self) -> dict:
        return {
            "left_attr": self.left_attr,
            "right_relation": self.right_relation,
            "right_attr": self.right_attr,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "OuterJoinSpec":
        return cls(
            left_attr=payload["left_attr"],
            right_relation=payload["right_relation"],
            right_attr=payload["right_attr"],
        )


@dataclass(frozen=True)
class AggregateItemSpec:
    """One aggregate select item; ``attribute`` None means COUNT(*)."""

    function: str  # AggregateFunction value, e.g. "count"
    attribute: str | None = None

    def to_sql(self) -> str:
        operand = "*" if self.attribute is None else self.attribute
        return f"{self.function.upper()}({operand})"

    def to_json(self) -> dict:
        return {"function": self.function, "attribute": self.attribute}

    @classmethod
    def from_json(cls, payload: dict) -> "AggregateItemSpec":
        return cls(function=payload["function"], attribute=payload["attribute"])


@dataclass(frozen=True)
class QuerySpec:
    """A complete statement in generator terms; renders to SQL on demand.

    A plain SPJ(+aggregate) query uses only the first seven fields — the
    legacy shape.  ``semijoins``/``outer`` extend this (first) branch with
    IN/EXISTS subqueries and a trailing LEFT OUTER JOIN; ``branches``
    holds *additional* UNION branches (each itself a plain QuerySpec with
    an explicit projection); ``union_all`` selects UNION ALL vs UNION.
    ``order_by`` always belongs to the whole statement.
    """

    relations: tuple[str, ...]
    selections: tuple[PredicateSpec, ...] = ()
    joins: tuple[JoinSpec, ...] = ()
    projection: tuple[str, ...] | None = None  # None means SELECT *
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateItemSpec, ...] = ()
    order_by: str | None = None
    semijoins: tuple[SemiJoinSpec, ...] = ()
    outer: OuterJoinSpec | None = None
    branches: tuple["QuerySpec", ...] = ()  # extra UNION branches
    union_all: bool = True

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates)

    @property
    def is_compound(self) -> bool:
        """True when the statement uses any beyond-SPJ grammar."""
        return bool(self.semijoins) or self.outer is not None or bool(
            self.branches
        )

    def all_branches(self) -> tuple["QuerySpec", ...]:
        """This spec as branch 0 followed by the extra UNION branches."""
        return (self,) + self.branches

    def output_relations_for_star(self) -> tuple[str, ...]:
        """Relations whose schemas a ``SELECT *`` branch outputs, in order
        (the FROM list, plus the outer-joined relation's padded columns)."""
        relations = self.relations
        if self.outer is not None:
            relations += (self.outer.right_relation,)
        return relations

    def _branch_sql(self) -> str:
        """One SELECT block (no ORDER BY; that is statement-level)."""
        if self.aggregates:
            items = list(self.group_by) + [a.to_sql() for a in self.aggregates]
            select = ", ".join(items)
        elif self.projection is not None:
            select = ", ".join(self.projection)
        else:
            select = "*"
        parts = [f"SELECT {select}", "FROM " + ", ".join(self.relations)]
        if self.outer is not None:
            parts.append(self.outer.to_sql())
        conditions = [p.to_sql() for p in self.selections]
        conditions += [j.to_sql() for j in self.joins]
        conditions += [s.to_sql() for s in self.semijoins]
        if conditions:
            parts.append("WHERE " + " AND ".join(conditions))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        return " ".join(parts)

    def to_sql(self) -> str:
        glue = " UNION ALL " if self.union_all else " UNION "
        text = glue.join(b._branch_sql() for b in self.all_branches())
        if self.order_by is not None:
            text += f" ORDER BY {self.order_by}"
        return text

    def host_predicates(self) -> tuple[PredicateSpec, ...]:
        """Host-variable predicates in SQL (WHERE-clause) order, all
        branches and subqueries included."""
        out: list[PredicateSpec] = []
        for branch in self.all_branches():
            out.extend(p for p in branch.selections if p.host is not None)
            for semijoin in branch.semijoins:
                out.extend(
                    p for p in semijoin.selections if p.host is not None
                )
        return tuple(out)

    def referenced_relations(self) -> tuple[str, ...]:
        """Every relation any branch reads, first occurrence order."""
        seen: list[str] = []
        for branch in self.all_branches():
            for name in branch.relations:
                if name not in seen:
                    seen.append(name)
            for semijoin in branch.semijoins:
                if semijoin.inner_relation not in seen:
                    seen.append(semijoin.inner_relation)
            if branch.outer is not None:
                if branch.outer.right_relation not in seen:
                    seen.append(branch.outer.right_relation)
        return tuple(seen)

    def to_json(self) -> dict:
        payload = {
            "relations": list(self.relations),
            "selections": [p.to_json() for p in self.selections],
            "joins": [j.to_json() for j in self.joins],
            "projection": (
                None if self.projection is None else list(self.projection)
            ),
            "group_by": list(self.group_by),
            "aggregates": [a.to_json() for a in self.aggregates],
            "order_by": self.order_by,
        }
        if self.semijoins:
            payload["semijoins"] = [s.to_json() for s in self.semijoins]
        if self.outer is not None:
            payload["outer"] = self.outer.to_json()
        if self.branches:
            payload["branches"] = [b.to_json() for b in self.branches]
            payload["union_all"] = self.union_all
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "QuerySpec":
        projection = payload["projection"]
        return cls(
            relations=tuple(payload["relations"]),
            selections=tuple(
                PredicateSpec.from_json(p) for p in payload["selections"]
            ),
            joins=tuple(JoinSpec.from_json(j) for j in payload["joins"]),
            projection=None if projection is None else tuple(projection),
            group_by=tuple(payload["group_by"]),
            aggregates=tuple(
                AggregateItemSpec.from_json(a) for a in payload["aggregates"]
            ),
            order_by=payload["order_by"],
            semijoins=tuple(
                SemiJoinSpec.from_json(s)
                for s in payload.get("semijoins", ())
            ),
            outer=(
                OuterJoinSpec.from_json(payload["outer"])
                if payload.get("outer") is not None
                else None
            ),
            branches=tuple(
                QuerySpec.from_json(b) for b in payload.get("branches", ())
            ),
            union_all=bool(payload.get("union_all", True)),
        )


@dataclass(frozen=True)
class FuzzCase:
    """One self-contained differential test case.

    Everything needed to replay the case is here: the catalog (as relation
    specs), the synthetic-data seed, the query, and the host-variable value
    bindings.  ``analyze`` controls whether equi-depth histograms are built
    before optimizing (they change literal-predicate estimates).
    """

    seed: str
    relations: tuple[RelationSpec, ...]
    data_seed: int
    query: QuerySpec
    bindings: dict[str, int] = field(default_factory=dict)
    analyze: bool = False

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def build_catalog(self) -> Catalog:
        """A fresh catalog holding exactly the case's relations."""
        catalog = Catalog()
        for spec in self.relations:
            catalog.add_relation(
                spec.name, list(spec.attributes), cardinality=spec.cardinality
            )
            for attr_name, clustered in spec.indexes:
                catalog.create_index(
                    f"ix_{spec.name}_{attr_name}",
                    spec.name,
                    attr_name,
                    clustered=clustered,
                )
            for attr_name in spec.unique:
                catalog.declare_unique(f"{spec.name}.{attr_name}")
        return catalog

    def expected_graph(self, catalog: Catalog) -> QueryGraph:
        """The query graph the parser *should* produce for ``to_sql()``.

        Only defined for simple (non-compound) statements; compound ones
        are diffed whole via :meth:`expected_statement`.
        """
        return self.expected_statement(catalog).branches[0].graph

    def expected_statement(self, catalog: Catalog) -> Statement:
        """The statement the parser *should* produce for ``to_sql()``."""
        from repro.logical.statement import (
            OuterJoin,
            SemiJoin,
            Statement,
            StatementBranch,
        )

        query = self.query
        space = ParameterSpace()
        compound = query.is_compound

        def predicate(spec: PredicateSpec) -> SelectionPredicate:
            attribute = catalog.attribute(spec.attribute)
            op = _OP_SYMBOLS[spec.op]
            if spec.host is not None:
                parameter = f"sel:{spec.host}"
                if parameter not in space:
                    space.add_selectivity(
                        parameter, expected=DEFAULT_SELECTIVITY
                    )
                operand: Literal | HostVariable = HostVariable(
                    spec.host, parameter
                )
            else:
                operand = Literal(spec.literal)
            return SelectionPredicate(attribute, op, operand)

        branches: list[StatementBranch] = []
        for branch in query.all_branches():
            selections: dict[str, list[SelectionPredicate]] = {}
            for spec in branch.selections:
                selections.setdefault(spec.relation, []).append(
                    predicate(spec)
                )
            joins = tuple(
                JoinPredicate(
                    catalog.attribute(j.left), catalog.attribute(j.right)
                )
                for j in branch.joins
            )
            semijoins = tuple(
                SemiJoin(
                    outer_attr=catalog.attribute(s.outer_attr),
                    inner_relation=s.inner_relation,
                    inner_attr=catalog.attribute(s.inner_attr),
                    selections=tuple(predicate(p) for p in s.selections),
                    style=s.style,
                )
                for s in branch.semijoins
            )
            outer = None
            if branch.outer is not None:
                outer = OuterJoin(
                    left_attr=catalog.attribute(branch.outer.left_attr),
                    right_relation=branch.outer.right_relation,
                    right_attr=catalog.attribute(branch.outer.right_attr),
                )
            projection: tuple[Attribute, ...] | None = None
            if branch.projection is not None:
                projection = tuple(
                    catalog.attribute(name) for name in branch.projection
                )
            if compound:
                graph = QueryGraph(
                    relations=branch.relations,
                    selections={r: tuple(p) for r, p in selections.items()},
                    joins=joins,
                    parameters=space,
                )
                branches.append(
                    StatementBranch(
                        graph=graph,
                        semijoins=semijoins,
                        outer=outer,
                        projection=projection,
                    )
                )
                continue
            aggregate = None
            if branch.aggregates:
                aggregate = AggregateSpec(
                    group_by=tuple(
                        catalog.attribute(name) for name in branch.group_by
                    ),
                    aggregates=tuple(
                        AggregateExpr(
                            AggregateFunction(item.function),
                            None
                            if item.attribute is None
                            else catalog.attribute(item.attribute),
                        )
                        for item in branch.aggregates
                    ),
                )
            graph = QueryGraph(
                relations=branch.relations,
                selections={r: tuple(p) for r, p in selections.items()},
                joins=joins,
                parameters=space,
                projection=None if aggregate is not None else projection,
                aggregate=aggregate,
            )
            branches.append(StatementBranch(graph=graph))
        return Statement(
            branches=tuple(branches),
            union_all=query.union_all,
            parameters=space,
            order_by=(
                None
                if query.order_by is None
                else catalog.attribute(query.order_by)
            ),
        )

    def expected_order_by(self, catalog: Catalog) -> Attribute | None:
        if self.query.order_by is None:
            return None
        return catalog.attribute(self.query.order_by)

    def parameter_names(self) -> list[str]:
        """Selectivity-parameter names in WHERE-clause order, deduplicated."""
        names: list[str] = []
        for predicate in self.query.host_predicates():
            name = f"sel:{predicate.host}"
            if name not in names:
                names.append(name)
        return names

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        # Version 2 marks the expanded grammar (UNION / outer joins /
        # subqueries / unary keys); plain SPJ cases keep the v1 stamp so
        # older readers keep loading them.
        uses_v2 = self.query.is_compound or any(
            spec.unique for spec in self.relations
        )
        return {
            "version": 2 if uses_v2 else 1,
            "seed": self.seed,
            "relations": [r.to_json() for r in self.relations],
            "data_seed": self.data_seed,
            "query": self.query.to_json(),
            "bindings": dict(self.bindings),
            "analyze": self.analyze,
            "sql": self.query.to_sql(),  # informational; regenerated on load
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FuzzCase":
        return cls(
            seed=str(payload["seed"]),
            relations=tuple(
                RelationSpec.from_json(r) for r in payload["relations"]
            ),
            data_seed=payload["data_seed"],
            query=QuerySpec.from_json(payload["query"]),
            bindings={k: v for k, v in payload["bindings"].items()},
            analyze=bool(payload["analyze"]),
        )

    def with_query(self, query: QuerySpec) -> "FuzzCase":
        return replace(self, query=query)


@dataclass(frozen=True)
class GenerationProfile:
    """Probabilities and scale factors steering one generation regime.

    The default profile reproduces the legacy generator bit-for-bit: every
    new grammar draw is guarded by ``probability > 0`` *before* consuming
    the PRNG, so a zero probability leaves the random stream untouched and
    old seeds regenerate their old cases exactly.  The coverage-guided
    harness advances through :data:`PROFILE_SCHEDULE` when case generation
    stops discovering new plan shapes (QPG-style corpus evolution).
    """

    name: str = "default"
    union_probability: float = 0.0
    outer_probability: float = 0.0
    semijoin_probability: float = 0.0
    unique_probability: float = 0.0
    index_probability: float = 0.5
    cardinality_scale: float = 1.0
    analyze_probability: float = 0.5

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "union_probability": self.union_probability,
            "outer_probability": self.outer_probability,
            "semijoin_probability": self.semijoin_probability,
            "unique_probability": self.unique_probability,
            "index_probability": self.index_probability,
            "cardinality_scale": self.cardinality_scale,
            "analyze_probability": self.analyze_probability,
        }


#: Corpus-evolution schedule: each stage mutates the catalog/data regime
#: (statistics, index density, relation growth) or unlocks grammar the
#: earlier stages never draw, so a stuck coverage map has new shapes to
#: find.  Ordered from the legacy regime to everything-on.
PROFILE_SCHEDULE: tuple[GenerationProfile, ...] = (
    GenerationProfile(name="default"),
    GenerationProfile(name="union", union_probability=0.6),
    GenerationProfile(
        name="outer-unique",
        union_probability=0.25,
        outer_probability=0.6,
        unique_probability=0.6,
    ),
    GenerationProfile(
        name="semijoin",
        union_probability=0.2,
        outer_probability=0.25,
        semijoin_probability=0.6,
        unique_probability=0.4,
    ),
    GenerationProfile(
        name="index-skew",
        union_probability=0.25,
        outer_probability=0.25,
        semijoin_probability=0.25,
        unique_probability=0.4,
        index_probability=0.9,
        analyze_probability=1.0,
    ),
    GenerationProfile(
        name="growth",
        union_probability=0.25,
        outer_probability=0.25,
        semijoin_probability=0.25,
        unique_probability=0.4,
        index_probability=0.2,
        cardinality_scale=2.5,
    ),
    GenerationProfile(
        name="all",
        union_probability=0.4,
        outer_probability=0.4,
        semijoin_probability=0.4,
        unique_probability=0.5,
        index_probability=0.7,
        cardinality_scale=1.5,
        analyze_probability=0.7,
    ),
)


class CaseGenerator:
    """Draws :class:`FuzzCase` instances from a seeded PRNG."""

    def __init__(
        self, seed: str, profile: GenerationProfile | None = None
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.profile = profile if profile is not None else GenerationProfile()

    # ------------------------------------------------------------------
    # Schema / catalog
    # ------------------------------------------------------------------
    def _draw_relation_spec(self, name: str) -> RelationSpec:
        rng = self.rng
        profile = self.profile
        n_attrs = rng.randint(2, 3)
        attributes = tuple(
            (attr, rng.randint(2, 50)) for attr in _ATTRIBUTE_NAMES[:n_attrs]
        )
        clustered_used = False
        indexes: list[tuple[str, bool]] = []
        for attr, _domain in attributes:
            if rng.random() < profile.index_probability:
                clustered = not clustered_used and rng.random() < 0.2
                clustered_used = clustered_used or clustered
                indexes.append((attr, clustered))
        cardinality = rng.randint(4, 40)
        if profile.cardinality_scale != 1.0:
            cardinality = max(1, int(cardinality * profile.cardinality_scale))
        unique: tuple[str, ...] = ()
        if (
            profile.unique_probability > 0
            and rng.random() < profile.unique_probability
        ):
            attr, domain = rng.choice(attributes)
            if domain < cardinality:
                # Unique columns sample their domain without replacement,
                # so the domain must hold at least one value per row.
                attributes = tuple(
                    (a, cardinality if a == attr else d)
                    for a, d in attributes
                )
            unique = (attr,)
        return RelationSpec(
            name=name,
            attributes=attributes,
            cardinality=cardinality,
            indexes=tuple(indexes),
            unique=unique,
        )

    def _draw_relations(self, count: int) -> list[RelationSpec]:
        rng = self.rng
        names = [f"R{i + 1}" for i in range(count)]
        if rng.random() < 0.2:
            names.append("X1")  # distractor: in the catalog, not the query
        return [self._draw_relation_spec(name) for name in names]

    def _attributes_of(
        self, specs: list[RelationSpec], relations: tuple[str, ...]
    ) -> list[tuple[str, int]]:
        """(qualified name, domain size) for every query-visible attribute."""
        by_name = {s.name: s for s in specs}
        out: list[tuple[str, int]] = []
        for relation in relations:
            for attr, domain in by_name[relation].attributes:
                out.append((f"{relation}.{attr}", domain))
        return out

    # ------------------------------------------------------------------
    # Query shape
    # ------------------------------------------------------------------
    def _draw_joins(
        self, specs: list[RelationSpec], relations: tuple[str, ...]
    ) -> tuple[JoinSpec, ...]:
        rng = self.rng
        by_name = {s.name: s for s in specs}

        def random_attr(relation: str) -> str:
            attr, _ = rng.choice(by_name[relation].attributes)
            return f"{relation}.{attr}"

        joins: list[JoinSpec] = []
        for i in range(1, len(relations)):
            partner = relations[rng.randrange(i)]
            joins.append(
                JoinSpec(random_attr(partner), random_attr(relations[i]))
            )
        if len(relations) >= 3 and rng.random() < 0.25:
            left_rel, right_rel = rng.sample(relations, 2)
            extra = JoinSpec(random_attr(left_rel), random_attr(right_rel))
            pairs = {frozenset((j.left, j.right)) for j in joins}
            if frozenset((extra.left, extra.right)) not in pairs:
                joins.append(extra)
        return tuple(joins)

    def _draw_selections(
        self,
        attributes: list[tuple[str, int]],
        host_counter: list[int],
    ) -> tuple[PredicateSpec, ...]:
        rng = self.rng
        count = rng.choices((0, 1, 2, 3), weights=(20, 35, 30, 15))[0]
        selections: list[PredicateSpec] = []
        for _ in range(count):
            qualified, domain = rng.choice(attributes)
            op = rng.choices(
                ("<", "<=", ">", ">=", "=", "<>"),
                weights=(25, 25, 20, 20, 7, 3),
            )[0]
            if rng.random() < 0.45:
                name = f"v{host_counter[0]}"
                host_counter[0] += 1
                selections.append(PredicateSpec(qualified, op, host=name))
            else:
                selections.append(
                    PredicateSpec(
                        qualified, op, literal=rng.randint(0, domain)
                    )
                )
        return tuple(selections)

    def _draw_aggregate(
        self, attributes: list[tuple[str, int]]
    ) -> tuple[tuple[str, ...], tuple[AggregateItemSpec, ...], str | None]:
        rng = self.rng
        n_group = rng.choices((0, 1, 2), weights=(30, 50, 20))[0]
        n_group = min(n_group, len(attributes))
        group_by = tuple(
            name for name, _ in rng.sample(attributes, n_group)
        )
        functions = ("count", "sum", "min", "max", "avg")
        items: list[AggregateItemSpec] = []
        for _ in range(rng.randint(1, 2)):
            function = rng.choice(functions)
            if function == "count" and rng.random() < 0.6:
                item = AggregateItemSpec("count", None)
            else:
                name, _ = rng.choice(attributes)
                item = AggregateItemSpec(function, name)
            if item not in items:  # the engine rejects duplicate aggregates
                items.append(item)
        order_by = None
        if group_by and rng.random() < 0.3:
            order_by = rng.choice(group_by)
        return group_by, tuple(items), order_by

    # ------------------------------------------------------------------
    # Compound grammar (all draws guarded: zero probability => no PRNG use)
    # ------------------------------------------------------------------
    def _draw_semijoin(
        self,
        specs: list[RelationSpec],
        attributes: list[tuple[str, int]],
        host_counter: list[int],
        index: int,
    ) -> SemiJoinSpec:
        rng = self.rng
        inner = self._draw_relation_spec(f"S{index}")
        specs.append(inner)
        outer_attr, _ = rng.choice(attributes)
        inner_attr, _ = rng.choice(inner.attributes)
        selections: list[PredicateSpec] = []
        if rng.random() < 0.5:
            attr, domain = rng.choice(inner.attributes)
            op = rng.choice(("<", "<=", ">", ">="))
            qualified = f"{inner.name}.{attr}"
            if rng.random() < 0.4:
                name = f"v{host_counter[0]}"
                host_counter[0] += 1
                selections.append(PredicateSpec(qualified, op, host=name))
            else:
                selections.append(
                    PredicateSpec(qualified, op, literal=rng.randint(0, domain))
                )
        return SemiJoinSpec(
            outer_attr=outer_attr,
            inner_relation=inner.name,
            inner_attr=f"{inner.name}.{inner_attr}",
            selections=tuple(selections),
            style=rng.choice(("in", "exists")),
        )

    def _draw_outer(
        self,
        specs: list[RelationSpec],
        attributes: list[tuple[str, int]],
    ) -> OuterJoinSpec:
        rng = self.rng
        right = self._draw_relation_spec("T1")
        specs.append(right)
        left_attr, _ = rng.choice(attributes)
        if right.unique:
            # Prefer the unary key so the tightened (exact) left-outer
            # cardinality bound gets exercised.
            right_attr = right.unique[0]
        else:
            right_attr, _ = rng.choice(right.attributes)
        return OuterJoinSpec(
            left_attr=left_attr,
            right_relation=right.name,
            right_attr=f"{right.name}.{right_attr}",
        )

    def _draw_union_branch(
        self,
        specs: list[RelationSpec],
        relations: tuple[str, ...],
        arity: int,
        host_counter: list[int],
    ) -> QuerySpec:
        rng = self.rng
        n_relations = rng.randint(1, len(relations))
        branch_relations = relations[:n_relations]
        branch_attributes = self._attributes_of(specs, branch_relations)
        joins = self._draw_joins(specs, branch_relations)
        selections = self._draw_selections(branch_attributes, host_counter)
        projection = tuple(
            name for name, _ in rng.sample(branch_attributes, arity)
        )
        return QuerySpec(
            relations=branch_relations,
            selections=selections,
            joins=joins,
            projection=projection,
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def draw_case(self) -> FuzzCase:
        rng = self.rng
        profile = self.profile
        counts, weights = zip(*_RELATION_COUNT_WEIGHTS)
        n_relations = rng.choices(counts, weights=weights)[0]
        specs = self._draw_relations(n_relations)
        relations = tuple(f"R{i + 1}" for i in range(n_relations))
        attributes = self._attributes_of(specs, relations)

        joins = self._draw_joins(specs, relations)
        host_counter = [0]
        selections = self._draw_selections(attributes, host_counter)

        group_by: tuple[str, ...] = ()
        aggregates: tuple[AggregateItemSpec, ...] = ()
        projection: tuple[str, ...] | None = None
        order_by: str | None = None
        if rng.random() < 0.25:
            group_by, aggregates, order_by = self._draw_aggregate(attributes)
        else:
            if rng.random() < 0.5:
                n_proj = rng.randint(1, min(4, len(attributes)))
                projection = tuple(
                    name for name, _ in rng.sample(attributes, n_proj)
                )
            if rng.random() < 0.3:
                candidates = (
                    projection
                    if projection is not None
                    else tuple(name for name, _ in attributes)
                )
                order_by = rng.choice(candidates)

        # Compound grammar rides on top of a non-aggregate base.  Every
        # draw below is reached only when its profile probability is
        # positive, so the default profile's PRNG stream — and therefore
        # every legacy seed's case — is untouched.
        semijoins: tuple[SemiJoinSpec, ...] = ()
        outer: OuterJoinSpec | None = None
        branches: tuple[QuerySpec, ...] = ()
        union_all = True
        if not aggregates:
            if (
                profile.semijoin_probability > 0
                and rng.random() < profile.semijoin_probability
            ):
                count = 2 if rng.random() < 0.25 else 1
                semijoins = tuple(
                    self._draw_semijoin(
                        specs, attributes, host_counter, index + 1
                    )
                    for index in range(count)
                )
            if (
                profile.outer_probability > 0
                and rng.random() < profile.outer_probability
            ):
                outer = self._draw_outer(specs, attributes)
            if (
                profile.union_probability > 0
                and rng.random() < profile.union_probability
            ):
                arity = rng.randint(1, 2)
                projection = tuple(
                    name for name, _ in rng.sample(attributes, arity)
                )
                if order_by is not None and order_by not in projection:
                    order_by = None
                extra = 2 if rng.random() < 0.25 else 1
                branches = tuple(
                    self._draw_union_branch(
                        specs, relations, arity, host_counter
                    )
                    for _ in range(extra)
                )
                union_all = rng.random() < 0.6

        query = QuerySpec(
            relations=relations,
            selections=selections,
            joins=joins,
            projection=projection,
            group_by=group_by,
            aggregates=aggregates,
            order_by=order_by,
            semijoins=semijoins,
            outer=outer,
            branches=branches,
            union_all=union_all,
        )

        domains = {
            f"{spec.name}.{attr}": domain
            for spec in specs
            for attr, domain in spec.attributes
        }
        bindings: dict[str, int] = {}
        for predicate in query.host_predicates():
            domain = domains[predicate.attribute]
            bindings[predicate.host] = rng.randint(0, domain)

        return FuzzCase(
            seed=self.seed,
            relations=tuple(specs),
            data_seed=rng.getrandbits(32),
            query=query,
            bindings=bindings,
            analyze=rng.random() < profile.analyze_probability,
        )


def generate_case(seed: str) -> FuzzCase:
    """One deterministic case for ``seed`` (str seeds hash stably)."""
    return CaseGenerator(seed).draw_case()
