"""Seeded random generator of catalogs, data seeds, and queries.

Every case carries *two* descriptions of the same query: the SQL text fed
to :func:`repro.query.parser.parse_query`, and a specification precise
enough to rebuild the expected :class:`~repro.logical.query.QueryGraph`
directly through the logical-layer constructors.  Comparing the two puts
the parser itself under differential test, not just the optimizer.

Generation is bounded to the engine's documented envelope: conjunctive
equijoin queries over at most six relations, integer literals, host
variables with derived selectivities, optional GROUP BY/aggregates, and a
single ORDER BY attribute.  Join graphs are always connected (a spanning
tree plus occasional extra edges) because the search engine does not
enumerate cross products.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute
from repro.logical.aggregates import (
    AggregateExpr,
    AggregateFunction,
    AggregateSpec,
)
from repro.logical.predicates import (
    CompareOp,
    HostVariable,
    JoinPredicate,
    Literal,
    SelectionPredicate,
)
from repro.logical.query import QueryGraph
from repro.params.parameter import ParameterSpace

# The parser's default expected selectivity for host variables.
DEFAULT_SELECTIVITY = 0.05

_OP_SYMBOLS = {
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}

_ATTRIBUTE_NAMES = ("a", "b", "c")

# How many relations a query references, weighted toward small queries so
# the oracle and the dynamic-mode search stay fast enough for CI smoke runs.
_RELATION_COUNT_WEIGHTS = ((1, 30), (2, 30), (3, 20), (4, 10), (5, 6), (6, 4))


@dataclass(frozen=True)
class RelationSpec:
    """One stored relation: schema, size, and indexed attributes."""

    name: str
    attributes: tuple[tuple[str, int], ...]  # (attribute name, domain size)
    cardinality: int
    indexes: tuple[tuple[str, bool], ...] = ()  # (attribute name, clustered)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "attributes": [list(a) for a in self.attributes],
            "cardinality": self.cardinality,
            "indexes": [list(ix) for ix in self.indexes],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RelationSpec":
        return cls(
            name=payload["name"],
            attributes=tuple((a[0], a[1]) for a in payload["attributes"]),
            cardinality=payload["cardinality"],
            indexes=tuple((ix[0], bool(ix[1])) for ix in payload["indexes"]),
        )


@dataclass(frozen=True)
class PredicateSpec:
    """One selection predicate: ``attribute op (literal | :host)``."""

    attribute: str  # qualified name, e.g. "R1.a"
    op: str  # symbol, e.g. "<="
    literal: int | None = None
    host: str | None = None  # host-variable name, exclusive with literal

    def __post_init__(self) -> None:
        if (self.literal is None) == (self.host is None):
            raise ValueError("predicate needs exactly one of literal/host")

    @property
    def relation(self) -> str:
        return self.attribute.partition(".")[0]

    def to_sql(self) -> str:
        operand = f":{self.host}" if self.host is not None else str(self.literal)
        return f"{self.attribute} {self.op} {operand}"

    def to_json(self) -> dict:
        return {
            "attribute": self.attribute,
            "op": self.op,
            "literal": self.literal,
            "host": self.host,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PredicateSpec":
        return cls(
            attribute=payload["attribute"],
            op=payload["op"],
            literal=payload["literal"],
            host=payload["host"],
        )


@dataclass(frozen=True)
class JoinSpec:
    """One equijoin predicate ``left = right`` (qualified names)."""

    left: str
    right: str

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(
            (self.left.partition(".")[0], self.right.partition(".")[0])
        )

    def to_sql(self) -> str:
        return f"{self.left} = {self.right}"

    def to_json(self) -> dict:
        return {"left": self.left, "right": self.right}

    @classmethod
    def from_json(cls, payload: dict) -> "JoinSpec":
        return cls(left=payload["left"], right=payload["right"])


@dataclass(frozen=True)
class AggregateItemSpec:
    """One aggregate select item; ``attribute`` None means COUNT(*)."""

    function: str  # AggregateFunction value, e.g. "count"
    attribute: str | None = None

    def to_sql(self) -> str:
        operand = "*" if self.attribute is None else self.attribute
        return f"{self.function.upper()}({operand})"

    def to_json(self) -> dict:
        return {"function": self.function, "attribute": self.attribute}

    @classmethod
    def from_json(cls, payload: dict) -> "AggregateItemSpec":
        return cls(function=payload["function"], attribute=payload["attribute"])


@dataclass(frozen=True)
class QuerySpec:
    """A complete query in generator terms; renders to SQL on demand."""

    relations: tuple[str, ...]
    selections: tuple[PredicateSpec, ...] = ()
    joins: tuple[JoinSpec, ...] = ()
    projection: tuple[str, ...] | None = None  # None means SELECT *
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateItemSpec, ...] = ()
    order_by: str | None = None

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates)

    def to_sql(self) -> str:
        if self.aggregates:
            items = list(self.group_by) + [a.to_sql() for a in self.aggregates]
            select = ", ".join(items)
        elif self.projection is not None:
            select = ", ".join(self.projection)
        else:
            select = "*"
        parts = [f"SELECT {select}", "FROM " + ", ".join(self.relations)]
        conditions = [p.to_sql() for p in self.selections]
        conditions += [j.to_sql() for j in self.joins]
        if conditions:
            parts.append("WHERE " + " AND ".join(conditions))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        if self.order_by is not None:
            parts.append(f"ORDER BY {self.order_by}")
        return " ".join(parts)

    def host_predicates(self) -> tuple[PredicateSpec, ...]:
        return tuple(p for p in self.selections if p.host is not None)

    def to_json(self) -> dict:
        return {
            "relations": list(self.relations),
            "selections": [p.to_json() for p in self.selections],
            "joins": [j.to_json() for j in self.joins],
            "projection": (
                None if self.projection is None else list(self.projection)
            ),
            "group_by": list(self.group_by),
            "aggregates": [a.to_json() for a in self.aggregates],
            "order_by": self.order_by,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "QuerySpec":
        projection = payload["projection"]
        return cls(
            relations=tuple(payload["relations"]),
            selections=tuple(
                PredicateSpec.from_json(p) for p in payload["selections"]
            ),
            joins=tuple(JoinSpec.from_json(j) for j in payload["joins"]),
            projection=None if projection is None else tuple(projection),
            group_by=tuple(payload["group_by"]),
            aggregates=tuple(
                AggregateItemSpec.from_json(a) for a in payload["aggregates"]
            ),
            order_by=payload["order_by"],
        )


@dataclass(frozen=True)
class FuzzCase:
    """One self-contained differential test case.

    Everything needed to replay the case is here: the catalog (as relation
    specs), the synthetic-data seed, the query, and the host-variable value
    bindings.  ``analyze`` controls whether equi-depth histograms are built
    before optimizing (they change literal-predicate estimates).
    """

    seed: str
    relations: tuple[RelationSpec, ...]
    data_seed: int
    query: QuerySpec
    bindings: dict[str, int] = field(default_factory=dict)
    analyze: bool = False

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def build_catalog(self) -> Catalog:
        """A fresh catalog holding exactly the case's relations."""
        catalog = Catalog()
        for spec in self.relations:
            catalog.add_relation(
                spec.name, list(spec.attributes), cardinality=spec.cardinality
            )
            for attr_name, clustered in spec.indexes:
                catalog.create_index(
                    f"ix_{spec.name}_{attr_name}",
                    spec.name,
                    attr_name,
                    clustered=clustered,
                )
        return catalog

    def expected_graph(self, catalog: Catalog) -> QueryGraph:
        """The query graph the parser *should* produce for ``to_sql()``."""
        query = self.query
        selections: dict[str, list[SelectionPredicate]] = {}
        space = ParameterSpace()
        for spec in query.selections:
            attribute = catalog.attribute(spec.attribute)
            op = _OP_SYMBOLS[spec.op]
            if spec.host is not None:
                parameter = f"sel:{spec.host}"
                if parameter not in space:
                    space.add_selectivity(
                        parameter, expected=DEFAULT_SELECTIVITY
                    )
                operand: Literal | HostVariable = HostVariable(
                    spec.host, parameter
                )
            else:
                operand = Literal(spec.literal)
            selections.setdefault(spec.relation, []).append(
                SelectionPredicate(attribute, op, operand)
            )
        joins = tuple(
            JoinPredicate(catalog.attribute(j.left), catalog.attribute(j.right))
            for j in query.joins
        )
        aggregate = None
        projection: tuple[Attribute, ...] | None = None
        if query.aggregates:
            aggregate = AggregateSpec(
                group_by=tuple(
                    catalog.attribute(name) for name in query.group_by
                ),
                aggregates=tuple(
                    AggregateExpr(
                        AggregateFunction(item.function),
                        None
                        if item.attribute is None
                        else catalog.attribute(item.attribute),
                    )
                    for item in query.aggregates
                ),
            )
        elif query.projection is not None:
            projection = tuple(
                catalog.attribute(name) for name in query.projection
            )
        return QueryGraph(
            relations=query.relations,
            selections={r: tuple(p) for r, p in selections.items()},
            joins=joins,
            parameters=space,
            projection=projection,
            aggregate=aggregate,
        )

    def expected_order_by(self, catalog: Catalog) -> Attribute | None:
        if self.query.order_by is None:
            return None
        return catalog.attribute(self.query.order_by)

    def parameter_names(self) -> list[str]:
        """Selectivity-parameter names in WHERE-clause order, deduplicated."""
        names: list[str] = []
        for predicate in self.query.host_predicates():
            name = f"sel:{predicate.host}"
            if name not in names:
                names.append(name)
        return names

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "version": 1,
            "seed": self.seed,
            "relations": [r.to_json() for r in self.relations],
            "data_seed": self.data_seed,
            "query": self.query.to_json(),
            "bindings": dict(self.bindings),
            "analyze": self.analyze,
            "sql": self.query.to_sql(),  # informational; regenerated on load
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FuzzCase":
        return cls(
            seed=str(payload["seed"]),
            relations=tuple(
                RelationSpec.from_json(r) for r in payload["relations"]
            ),
            data_seed=payload["data_seed"],
            query=QuerySpec.from_json(payload["query"]),
            bindings={k: v for k, v in payload["bindings"].items()},
            analyze=bool(payload["analyze"]),
        )

    def with_query(self, query: QuerySpec) -> "FuzzCase":
        return replace(self, query=query)


class CaseGenerator:
    """Draws :class:`FuzzCase` instances from a seeded PRNG."""

    def __init__(self, seed: str) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Schema / catalog
    # ------------------------------------------------------------------
    def _draw_relations(self, count: int) -> list[RelationSpec]:
        rng = self.rng
        specs: list[RelationSpec] = []
        names = [f"R{i + 1}" for i in range(count)]
        if rng.random() < 0.2:
            names.append("X1")  # distractor: in the catalog, not the query
        for name in names:
            n_attrs = rng.randint(2, 3)
            attributes = tuple(
                (attr, rng.randint(2, 50))
                for attr in _ATTRIBUTE_NAMES[:n_attrs]
            )
            clustered_used = False
            indexes: list[tuple[str, bool]] = []
            for attr, _domain in attributes:
                if rng.random() < 0.5:
                    clustered = not clustered_used and rng.random() < 0.2
                    clustered_used = clustered_used or clustered
                    indexes.append((attr, clustered))
            specs.append(
                RelationSpec(
                    name=name,
                    attributes=attributes,
                    cardinality=rng.randint(4, 40),
                    indexes=tuple(indexes),
                )
            )
        return specs

    def _attributes_of(
        self, specs: list[RelationSpec], relations: tuple[str, ...]
    ) -> list[tuple[str, int]]:
        """(qualified name, domain size) for every query-visible attribute."""
        by_name = {s.name: s for s in specs}
        out: list[tuple[str, int]] = []
        for relation in relations:
            for attr, domain in by_name[relation].attributes:
                out.append((f"{relation}.{attr}", domain))
        return out

    # ------------------------------------------------------------------
    # Query shape
    # ------------------------------------------------------------------
    def _draw_joins(
        self, specs: list[RelationSpec], relations: tuple[str, ...]
    ) -> tuple[JoinSpec, ...]:
        rng = self.rng
        by_name = {s.name: s for s in specs}

        def random_attr(relation: str) -> str:
            attr, _ = rng.choice(by_name[relation].attributes)
            return f"{relation}.{attr}"

        joins: list[JoinSpec] = []
        for i in range(1, len(relations)):
            partner = relations[rng.randrange(i)]
            joins.append(
                JoinSpec(random_attr(partner), random_attr(relations[i]))
            )
        if len(relations) >= 3 and rng.random() < 0.25:
            left_rel, right_rel = rng.sample(relations, 2)
            extra = JoinSpec(random_attr(left_rel), random_attr(right_rel))
            pairs = {frozenset((j.left, j.right)) for j in joins}
            if frozenset((extra.left, extra.right)) not in pairs:
                joins.append(extra)
        return tuple(joins)

    def _draw_selections(
        self,
        attributes: list[tuple[str, int]],
        host_counter: list[int],
    ) -> tuple[PredicateSpec, ...]:
        rng = self.rng
        count = rng.choices((0, 1, 2, 3), weights=(20, 35, 30, 15))[0]
        selections: list[PredicateSpec] = []
        for _ in range(count):
            qualified, domain = rng.choice(attributes)
            op = rng.choices(
                ("<", "<=", ">", ">=", "=", "<>"),
                weights=(25, 25, 20, 20, 7, 3),
            )[0]
            if rng.random() < 0.45:
                name = f"v{host_counter[0]}"
                host_counter[0] += 1
                selections.append(PredicateSpec(qualified, op, host=name))
            else:
                selections.append(
                    PredicateSpec(
                        qualified, op, literal=rng.randint(0, domain)
                    )
                )
        return tuple(selections)

    def _draw_aggregate(
        self, attributes: list[tuple[str, int]]
    ) -> tuple[tuple[str, ...], tuple[AggregateItemSpec, ...], str | None]:
        rng = self.rng
        n_group = rng.choices((0, 1, 2), weights=(30, 50, 20))[0]
        n_group = min(n_group, len(attributes))
        group_by = tuple(
            name for name, _ in rng.sample(attributes, n_group)
        )
        functions = ("count", "sum", "min", "max", "avg")
        items: list[AggregateItemSpec] = []
        for _ in range(rng.randint(1, 2)):
            function = rng.choice(functions)
            if function == "count" and rng.random() < 0.6:
                item = AggregateItemSpec("count", None)
            else:
                name, _ = rng.choice(attributes)
                item = AggregateItemSpec(function, name)
            if item not in items:  # the engine rejects duplicate aggregates
                items.append(item)
        order_by = None
        if group_by and rng.random() < 0.3:
            order_by = rng.choice(group_by)
        return group_by, tuple(items), order_by

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def draw_case(self) -> FuzzCase:
        rng = self.rng
        counts, weights = zip(*_RELATION_COUNT_WEIGHTS)
        n_relations = rng.choices(counts, weights=weights)[0]
        specs = self._draw_relations(n_relations)
        relations = tuple(f"R{i + 1}" for i in range(n_relations))
        attributes = self._attributes_of(specs, relations)

        joins = self._draw_joins(specs, relations)
        host_counter = [0]
        selections = self._draw_selections(attributes, host_counter)

        group_by: tuple[str, ...] = ()
        aggregates: tuple[AggregateItemSpec, ...] = ()
        projection: tuple[str, ...] | None = None
        order_by: str | None = None
        if rng.random() < 0.25:
            group_by, aggregates, order_by = self._draw_aggregate(attributes)
        else:
            if rng.random() < 0.5:
                n_proj = rng.randint(1, min(4, len(attributes)))
                projection = tuple(
                    name for name, _ in rng.sample(attributes, n_proj)
                )
            if rng.random() < 0.3:
                candidates = (
                    projection
                    if projection is not None
                    else tuple(name for name, _ in attributes)
                )
                order_by = rng.choice(candidates)

        query = QuerySpec(
            relations=relations,
            selections=selections,
            joins=joins,
            projection=projection,
            group_by=group_by,
            aggregates=aggregates,
            order_by=order_by,
        )

        domains = dict(attributes)
        bindings: dict[str, int] = {}
        for predicate in query.host_predicates():
            domain = domains[predicate.attribute]
            bindings[predicate.host] = rng.randint(0, domain)

        return FuzzCase(
            seed=self.seed,
            relations=tuple(specs),
            data_seed=rng.getrandbits(32),
            query=query,
            bindings=bindings,
            analyze=rng.random() < 0.5,
        )


def generate_case(seed: str) -> FuzzCase:
    """One deterministic case for ``seed`` (str seeds hash stably)."""
    return CaseGenerator(seed).draw_case()
