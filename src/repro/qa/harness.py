"""The fuzz loop: generate → check → shrink → persist → replay.

Each case gets an independent sub-seed derived from the run seed, so any
failing case replays in isolation without regenerating its predecessors.
Failures are greedily shrunk and written as JSON artifacts; artifacts are
fully self-contained (catalog, data seed, query, bindings) and replay
through the exact same invariant checkers via :func:`replay_artifact`.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.qa.coverage import (
    EVOLVE_AFTER,
    STAGE_BUDGET,
    CoverageMap,
    collect_case_shapes,
)
from repro.qa.generator import (
    PROFILE_SCHEDULE,
    CaseGenerator,
    FuzzCase,
    GenerationProfile,
)
from repro.qa.invariants import CaseOutcome, Violation, run_case
from repro.qa.shrinker import shrink_case

Runner = Callable[
    [FuzzCase, bool, tuple[int, ...], bool, bool, bool, int, bool], CaseOutcome
]

# Version 2: cases may carry compound-grammar fields (UNION branches,
# LEFT OUTER JOIN, IN/EXISTS semi-joins) and unary-key declarations.
# Version-1 artifacts still load — the new fields all default to empty.
ARTIFACT_VERSION = 2


@dataclass
class FuzzFailure:
    """One failing case: as generated, as shrunk, and where it was saved."""

    index: int
    case: FuzzCase
    violations: list[Violation]
    shrunk: FuzzCase | None = None
    shrunk_violations: list[Violation] | None = None
    artifact_path: Path | None = None

    @property
    def minimal_case(self) -> FuzzCase:
        return self.shrunk if self.shrunk is not None else self.case


@dataclass
class FuzzReport:
    """Summary of one fuzz run."""

    seed: str
    cases: int
    failures: list[FuzzFailure] = field(default_factory=list)
    duration_seconds: float = 0.0
    service_checked: int = 0
    parallel_checked: int = 0
    batch_checked: int = 0
    ledger_checked: int = 0
    adaptive_checked: int = 0
    sharded_checked: int = 0
    fused_checked: int = 0
    coverage: CoverageMap | None = None
    new_shape_cases: int = 0
    profile_advances: int = 0
    profile_names: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        shapes = (
            f"shapes={self.coverage.distinct_shapes} "
            f"profile-advances={self.profile_advances} "
            if self.coverage is not None
            else ""
        )
        return (
            f"fuzz seed={self.seed} cases={self.cases} "
            f"service-checked={self.service_checked} "
            f"parallel-checked={self.parallel_checked} "
            f"batch-checked={self.batch_checked} "
            f"ledger-checked={self.ledger_checked} "
            f"adaptive-checked={self.adaptive_checked} "
            f"sharded-checked={self.sharded_checked} "
            f"fused-checked={self.fused_checked} "
            f"{shapes}"
            f"time={self.duration_seconds:.1f}s: {status}"
        )

    def coverage_json(self) -> dict:
        """JSON-ready plan-shape coverage report for this run."""
        assert self.coverage is not None
        payload = self.coverage.to_json()
        payload.update(
            {
                "seed": self.seed,
                "cases": self.cases,
                "new_shape_cases": self.new_shape_cases,
                "profile_advances": self.profile_advances,
                "profiles": self.profile_names,
                "by_dimension": self.coverage.by_dimension(),
            }
        )
        return payload


def _default_runner(
    case: FuzzCase,
    check_service: bool,
    parallel_dops: tuple[int, ...] = (),
    check_batch: bool = False,
    check_ledger: bool = False,
    check_adaptive: bool = False,
    shards: int = 0,
    check_fused: bool = False,
) -> CaseOutcome:
    return run_case(
        case,
        check_service=check_service,
        parallel_dops=parallel_dops,
        check_batch=check_batch,
        check_ledger=check_ledger,
        check_adaptive=check_adaptive,
        shards=shards,
        check_fused=check_fused,
    )


def run_fuzz(
    seed: int | str,
    cases: int,
    shrink: bool = True,
    artifact_dir: str | Path | None = None,
    check_service_every: int = 4,
    check_parallel_every: int = 4,
    parallel_dops: tuple[int, ...] = (1, 2, 4),
    check_batch_every: int = 2,
    check_ledger_every: int = 4,
    check_adaptive_every: int = 4,
    shards: int = 0,
    check_sharded_every: int = 4,
    check_fused_every: int = 2,
    coverage: bool = False,
    evolve_after: int = EVOLVE_AFTER,
    stage_budget: int = STAGE_BUDGET,
    runner: Runner | None = None,
    log: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run ``cases`` generated cases and report failures.

    ``check_service_every`` throttles the (comparatively expensive)
    :class:`QueryService` byte-identity check to every Nth case; 0 disables
    it.  ``check_parallel_every`` does the same for the parallel-execution
    differential (re-optimization with a DOP parameter plus one execution
    and one run-time optimum per degree in ``parallel_dops``),
    ``check_batch_every`` for the batch-vs-row executor byte-identity
    differential, and ``check_ledger_every`` for the telemetry-ledger
    differential (observed cardinalities at pipeline breakers vs the
    oracle's intermediate sizes), and ``check_adaptive_every`` for the
    mid-query re-optimization differential (the dynamic plan re-executed
    under the adaptive controller, hair-trigger threshold, across
    executor modes and parallel degrees).  ``shards`` > 0 turns on the
    sharded differential (the case executed through an in-process
    :class:`~repro.shard.coordinator.ShardedQueryService` at that many
    shards, compared against the oracle, with per-shard gᵢ = dᵢ verified
    by exhaustive choose-plan enumeration), throttled to every
    ``check_sharded_every``-th case.  ``check_fused_every`` throttles
    the fused-codegen differential (fused execution byte-identical to
    plain batch at two batch sizes, plus post-activation ∀i gᵢ = dᵢ at
    corner bindings); ``1`` checks every case, ``0`` disables it.
    ``runner`` lets tests
    substitute an
    instrumented :func:`~repro.qa.invariants.run_case` (e.g. with an
    injected bug).

    ``coverage=True`` turns on plan-shape-coverage guidance: every case
    additionally runs the resolve-only optimizer sweep
    (:func:`~repro.qa.coverage.collect_case_shapes`), new shapes feed
    the report's :class:`~repro.qa.coverage.CoverageMap`, and the
    generator's catalog/data state evolves through
    :data:`~repro.qa.generator.PROFILE_SCHEDULE` whenever
    ``evolve_after`` consecutive cases yield no new shape (or a stage
    exceeds ``stage_budget`` cases).  Coverage off (the default) keeps
    the legacy generator stream bit-for-bit.
    """
    run = runner or _default_runner
    report = FuzzReport(seed=str(seed), cases=cases)
    started = time.perf_counter()
    schedule = PROFILE_SCHEDULE if coverage else (GenerationProfile(),)
    stage = 0
    stale = 0
    in_stage = 0
    if coverage:
        report.coverage = CoverageMap()
        report.profile_names.append(schedule[stage].name)
    for index in range(cases):
        case_seed = f"{seed}/{index}"
        case = CaseGenerator(case_seed, profile=schedule[stage]).draw_case()
        check_service = bool(
            check_service_every and index % check_service_every == 0
        )
        if check_service:
            report.service_checked += 1
        case_dops = (
            parallel_dops
            if check_parallel_every and index % check_parallel_every == 0
            else ()
        )
        if case_dops:
            report.parallel_checked += 1
        check_batch = bool(
            check_batch_every and index % check_batch_every == 0
        )
        if check_batch:
            report.batch_checked += 1
        check_ledger = bool(
            check_ledger_every and index % check_ledger_every == 0
        )
        if check_ledger:
            report.ledger_checked += 1
        check_adaptive = bool(
            check_adaptive_every and index % check_adaptive_every == 0
        )
        if check_adaptive:
            report.adaptive_checked += 1
        case_shards = (
            shards
            if shards
            and check_sharded_every
            and index % check_sharded_every == 0
            else 0
        )
        if case_shards:
            report.sharded_checked += 1
        check_fused = bool(
            check_fused_every and index % check_fused_every == 0
        )
        if check_fused:
            report.fused_checked += 1
        if coverage:
            assert report.coverage is not None
            in_stage += 1
            try:
                shapes = collect_case_shapes(case)
            except Exception:
                # Shape collection must never mask the invariant run —
                # a case the sweep rejects still goes through run() and
                # still counts toward staleness.
                shapes = {}
            # Executor-mode dimensions: the invariant run executes the
            # activated plan in batch mode always, and additionally in
            # row mode when the batch-vs-row differential is on.
            if "activated" in shapes:
                shapes["batch"] = shapes["activated"]
                if check_batch:
                    shapes["row"] = shapes["activated"]
                if check_fused:
                    shapes["fused"] = shapes["activated"]
            newly = report.coverage.record_case(shapes)
            if newly:
                report.new_shape_cases += 1
                stale = 0
            else:
                stale += 1
            if (
                stale >= evolve_after or in_stage >= stage_budget
            ) and stage + 1 < len(schedule):
                stage += 1
                report.profile_advances += 1
                report.profile_names.append(schedule[stage].name)
                if log:
                    log(
                        f"  coverage stale at case {index} "
                        f"({report.coverage.distinct_shapes} shapes); "
                        f"evolving corpus to profile "
                        f"'{schedule[stage].name}'"
                    )
                stale = 0
                in_stage = 0
        outcome = run(
            case, check_service, case_dops, check_batch, check_ledger,
            check_adaptive, case_shards, check_fused,
        )
        if outcome.passed:
            if log and (index + 1) % 25 == 0:
                log(f"  ... {index + 1}/{cases} cases, all invariants hold")
            continue
        failure = FuzzFailure(
            index=index, case=case, violations=outcome.violations
        )
        if log:
            checks = sorted(outcome.checks)
            log(f"  case {index} ({case_seed}) FAILED: {checks}")
        if shrink:
            # Shrink on the cheapest reproducing signal: when a serial
            # invariant failed, the parallel differential is dropped from
            # the shrink loop (it costs several optimizer runs per
            # proposal and steers the greedy walk into worse minima); it
            # stays only when it is the sole failing signal.
            serial_failure = any(
                not check.startswith(("parallel-", "sharded-"))
                for check in outcome.checks
            )
            shrink_dops = () if serial_failure else case_dops
            # The sharded differential joins the shrink loop only when a
            # sharded invariant is the sole reproducing signal (it costs
            # a full service per proposal).
            shrink_shards = (
                case_shards
                if not serial_failure
                and any(c.startswith("sharded-") for c in outcome.checks)
                else 0
            )
            shrunk = shrink_case(
                case,
                outcome.checks,
                run=lambda c: run(
                    c, True, shrink_dops, check_batch, check_ledger,
                    check_adaptive, shrink_shards, check_fused,
                ),
            )
            failure.shrunk = shrunk
            failure.shrunk_violations = run(
                shrunk, True, shrink_dops, check_batch, check_ledger,
                check_adaptive, shrink_shards, check_fused,
            ).violations
            if log:
                log(
                    f"    shrunk to {len(shrunk.query.relations)} relation(s):"
                    f" {shrunk.query.to_sql()}"
                )
        if artifact_dir is not None:
            failure.artifact_path = write_artifact(
                artifact_dir, failure
            )
            if log:
                log(f"    artifact: {failure.artifact_path}")
        report.failures.append(failure)
    report.duration_seconds = time.perf_counter() - started
    return report


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]+", "-", text).strip("-")


def write_artifact(directory: str | Path, failure: FuzzFailure) -> Path:
    """Persist a failure as a replayable JSON artifact; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    minimal = failure.minimal_case
    violations = (
        failure.shrunk_violations
        if failure.shrunk_violations is not None
        else failure.violations
    )
    payload = {
        "version": ARTIFACT_VERSION,
        "generator_seed": failure.case.seed,
        "case": minimal.to_json(),
        "violations": [v.to_json() for v in violations],
        "original_sql": failure.case.query.to_sql(),
    }
    path = directory / f"case-{_slug(failure.case.seed)}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_artifact(path: str | Path) -> FuzzCase:
    """The minimal case stored in an artifact file."""
    payload = json.loads(Path(path).read_text())
    return FuzzCase.from_json(payload["case"])


def replay_artifact(
    path: str | Path,
    parallel_dops: tuple[int, ...] = (),
    shards: int = 0,
) -> CaseOutcome:
    """Re-run every invariant checker on an artifact's stored case.

    ``parallel_dops`` additionally replays the case through parallel
    execution at the given degrees (see :func:`~repro.qa.invariants.run_case`);
    ``shards`` > 0 additionally replays it through the sharded
    differential at that many in-process shards.
    Replay always includes the batch-vs-row, fused-codegen,
    telemetry-ledger, and adaptive differentials — artifacts are rare
    and worth the extra executions.
    """
    return run_case(
        load_artifact(path),
        check_service=True,
        parallel_dops=parallel_dops,
        check_batch=True,
        check_ledger=True,
        check_adaptive=True,
        shards=shards,
        check_fused=True,
    )
