"""Per-case invariant checkers: the differential heart of the fuzzer.

For each generated case the checkers cross-validate every layer:

* **parser** — the graph parsed from the generated SQL must equal the
  graph rebuilt directly from the generator's specification.
* **optimizer** — across random bindings, the dynamic plan's start-up
  choice cost gᵢ must equal the from-scratch run-time optimum dᵢ (the
  paper's ∀i gᵢ = dᵢ), and dᵢ must lie inside the dynamic plan's
  compile-time interval [low, high] (minus the choose-plan overhead the
  chooser deliberately excludes from execution cost).
* **chooser** — resolving the same dynamic plan twice under one binding
  must pick identical alternatives at identical cost.
* **executor** — static, dynamic, and run-time plans must all return the
  reference oracle's multiset of rows, and ORDER BY output must be sorted.
* **batch/row** — the vectorized (batch) executor, which is the default,
  must return byte-identical rows *in order* to the row-at-a-time
  executor and to a batch run with a pathological ``batch_size`` (2), for
  the dynamic and run-time plans alike.  Batch boundaries are not part of
  the executor contract; only the concatenated row stream is.
* **parallel** — with a degree-of-parallelism parameter declared, the
  dynamic plan's activation at each DOP in ``parallel_dops`` must return
  byte-identical canonical rows to the serial oracle (and stay sorted
  under ORDER BY); at DOP=1 the start-up decision must activate a purely
  serial alternative (no exchange operators reachable); and gᵢ = dᵢ must
  keep holding at every DOP binding.
* **service** — :class:`QueryService` (cold, then through the plan cache)
  must return byte-identical canonical results to direct execution.
* **sharded** — :class:`ShardedQueryService` over N in-process shards
  (identical :class:`~repro.shard.executor.ShardExecutor` code to the
  spawned processes) must return the oracle's canonical multiset and
  stay sorted under ORDER BY; and per shard i the activated module's
  start-up choice cost gᵢ must equal dᵢ, the *exhaustive-enumeration*
  optimum over every choose-plan assignment of the shard's activated
  plan re-costed under the shard's local statistics — the paper's
  ∀i gᵢ = dᵢ, evaluated once per shard against a brute-force oracle
  that shares nothing with the chooser's greedy bottom-up procedure.
* **ledger** — with the telemetry ledger enabled, the observed
  cardinality recorded at every pipeline breaker (sort, hash-join build,
  aggregation) must equal the oracle's intermediate result size for that
  subtree, identically in batch and row mode, and the set of recorded
  probe signatures must match exactly what
  :func:`~repro.executor.executor.iter_probe_sites` predicts.
* **adaptive** — executing the dynamic plan under the adaptive
  controller (mid-query re-optimization armed at the lowest trigger
  threshold) must return the oracle's multiset in batch mode, row mode,
  and at every parallel degree; repeating a run must trigger and replan
  identically (determinism per seed); and after every splice the
  re-entered start-up choice cost g must equal the from-scratch run-time
  optimum d of the remaining query — the paper's ∀i gᵢ = dᵢ, preserved
  across mid-query re-entry.  Ordering note: a replan may re-sort pinned
  breaker output, which can permute ties, so the identity is canonical
  (multiset) plus the ORDER BY sortedness check, not byte order.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace

from repro.cost.formulas import choose_plan_cost, filter_cost
from repro.util.interval import Interval
from repro.cost.model import CostModel
from repro.executor.database import Database
from repro.executor.executor import ExecutionResult, execute_plan
from repro.logical.predicates import HostVariable
from repro.optimizer.optimizer import OptimizationMode, optimize_query
from repro.optimizer.statement import optimize_statement
from repro.physical.plan import ChoosePlanNode, iter_plan_nodes
from repro.qa.generator import FuzzCase, PredicateSpec
from repro.qa.oracle import (
    canonical_attributes,
    canonical_rows,
    evaluate_reference,
)
from repro.query.parser import parse_statement
from repro.runtime.chooser import resolve_plan

REL_TOLERANCE = 1e-6
ABS_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed invariant; ``check`` names the invariant stably."""

    check: str
    detail: str

    def to_json(self) -> dict:
        return {"check": self.check, "detail": self.detail}


@dataclass
class CaseOutcome:
    """Everything :func:`run_case` learned about one case."""

    case: FuzzCase
    violations: list[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def checks(self) -> frozenset[str]:
        return frozenset(v.check for v in self.violations)


def _compare_parameters(expected, parsed, report) -> None:
    if expected.names != parsed.names:
        report(
            "parser-parameters",
            f"parameter names {parsed.names} != expected {expected.names}",
        )
        return
    for name in expected.names:
        want, got = expected.get(name), parsed.get(name)
        if (want.kind, want.domain, want.expected) != (
            got.kind,
            got.domain,
            got.expected,
        ):
            report("parser-parameters", f"parameter {name}: {got} != {want}")


def _check_parser(case: FuzzCase, catalog, report):
    """Parse the SQL and diff the statement against the spec-built one."""
    sql = case.query.to_sql()
    parsed = parse_statement(sql, catalog)
    expected = case.expected_statement(catalog)
    statement = parsed.statement
    if len(statement.branches) != len(expected.branches):
        report(
            "parser-branches",
            f"{len(statement.branches)} branches != expected "
            f"{len(expected.branches)}",
        )
        return parsed
    for index, (got, want) in enumerate(
        zip(statement.branches, expected.branches)
    ):
        tag = f" (branch {index})" if len(expected.branches) > 1 else ""
        graph, egraph = got.graph, want.graph
        if graph.relations != egraph.relations:
            report(
                "parser-relations",
                f"{graph.relations} != {egraph.relations}{tag}",
            )
        if dict(graph.selections) != dict(egraph.selections):
            report(
                "parser-selections",
                f"{graph.selections} != {egraph.selections}{tag}",
            )
        if graph.joins != egraph.joins:
            report("parser-joins", f"{graph.joins} != {egraph.joins}{tag}")
        if graph.projection != egraph.projection:
            report(
                "parser-projection",
                f"{graph.projection} != {egraph.projection}{tag}",
            )
        if graph.aggregate != egraph.aggregate:
            report(
                "parser-aggregate",
                f"{graph.aggregate} != {egraph.aggregate}{tag}",
            )
        if got.semijoins != want.semijoins:
            report(
                "parser-semijoins",
                f"{got.semijoins} != {want.semijoins}{tag}",
            )
        if got.outer != want.outer:
            report("parser-outer", f"{got.outer} != {want.outer}{tag}")
        if got.projection != want.projection:
            report(
                "parser-branch-projection",
                f"{got.projection} != {want.projection}{tag}",
            )
    if statement.union_all != expected.union_all:
        report(
            "parser-union-mode",
            f"union_all={statement.union_all} != {expected.union_all}",
        )
    _compare_parameters(
        expected.parameters, statement.parameters, report
    )
    expected_order = case.expected_order_by(catalog)
    if parsed.order_by != expected_order:
        report(
            "parser-order-by", f"{parsed.order_by} != {expected_order}"
        )
    return parsed


def derive_parameter_values(
    case: FuzzCase, statement_or_graph, db: Database
) -> dict[str, float]:
    """Selectivity values the bound host variables imply for this database.

    Accepts either a :class:`~repro.logical.statement.Statement` (covering
    every branch's selections and subquery predicates) or a bare
    :class:`~repro.logical.query.QueryGraph` (the legacy shape).
    """

    def graph_predicates(graph):
        for relation in graph.relations:
            yield from graph.selections_on(relation)

    def statement_predicates(statement):
        for branch in statement.branches:
            yield from graph_predicates(branch.graph)
            for semijoin in branch.semijoins:
                yield from semijoin.selections

    predicates = (
        statement_predicates(statement_or_graph)
        if hasattr(statement_or_graph, "branches")
        else graph_predicates(statement_or_graph)
    )
    values: dict[str, float] = {}
    for predicate in predicates:
        operand = predicate.operand
        if isinstance(operand, HostVariable):
            values[operand.selectivity_parameter] = db.implied_selectivity(
                predicate, case.bindings
            )
    return values


def _choice_signature(plan, decision) -> list[tuple[int, int]]:
    """(choose-node position, chosen-alternative index) pairs, stable order."""
    signature: list[tuple[int, int]] = []
    for position, node in enumerate(iter_plan_nodes(plan)):
        if isinstance(node, ChoosePlanNode):
            chosen = decision.choices[id(node)]
            index = next(
                i
                for i, alternative in enumerate(node.alternatives)
                if alternative is chosen
            )
            signature.append((position, index))
    return signature


def _choose_overhead(plan, model: CostModel) -> float:
    total = 0.0
    for node in iter_plan_nodes(plan):
        if isinstance(node, ChoosePlanNode):
            total += choose_plan_cost(model, len(node.alternatives)).high
    return total


def _canonical_payload(result: ExecutionResult, attributes) -> list[tuple]:
    return canonical_rows(result.project(attributes))


def _check_sorted(result: ExecutionResult, order_attr, check, report) -> None:
    try:
        position = result.schema.position(order_attr)
    except Exception:
        report(check, f"ORDER BY attribute {order_attr} missing from output")
        return
    # NULLS LAST, matching the executor's sort order for padded outer rows.
    keys = [
        (row[position] is None, 0 if row[position] is None else row[position])
        for row in result.rows
    ]
    for previous, current in zip(keys, keys[1:]):
        if current < previous:
            report(check, f"output not sorted on {order_attr}: {keys[:20]}")
            return


def run_case(
    case: FuzzCase,
    check_service: bool = True,
    model: CostModel | None = None,
    parallel_dops: tuple[int, ...] = (),
    check_batch: bool = False,
    check_ledger: bool = False,
    check_adaptive: bool = False,
    check_cert: bool = True,
    shards: int = 0,
    check_fused: bool = False,
) -> CaseOutcome:
    """Run every invariant checker against one case.

    ``parallel_dops`` lists degrees of parallelism to differentially test
    (empty disables the parallel checkers); ``(1, 2, 4)`` is the standard
    fuzzing configuration.  ``check_batch`` enables the batch-vs-row
    executor byte-identity differential, ``check_ledger`` the telemetry
    cardinality-ledger differential (two extra executions), and
    ``check_adaptive`` the mid-query re-optimization differential
    (several extra executions under the adaptive controller).
    ``check_cert`` (on by default — it runs on *every* fuzz case) is the
    CERT-style monotonicity oracle: adding an always-true conjunctive
    restriction must never increase the estimated cardinality, must not
    increase the estimated cost beyond one filter pass, and must keep
    g = d on the restricted statement.  ``shards`` > 0 enables the
    sharded differential: the case is additionally executed through a
    :class:`~repro.shard.coordinator.ShardedQueryService` at that many
    in-process shards and compared against the oracle, with per-shard
    gᵢ = dᵢ verified against an exhaustive choose-plan enumeration.
    ``check_fused`` enables the fused-codegen differential: fused
    execution must be byte-identical to plain batch at the default and
    a tiny batch size, and the start-up decision re-resolved *after*
    fused execution must still satisfy gᵢ = dᵢ at every sampled corner
    binding (codegen and its cache must not perturb optimizer state).
    """
    outcome = CaseOutcome(case=case)

    def report(check: str, detail: str) -> None:
        outcome.violations.append(Violation(check, detail))

    try:
        _run_checks(
            case,
            check_service,
            model or CostModel(),
            report,
            parallel_dops,
            check_batch,
            check_ledger,
            check_adaptive,
            check_cert,
            shards,
            check_fused,
        )
    except Exception as exc:  # any crash is itself a finding
        report("crash", f"{type(exc).__name__}: {exc}")
    return outcome


def _run_checks(
    case,
    check_service,
    model,
    report,
    parallel_dops=(),
    check_batch=False,
    check_ledger=False,
    check_adaptive=False,
    check_cert=True,
    shards=0,
    check_fused=False,
) -> None:
    catalog = case.build_catalog()
    db = Database(catalog, model)
    db.load_synthetic(case.data_seed)
    if case.analyze:
        db.analyze()

    parsed = _check_parser(case, catalog, report)
    statement = parsed.statement
    simple = statement.is_simple
    graph = parsed.graph
    required_order = parsed.order_by

    static = optimize_statement(
        statement, catalog, model, mode=OptimizationMode.STATIC
    )
    dynamic = optimize_statement(
        statement, catalog, model, mode=OptimizationMode.DYNAMIC
    )
    parameter_values = derive_parameter_values(case, statement, db)
    bound_env = statement.parameters.bind(parameter_values)
    runtime = optimize_statement(
        statement,
        catalog,
        model,
        mode=OptimizationMode.RUN_TIME,
        binding=parameter_values,
    )

    # --- optimizer invariants -----------------------------------------
    decision = resolve_plan(dynamic.plan, dynamic.ctx.with_env(bound_env))
    g = decision.execution_cost
    d = runtime.plan.cost.low
    if not math.isclose(g, d, rel_tol=REL_TOLERANCE, abs_tol=ABS_TOLERANCE):
        report(
            "g-equals-d",
            f"start-up choice cost g={g!r} != run-time optimum d={d!r} "
            f"(bindings {parameter_values})",
        )
    interval = dynamic.plan.cost
    slack = REL_TOLERANCE * max(1.0, abs(d))
    overhead = _choose_overhead(dynamic.plan, model)
    if d < interval.low - overhead - slack or d > interval.high + slack:
        report(
            "interval-containment",
            f"run-time optimum {d!r} outside compile-time interval "
            f"[{interval.low!r}, {interval.high!r}] "
            f"(choose overhead {overhead!r})",
        )

    # --- chooser determinism ------------------------------------------
    repeat = resolve_plan(dynamic.plan, dynamic.ctx.with_env(bound_env))
    if repeat.execution_cost != decision.execution_cost or _choice_signature(
        dynamic.plan, repeat
    ) != _choice_signature(dynamic.plan, decision):
        report(
            "choose-determinism",
            "resolving the same plan twice under one binding diverged: "
            f"{decision.execution_cost!r} vs {repeat.execution_cost!r}",
        )

    # --- execution equivalence ----------------------------------------
    attributes = canonical_attributes(case, db)
    oracle = canonical_rows(evaluate_reference(case, db))
    executions = {
        "static": execute_plan(static.plan, db, bindings=case.bindings),
        "dynamic": execute_plan(
            dynamic.plan, db, bindings=case.bindings, choices=decision.choices
        ),
        "run-time": execute_plan(runtime.plan, db, bindings=case.bindings),
    }
    for label, result in executions.items():
        rows = _canonical_payload(result, attributes)
        if rows != oracle:
            report(
                f"results-{label}",
                f"{label} plan returned {len(rows)} rows != oracle "
                f"{len(oracle)}; first diff: "
                f"{_first_diff(rows, oracle)}",
            )
        if required_order is not None:
            _check_sorted(result, required_order, f"order-{label}", report)

    # --- batch/row executor identity ----------------------------------
    if check_batch:
        targets = {
            "dynamic": (dynamic.plan, decision.choices),
            "run-time": (runtime.plan, None),
        }
        for label, (plan, choices) in targets.items():
            reference = executions[label].rows  # default (fused) output
            for variant, kwargs in (
                ("row", {"execution_mode": "row"}),
                ("batch", {"execution_mode": "batch"}),
                ("batch2", {"batch_size": 2}),
            ):
                other = execute_plan(
                    plan,
                    db,
                    bindings=case.bindings,
                    choices=choices,
                    **kwargs,
                )
                if json.dumps(other.rows) != json.dumps(reference):
                    report(
                        f"batch-identity-{variant}-{label}",
                        f"{variant} execution of the {label} plan returned "
                        f"{len(other.rows)} rows != default-mode "
                        f"{len(reference)}; first diff: "
                        f"{_first_diff(other.rows, reference)}",
                    )

    # --- fused codegen identity + post-activation g = d ---------------
    if check_fused:
        _check_fused(
            case,
            db,
            catalog,
            model,
            statement,
            dynamic,
            runtime,
            decision,
            parameter_values,
            report,
        )

    # --- CERT monotonicity oracle -------------------------------------
    if check_cert:
        _check_cert(
            case, catalog, model, static, parameter_values, report
        )

    # --- telemetry ledger (probe-site prediction is SPJ-only) ---------
    if check_ledger and simple:
        _check_ledger(
            case, db, dynamic.plan, decision.choices, oracle, report
        )

    # --- parallel execution -------------------------------------------
    if parallel_dops:
        _check_parallel(
            case,
            catalog,
            db,
            model,
            required_order,
            parameter_values,
            attributes,
            oracle,
            report,
            parallel_dops,
            check_batch,
        )

    # --- adaptive re-optimization -------------------------------------
    if check_adaptive:
        _check_adaptive(
            case,
            catalog,
            db,
            model,
            graph,
            required_order,
            parameter_values,
            attributes,
            oracle,
            dynamic,
            decision,
            report,
            parallel_dops,
        )

    # --- serving layer (the service speaks plain SPJ SQL only) --------
    if check_service and simple:
        _check_service(
            case, catalog, model, attributes, executions["dynamic"], report
        )

    # --- sharded serving (same SPJ front door) ------------------------
    if shards and simple:
        _check_sharded(
            case,
            catalog,
            model,
            attributes,
            oracle,
            required_order,
            report,
            shards,
        )


def _check_parallel(
    case,
    catalog,
    db,
    model,
    required_order,
    parameter_values,
    attributes,
    oracle,
    report,
    parallel_dops,
    check_batch=False,
) -> None:
    """Differential parallel-execution invariants.

    A fresh graph (the serial checks above must not see the extra
    parameter) is compiled once with DOP declared as an interval; each
    requested degree then gets its own start-up activation, execution, and
    from-scratch run-time optimum.
    """
    from repro.cost.context import DOP_PARAMETER
    from repro.parallel.plan import ExchangeNode
    from repro.runtime.chooser import effective_plan_nodes

    statement = parse_statement(case.query.to_sql(), catalog).statement
    statement.parameters.add_dop(high=max(2, *parallel_dops))
    dynamic = optimize_statement(
        statement, catalog, model, mode=OptimizationMode.DYNAMIC
    )
    serial_payload = json.dumps(oracle)
    for dop in parallel_dops:
        binding = {**parameter_values, DOP_PARAMETER: float(dop)}
        env = statement.parameters.bind(binding)
        decision = resolve_plan(dynamic.plan, dynamic.ctx.with_env(env))
        exchanges = sum(
            1
            for node in effective_plan_nodes(dynamic.plan, decision.choices)
            if isinstance(node, ExchangeNode)
        )
        if dop == 1 and exchanges:
            report(
                "parallel-serial-at-dop1",
                f"start-up decision kept {exchanges} exchange operator(s) "
                "active at DOP=1 instead of the serial alternative",
            )
        result = execute_plan(
            dynamic.plan,
            db,
            bindings=case.bindings,
            choices=decision.choices,
            dop=dop,
        )
        payload = json.dumps(_canonical_payload(result, attributes))
        if payload != serial_payload:
            rows = _canonical_payload(result, attributes)
            report(
                f"parallel-results-dop{dop}",
                f"parallel execution at DOP={dop} ({exchanges} exchange(s)) "
                f"returned {len(rows)} rows != oracle {len(oracle)}; "
                f"first diff: {_first_diff(rows, oracle)}",
            )
        if required_order is not None:
            _check_sorted(
                result, required_order, f"parallel-order-dop{dop}", report
            )
        if check_batch:
            # Row-mode parallel execution must agree with batch-mode.
            # Interleaved exchange output order is scheduling-dependent at
            # DOP > 1, so the comparison is multiset-canonical here.
            row_result = execute_plan(
                dynamic.plan,
                db,
                bindings=case.bindings,
                choices=decision.choices,
                dop=dop,
                execution_mode="row",
            )
            row_payload = json.dumps(
                _canonical_payload(row_result, attributes)
            )
            if row_payload != payload:
                rows = _canonical_payload(row_result, attributes)
                report(
                    f"parallel-batch-identity-dop{dop}",
                    f"row-mode parallel execution at DOP={dop} returned "
                    f"{len(rows)} rows != batch-mode "
                    f"{len(oracle)}; first diff: "
                    f"{_first_diff(rows, _canonical_payload(result, attributes))}",
                )
        runtime = optimize_statement(
            statement,
            catalog,
            model,
            mode=OptimizationMode.RUN_TIME,
            binding=binding,
        )
        g = decision.execution_cost
        d = runtime.plan.cost.low
        if not math.isclose(
            g, d, rel_tol=REL_TOLERANCE, abs_tol=ABS_TOLERANCE
        ):
            report(
                "parallel-g-equals-d",
                f"start-up choice cost g={g!r} != run-time optimum d={d!r} "
                f"at DOP={dop} (bindings {parameter_values})",
            )


def _first_diff(rows: list[tuple], oracle: list[tuple]) -> str:
    for i, (got, want) in enumerate(zip(rows, oracle)):
        if got != want:
            return f"row {i}: {got} != {want}"
    return f"length {len(rows)} vs {len(oracle)}"


def _subtree_shape(node, choices):
    """(base relations, contains-aggregate, contains-limit) of a physical
    subtree, resolving choose-plans through ``choices``."""
    from repro.physical.plan import (
        HashAggregateNode,
        SortedAggregateNode,
        TopNNode,
    )

    relations: set[str] = set()
    has_aggregate = False
    has_limit = False

    def walk(current) -> None:
        nonlocal has_aggregate, has_limit
        if isinstance(current, ChoosePlanNode):
            walk(choices[id(current)])
            return
        if isinstance(current, (HashAggregateNode, SortedAggregateNode)):
            has_aggregate = True
        if isinstance(current, TopNNode):
            has_limit = True
        relation = getattr(current, "relation", None)
        if relation is not None:
            relations.add(relation)
        inner = getattr(current, "inner_relation", None)
        if inner is not None:
            relations.add(inner)
        for child in current.inputs:
            walk(child)

    walk(node)
    return relations, has_aggregate, has_limit


def _oracle_intermediate_count(case, db, relations: set[str]) -> int:
    """Oracle row count of the join of ``relations`` only: the reference
    fold of :func:`~repro.qa.oracle.evaluate_reference` restricted to a
    subset of the FROM list — each relation filtered by its selections,
    each join applied once both sides are present."""
    from repro.qa.oracle import _passes_selections, _relation_rows

    query = case.query
    accumulated = None
    present: set[str] = set()
    applied: set[int] = set()
    for relation in query.relations:
        if relation not in relations:
            continue
        rows = [
            row
            for row in _relation_rows(db, relation)
            if _passes_selections(row, query, relation, case.bindings)
        ]
        if accumulated is None:
            accumulated = rows
        else:
            accumulated = [
                {**left, **right} for left in accumulated for right in rows
            ]
        present.add(relation)
        for i, join in enumerate(query.joins):
            if i in applied or not join.relations <= present:
                continue
            applied.add(i)
            accumulated = [
                row for row in accumulated if row[join.left] == row[join.right]
            ]
    return len(accumulated or [])


def _check_fused(
    case,
    db,
    catalog,
    model,
    statement,
    dynamic,
    runtime,
    decision,
    parameter_values,
    report,
) -> None:
    """Fused-codegen differential: byte-identity plus post-activation g = d.

    The activated dynamic plan and the fully-bound run-time plan both
    execute in fused mode at the default and a deliberately tiny batch
    size; the raw row stream — order included, no canonicalization —
    must match plain batch mode exactly.  Afterwards the start-up
    decision re-resolves at the derived binding and at the corner
    bindings of the parameter space, and each resolution must still
    satisfy gᵢ = dᵢ: whole-pipeline codegen and its process-wide code
    cache must not perturb optimizer state or plan activation.
    """
    targets = {
        "dynamic": (dynamic.plan, decision.choices),
        "run-time": (runtime.plan, None),
    }
    for label, (plan, choices) in targets.items():
        reference = execute_plan(
            plan,
            db,
            bindings=case.bindings,
            choices=choices,
            execution_mode="batch",
        )
        for variant, kwargs in (("fused", {}), ("fused3", {"batch_size": 3})):
            fused = execute_plan(
                plan,
                db,
                bindings=case.bindings,
                choices=choices,
                execution_mode="fused",
                **kwargs,
            )
            if json.dumps(fused.rows) != json.dumps(reference.rows):
                report(
                    f"fused-identity-{variant}-{label}",
                    f"{variant} execution of the {label} plan returned "
                    f"{len(fused.rows)} rows != batch-mode "
                    f"{len(reference.rows)}; first diff: "
                    f"{_first_diff(fused.rows, reference.rows)}",
                )

    # Post-activation ∀i gᵢ = dᵢ: sampled bindings cover the derived
    # point plus the all-low / all-high corners of the parameter space.
    space = statement.parameters
    bindings = [dict(parameter_values)]
    if len(space):
        bindings.append({p.name: p.domain.low for p in space})
        bindings.append({p.name: p.domain.high for p in space})
    for index, binding in enumerate(bindings):
        env = space.bind(binding)
        g = resolve_plan(dynamic.plan, dynamic.ctx.with_env(env)).execution_cost
        d = optimize_statement(
            statement,
            catalog,
            model,
            mode=OptimizationMode.RUN_TIME,
            binding=binding,
        ).plan.cost.low
        if not math.isclose(g, d, rel_tol=REL_TOLERANCE, abs_tol=ABS_TOLERANCE):
            report(
                "fused-post-activation-g-equals-d",
                f"after fused execution, binding #{index} {binding}: "
                f"start-up choice cost g={g!r} != run-time optimum d={d!r}",
            )


def _check_ledger(case, db, plan, choices, oracle, report) -> None:
    """Telemetry differential: ledger observations vs oracle intermediates.

    Executes the dynamic plan once per executor mode with the cardinality
    ledger enabled and requires (1) batch, row, and fused mode to record
    identical signature → observed-count maps, (2) the recorded signature set to be
    exactly what :func:`~repro.executor.executor.iter_probe_sites`
    predicts, and (3) every observed count to equal the oracle's size for
    that subtree — the join of the subtree's relations, or the final
    group count once aggregation is inside the subtree.
    """
    from repro.executor.executor import iter_probe_sites
    from repro.obs.telemetry import get_ledger

    ledger = get_ledger()
    was_enabled = ledger.enabled
    ledger.enable()
    try:
        observed: dict[str, dict[str, float]] = {}
        for mode in ("batch", "row", "fused"):
            ledger.reset()
            execute_plan(
                plan,
                db,
                bindings=case.bindings,
                choices=choices,
                execution_mode=mode,
            )
            observed[mode] = ledger.observed_by_signature()
    finally:
        ledger.reset()
        if not was_enabled:
            ledger.disable()
    sites = list(iter_probe_sites(plan, choices))
    site_signatures = {signature for signature, _node, _kind in sites}
    for mode in ("batch", "row", "fused"):
        extra = sorted(set(observed[mode]) - site_signatures)
        if extra:
            report(
                "ledger-extra-records",
                f"{mode}-mode ledger recorded signatures with no "
                f"predicted probe site: {extra}",
            )
    # A probe records only on natural exhaustion.  Consumers that may
    # legitimately stop pulling early — a merge join (either input ends
    # the join) and a hash join's probe input (skipped when the build is
    # empty) — make recording optional there, and since batch and row
    # mode reach exhaustion at different pull granularities, presence may
    # differ across modes for exactly those sites.  Everything *recorded*
    # is a complete observation and must match the oracle.
    exempt = _early_stop_sites(plan, choices)
    for signature, node, kind in sites:
        relations, has_aggregate, has_limit = _subtree_shape(node, choices)
        expected = None
        if not has_limit:  # a Top-N below the probe truncates legitimately
            expected = (
                len(oracle)
                if has_aggregate
                else _oracle_intermediate_count(case, db, relations)
            )
        for mode in ("batch", "row", "fused"):
            got = observed[mode].get(signature)
            if got is None:
                if signature not in exempt:
                    report(
                        "ledger-missing-record",
                        f"no {mode}-mode ledger record for predicted probe "
                        f"site {node.label} ({kind}, {signature})",
                    )
                continue
            if expected is not None and got != expected:
                report(
                    "ledger-oracle",
                    f"{node.label} ({kind}, {mode} mode): ledger observed "
                    f"{got:.0f} rows != oracle intermediate {expected} "
                    f"over {sorted(relations)}",
                )


def _early_stop_sites(plan, choices) -> set[str]:
    """Signatures of probe sites below an edge whose consumer may stop
    pulling before exhaustion — a merge join's inputs (either side can
    end the join) and a hash join's probe input (never pulled when the
    build is empty).  Recording is optional anywhere under such an edge:
    an unpulled iterator records nothing in its whole subtree."""
    from repro.executor.executor import iter_probe_sites
    from repro.physical.plan import HashJoinNode, MergeJoinNode

    signatures: set[str] = set()

    def resolve(node):
        while isinstance(node, ChoosePlanNode):
            node = choices[id(node)]
        return node

    def walk(node) -> None:
        node = resolve(node)
        edges = ()
        if isinstance(node, MergeJoinNode):
            edges = node.inputs
        elif isinstance(node, HashJoinNode):
            edges = (node.inputs[1],)
        for child in edges:
            for signature, _node, _kind in iter_probe_sites(child, choices):
                signatures.add(signature)
        for child in node.inputs:
            walk(child)

    walk(plan)
    return signatures


def _check_adaptive(
    case,
    catalog,
    db,
    model,
    graph,
    required_order,
    parameter_values,
    attributes,
    oracle,
    dynamic,
    decision,
    report,
    parallel_dops,
) -> None:
    """Adaptive differential: mid-query replans must be invisible.

    The controller runs with the lowest trigger threshold
    (``min_error_ratio=1.0``: any out-of-interval observation replans),
    so every case whose compile-time intervals miss the loaded data
    exercises the full trigger → re-enter → splice path; cases with
    honest intervals exercise the never-triggering overhead path.  Both
    must return the oracle's canonical multiset in every executor
    configuration, behave identically on repetition, and keep
    ``g = d`` holding for the spliced remainder of the query.
    """
    from repro.adaptive import AdaptivePolicy, execute_adaptive_statement

    del graph, decision  # the statement path re-resolves per run

    policy = AdaptivePolicy(max_reopts=2, min_error_ratio=1.0)
    oracle_payload = json.dumps(oracle)
    runs = {}
    for label, kwargs in (
        ("batch", {}),
        ("row", {"execution_mode": "row"}),
        ("repeat", {}),
    ):
        run = execute_adaptive_statement(
            dynamic,
            db,
            policy=policy,
            bindings=case.bindings,
            parameter_values=parameter_values,
            **kwargs,
        )
        runs[label] = run
        payload = json.dumps(_canonical_payload(run.result, attributes))
        if payload != oracle_payload:
            rows = _canonical_payload(run.result, attributes)
            report(
                f"adaptive-results-{label}",
                f"adaptive ({label}, {len(run.replans)} replan(s)) returned "
                f"{len(rows)} rows != oracle {len(oracle)}; first diff: "
                f"{_first_diff(rows, oracle)}",
            )
        if required_order is not None:
            _check_sorted(
                run.result, required_order, f"adaptive-order-{label}", report
            )
    first, again = runs["batch"], runs["repeat"]
    if (
        len(first.replans) != len(again.replans)
        or first.triggered != again.triggered
        or [e.signature for e in first.replans]
        != [e.signature for e in again.replans]
    ):
        report(
            "adaptive-determinism",
            "identical adaptive runs diverged: "
            f"{len(first.replans)} replan(s) at "
            f"{[e.label for e in first.replans]} vs "
            f"{len(again.replans)} at {[e.label for e in again.replans]}",
        )
    # g = d must survive the splice: each re-entered start-up decision
    # must match the from-scratch run-time optimum of the remaining
    # query over the pinned (exact-statistics) catalog, and d must lie
    # inside the re-entered compile-time interval.
    for index, event in enumerate(first.replans):
        sub = event.outcome
        binding = {
            p.name: event.parameter_values[p.name]
            for p in sub.graph.parameters
        }
        runtime = optimize_query(
            sub.graph,
            sub.result.ctx.catalog,
            model,
            mode=OptimizationMode.RUN_TIME,
            binding=binding,
            required_order=sub.required_order,
        )
        g = event.decision.execution_cost
        d = runtime.plan.cost.low
        if not math.isclose(
            g, d, rel_tol=REL_TOLERANCE, abs_tol=ABS_TOLERANCE
        ):
            report(
                "adaptive-g-equals-d",
                f"replan {index} ({event.label}): re-entered choice cost "
                f"g={g!r} != run-time optimum d={d!r} of the remaining "
                f"query (binding {binding})",
            )
        interval = sub.result.plan.cost
        slack = REL_TOLERANCE * max(1.0, abs(d))
        overhead = _choose_overhead(sub.result.plan, model)
        if d < interval.low - overhead - slack or d > interval.high + slack:
            report(
                "adaptive-interval-containment",
                f"replan {index} ({event.label}): run-time optimum {d!r} "
                f"outside the re-entered compile-time interval "
                f"[{interval.low!r}, {interval.high!r}] "
                f"(choose overhead {overhead!r})",
            )
    # Parallel degrees: the spliced plan must stay correct through
    # exchange operators (workers never carry guards; only the
    # coordinator's breakers trigger).
    dops = tuple(d for d in parallel_dops if d > 1)
    if dops:
        from repro.cost.context import DOP_PARAMETER

        parallel_statement = parse_statement(
            case.query.to_sql(), catalog
        ).statement
        parallel_statement.parameters.add_dop(high=max(2, *dops))
        parallel = optimize_statement(
            parallel_statement, catalog, model, mode=OptimizationMode.DYNAMIC
        )
        for dop in dops:
            binding = {**parameter_values, DOP_PARAMETER: float(dop)}
            run = execute_adaptive_statement(
                parallel,
                db,
                policy=policy,
                bindings=case.bindings,
                parameter_values=binding,
                dop=dop,
            )
            payload = json.dumps(_canonical_payload(run.result, attributes))
            if payload != oracle_payload:
                rows = _canonical_payload(run.result, attributes)
                report(
                    f"adaptive-results-dop{dop}",
                    f"adaptive parallel execution at DOP={dop} "
                    f"({len(run.replans)} replan(s)) returned {len(rows)} "
                    f"rows != oracle {len(oracle)}; first diff: "
                    f"{_first_diff(rows, oracle)}",
                )
            if required_order is not None:
                _check_sorted(
                    run.result,
                    required_order,
                    f"adaptive-order-dop{dop}",
                    report,
                )


def _check_cert(
    case, catalog, model, base_static, parameter_values, report
) -> None:
    """CERT-style monotonicity oracle (after Rigger & Su's CERT: tighter
    queries must not get looser estimates).

    An always-true conjunctive restriction (``R.a <= domain_max``) is
    appended to branch 0's WHERE clause.  Because every selectivity
    estimate is at most 1 and all cardinality/cost formulas are monotone
    in their input cardinalities, the restricted statement must satisfy:

    * **cardinality** — estimated output bounds never exceed the base
      statement's (low and high separately);
    * **cost** — the estimated cost never grows by more than one filter
      pass over the restricted relation per probe of that scan (the
      optimizer may always keep the base plan and evaluate one more
      predicate), so the allowance scales with the base plan's total
      estimated row flow;
    * **winner soundness** — the restricted dynamic plan's start-up
      choice cost g still equals the restricted run-time optimum d: the
      restriction must not make choose-plan drop the true winner.
    """
    query = case.query
    spec = next(s for s in case.relations if s.name == query.relations[0])
    attr, domain = spec.attributes[0]
    restriction = PredicateSpec(
        f"{spec.name}.{attr}", "<=", literal=domain
    )
    restricted_query = replace(
        query, selections=query.selections + (restriction,)
    )
    restricted = parse_statement(
        restricted_query.to_sql(), catalog
    ).statement

    r_static = optimize_statement(
        restricted, catalog, model, mode=OptimizationMode.STATIC
    )
    base_card = base_static.plan.cardinality
    r_card = r_static.plan.cardinality
    for bound, base_value, r_value in (
        ("low", base_card.low, r_card.low),
        ("high", base_card.high, r_card.high),
    ):
        slack = REL_TOLERANCE * max(1.0, abs(base_value))
        if r_value > base_value + slack:
            report(
                "cert-card-monotonic",
                f"restricting with {restriction.to_sql()} raised the "
                f"estimated cardinality {bound} bound from {base_value!r} "
                f"to {r_value!r}",
            )

    # The optimizer may always answer the restricted statement with the
    # base plan plus one more predicate evaluation wherever the restricted
    # relation is scanned; nested-loop rescans repeat that work, so the
    # allowance is one filter pass over the base plan's whole estimated
    # row flow (an upper bound on tuples the extra predicate can touch).
    row_flow = sum(
        node.cardinality.high for node in iter_plan_nodes(base_static.plan)
    )
    allowance = filter_cost(
        model,
        Interval.point(float(spec.cardinality) + row_flow),
        Interval.point(1.0),
    ).high
    base_cost = base_static.plan.cost.high
    r_cost = r_static.plan.cost.high
    slack = REL_TOLERANCE * max(1.0, abs(base_cost))
    if r_cost > base_cost + allowance + slack:
        report(
            "cert-cost-monotonic",
            f"restricting with {restriction.to_sql()} raised the estimated "
            f"cost from {base_cost!r} to {r_cost!r} "
            f"(> filter allowance {allowance!r})",
        )

    # Winner-set soundness: the restricted statement must keep g = d.
    r_dynamic = optimize_statement(
        restricted, catalog, model, mode=OptimizationMode.DYNAMIC
    )
    env = restricted.parameters.bind(parameter_values)
    decision = resolve_plan(r_dynamic.plan, r_dynamic.ctx.with_env(env))
    r_runtime = optimize_statement(
        restricted,
        catalog,
        model,
        mode=OptimizationMode.RUN_TIME,
        binding=parameter_values,
    )
    g = decision.execution_cost
    d = r_runtime.plan.cost.low
    if not math.isclose(g, d, rel_tol=REL_TOLERANCE, abs_tol=ABS_TOLERANCE):
        report(
            "cert-winner-soundness",
            f"restricted statement broke g = d: start-up choice cost "
            f"g={g!r} != run-time optimum d={d!r} after adding "
            f"{restriction.to_sql()}",
        )


def _check_service(case, catalog, model, attributes, direct, report) -> None:
    from repro.service import QueryService

    sql = case.query.to_sql()
    direct_payload = json.dumps(_canonical_payload(direct, attributes))
    service = QueryService(
        catalog, model, workers=1, seed=case.data_seed
    )
    try:
        first = service.execute(sql, case.bindings)
        second = service.execute(sql, case.bindings)  # plan-cache hit path
    finally:
        service.close()
    for label, result in (("cold", first), ("cached", second)):
        payload = json.dumps(
            _canonical_payload(result.execution, attributes)
        )
        if payload != direct_payload:
            report(
                f"service-{label}",
                f"service ({label}) result differs from direct execution: "
                f"{payload[:200]} != {direct_payload[:200]}",
            )
    if not second.cache_hit:
        report(
            "service-cache",
            "second identical invocation did not hit the plan cache",
        )


#: Exhaustive-enumeration budget for the per-shard d_i oracle; plans
#: with more choose-plan assignment combinations skip the brute force
#: (the end-to-end result differential still runs).
_SHARD_ENUMERATION_LIMIT = 512


def _forced_plan_cost(plan, nodes, forced, ctx) -> float:
    """Total cost of ``plan`` with every choose-plan pinned by ``forced``.

    An independent re-implementation of the chooser's bottom-up cost
    fold — but with the decisions *given*, so enumerating all ``forced``
    assignments yields the true optimum of the plan DAG without trusting
    the chooser's greedy per-node minimization.
    """
    from repro.parallel.plan import ExchangeNode

    table: dict[int, tuple] = {}
    for node in nodes:
        if isinstance(node, ChoosePlanNode):
            table[id(node)] = table[id(forced[id(node)])]
        elif isinstance(node, ExchangeNode):
            (entry,) = [table[id(child)] for child in node.inputs]
            table[id(node)] = node.bound_total(ctx, entry[0], entry[1])
        else:
            entries = [table[id(child)] for child in node.inputs]
            card, self_cost, order = node.recompute(
                ctx, [e[0] for e in entries], [e[2] for e in entries]
            )
            total = self_cost
            for entry in entries:
                total = total + entry[1]
            table[id(node)] = (card, total, order)
    return table[id(plan)][1].low


def _exhaustive_plan_optimum(plan, ctx) -> float | None:
    """Cheapest cost over *every* choose-plan assignment of ``plan``
    under ``ctx``, or ``None`` when the assignment space exceeds the
    enumeration budget."""
    import itertools

    nodes = list(iter_plan_nodes(plan))
    chooses = [n for n in nodes if isinstance(n, ChoosePlanNode)]
    combinations = 1
    for node in chooses:
        combinations *= len(node.alternatives)
    if combinations > _SHARD_ENUMERATION_LIMIT:
        return None
    best: float | None = None
    for assignment in itertools.product(
        *(range(len(node.alternatives)) for node in chooses)
    ):
        forced = {
            id(node): node.alternatives[index]
            for node, index in zip(chooses, assignment)
        }
        cost = _forced_plan_cost(plan, nodes, forced, ctx)
        if best is None or cost < best:
            best = cost
    return best


def _check_sharded(
    case, catalog, model, attributes, oracle, required_order, report, shards
) -> None:
    """Sharded differential: N in-process shards vs the serial oracle.

    End to end, the coordinator's merged result must be the oracle's
    canonical multiset (and sorted under ORDER BY).  Per shard, the
    activated module's start-up choice cost gᵢ must equal dᵢ — the
    exhaustive-enumeration optimum over the shard's activated plan,
    re-costed under the shard's *local* catalog statistics.  dᵢ is
    deliberately scoped to the shipped plan: shard-local cardinalities
    are not declared parameters, so a from-scratch optimum may lie
    outside the alternatives compile-time pruning kept; within the
    shipped plan the chooser must still be exactly optimal.
    """
    from repro.shard.coordinator import ShardedQueryService

    sql = case.query.to_sql()
    service = ShardedQueryService(
        catalog,
        model,
        shards=shards,
        workers=1,
        in_process=True,
        seed=case.data_seed,
    )
    try:
        result = service.execute(sql, case.bindings)
        rows = canonical_rows(result.project(attributes))
        if rows != oracle:
            report(
                "sharded-results",
                f"sharded execution at {shards} shard(s) returned "
                f"{len(rows)} rows != oracle {len(oracle)}; first diff: "
                f"{_first_diff(rows, oracle)}",
            )
        if required_order is not None:
            triple = (
                required_order.relation,
                required_order.name,
                required_order.domain_size,
            )
            try:
                position = result.schema.index(triple)
            except ValueError:
                report(
                    "sharded-order",
                    f"ORDER BY attribute {required_order} missing from "
                    f"sharded output schema {result.schema}",
                )
            else:
                keys = [
                    (row[position] is None, row[position])
                    for row in result.rows
                ]
                if any(b < a for a, b in zip(keys, keys[1:])):
                    report(
                        "sharded-order",
                        f"sharded output not sorted on {required_order}: "
                        f"{keys[:20]}",
                    )
        for shard_id, handle in enumerate(service._handles):
            executor = handle._executor
            for module in executor._modules.values():
                for key, decision in module._decision_cache.items():
                    env = module.ctx.env.space.bind(dict(key))
                    d = _exhaustive_plan_optimum(
                        module.plan, module.ctx.with_env(env)
                    )
                    if d is None:
                        continue
                    g = decision.execution_cost
                    if not math.isclose(
                        g, d, rel_tol=REL_TOLERANCE, abs_tol=ABS_TOLERANCE
                    ):
                        report(
                            "sharded-g-equals-d",
                            f"shard {shard_id}: start-up choice cost "
                            f"g={g!r} != exhaustive optimum d={d!r} over "
                            f"the activated plan under shard-local "
                            f"statistics (binding {dict(key)})",
                        )
    finally:
        service.close()
