"""Random binding generation (Section 6).

"Average run-times for static and dynamic plans were determined using
N = 100 sets of randomly generated values for the uncertain cost-model
parameters.  The random values for selectivities of selection operations
are chosen from a uniform distribution over the interval [0, 1] ...  When
memory was considered an unbound parameter, a run-time value for the number
of pages was chosen from a uniform distribution over [16, 112]."
"""

from __future__ import annotations

from repro.params.parameter import ParameterKind, ParameterSpace
from repro.util.rng import make_rng

PAPER_INVOCATIONS = 100


def generate_bindings(
    space: ParameterSpace,
    n: int = PAPER_INVOCATIONS,
    seed: int = 5_1994,
) -> list[dict[str, float]]:
    """Draw ``n`` independent binding sets, uniform over each domain.

    Memory values are rounded to whole pages; selectivities stay
    continuous.  Deterministic given ``seed``.
    """
    rng = make_rng(seed)
    bindings = []
    for _ in range(n):
        values: dict[str, float] = {}
        for parameter in space:
            value = rng.uniform(parameter.domain.low, parameter.domain.high)
            if parameter.kind is ParameterKind.MEMORY_PAGES:
                value = float(round(value))
            values[parameter.name] = value
        bindings.append(values)
    return bindings
