"""The paper's experimental evaluation (Section 6), reproducible end to end.

Five queries of increasing complexity (1 to 10 relations, each with an
unbound selection), optimized statically, dynamically, and at run time over
N randomly drawn binding sets; the harness regenerates the data behind
Figures 4–8 and the break-even analysis.
"""

from repro.experiments.catalogs import make_experiment_catalog
from repro.experiments.queries import ExperimentQuery, paper_queries
from repro.experiments.workload import generate_bindings
from repro.experiments.harness import ExperimentRecord, run_experiment
from repro.experiments import figures, report
from repro.experiments.regions import PlanRegion, selectivity_regions

__all__ = [
    "make_experiment_catalog",
    "ExperimentQuery",
    "paper_queries",
    "generate_bindings",
    "ExperimentRecord",
    "run_experiment",
    "figures",
    "report",
    "PlanRegion",
    "selectivity_regions",
]
