"""The five experiment queries (Section 6).

Query i joins the first n_i relations of the experiment catalog in a chain
(R1.k = R2.j, R2.k = R3.j, ...), with one unbound selection predicate per
relation: query 1 — single relation, single predicate (the motivating
example); query 2 — two-way join; query 3 — four-way; query 4 — six-way;
query 5 — ten-way.  Selection selectivities are uncertain over [0, 1] with
the traditional expected value 0.05; join selectivities are derived from
domain sizes and fully known.  An optional uncertain memory parameter
(uniform over [16, 112] pages, expected 64) adds one more uncertain
variable per query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.experiments.catalogs import (
    JOIN_IN_ATTRIBUTE,
    JOIN_OUT_ATTRIBUTE,
    SELECTION_ATTRIBUTE,
    relation_name,
)
from repro.logical.predicates import (
    CompareOp,
    HostVariable,
    JoinPredicate,
    SelectionPredicate,
)
from repro.logical.query import QueryGraph
from repro.params.parameter import ParameterSpace

PAPER_QUERY_SIZES = (1, 2, 4, 6, 10)
EXPECTED_SELECTIVITY = 0.05
MEMORY_LOW, MEMORY_HIGH, MEMORY_EXPECTED = 16, 112, 64


def selectivity_parameter(index: int) -> str:
    """Name of the i-th selection's selectivity parameter."""
    return f"sel{index + 1}"


def host_variable_name(index: int) -> str:
    """Name of the i-th selection's host variable."""
    return f"v{index + 1}"


@dataclass(frozen=True)
class ExperimentQuery:
    """One experiment query plus its bookkeeping."""

    number: int  # 1..5, the paper's numbering
    n_relations: int
    with_memory: bool
    graph: QueryGraph

    @property
    def uncertain_variables(self) -> int:
        """Uncertain parameters: one per selection, +1 with memory."""
        return self.n_relations + (1 if self.with_memory else 0)

    @property
    def label(self) -> str:
        """Human-readable identifier for report rows."""
        suffix = "+mem" if self.with_memory else ""
        return f"Q{self.number}{suffix}"


def build_chain_query(
    catalog: Catalog, n_relations: int, with_memory: bool = False
) -> QueryGraph:
    """A chain query over the first ``n_relations`` experiment relations."""
    space = ParameterSpace()
    selections: dict[str, tuple[SelectionPredicate, ...]] = {}
    joins: list[JoinPredicate] = []
    relations: list[str] = []
    for i in range(n_relations):
        name = relation_name(i)
        relations.append(name)
        parameter = space.add_selectivity(
            selectivity_parameter(i), expected=EXPECTED_SELECTIVITY
        )
        predicate = SelectionPredicate(
            attribute=catalog.attribute(f"{name}.{SELECTION_ATTRIBUTE}"),
            op=CompareOp.LT,
            operand=HostVariable(host_variable_name(i), parameter.name),
        )
        selections[name] = (predicate,)
        if i > 0:
            joins.append(
                JoinPredicate(
                    left=catalog.attribute(
                        f"{relation_name(i - 1)}.{JOIN_OUT_ATTRIBUTE}"
                    ),
                    right=catalog.attribute(f"{name}.{JOIN_IN_ATTRIBUTE}"),
                )
            )
    if with_memory:
        space.add_memory(
            "memory", low=MEMORY_LOW, high=MEMORY_HIGH, expected=MEMORY_EXPECTED
        )
    return QueryGraph(
        relations=tuple(relations),
        selections=selections,
        joins=tuple(joins),
        parameters=space,
    )


def paper_queries(
    catalog: Catalog,
    with_memory: bool = False,
    sizes: tuple[int, ...] = PAPER_QUERY_SIZES,
) -> list[ExperimentQuery]:
    """All five experiment queries over one shared catalog."""
    queries = []
    for number, n_relations in enumerate(sizes, start=1):
        queries.append(
            ExperimentQuery(
                number=number,
                n_relations=n_relations,
                with_memory=with_memory,
                graph=build_chain_query(catalog, n_relations, with_memory),
            )
        )
    return queries
