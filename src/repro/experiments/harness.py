"""The experiment harness: everything Section 6 measures, in one record.

For one query the harness runs static optimization, dynamic optimization,
and (optionally) run-time optimization per binding; it then evaluates every
plan at each of the N random bindings.  As in the paper, execution times
are the optimizer's *predicted* costs at the true bindings ("plans should
be compared on the basis of anticipated execution costs", footnote 4),
while optimization and start-up decision times are truly measured.

Measured CPU seconds on this machine and the 1994-calibrated I/O model are
not directly commensurable; where they must be combined (Figure 8, the
break-even analysis) the harness uses *counted-work model time* instead:
optimizer effort is candidates-costed × a per-candidate constant, start-up
effort is cost-evaluations × a per-evaluation constant, both calibrated to
the paper's DECstation measurements (see
:class:`repro.cost.model.CostModel`).  This keeps the combined figures
deterministic and machine-independent while Figures 5 and 7 still report
truly measured wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.experiments.queries import ExperimentQuery
from repro.obs.trace import get_tracer
from repro.optimizer.engine import SearchStats
from repro.optimizer.optimizer import OptimizationMode, optimize_query
from repro.runtime.chooser import resolve_plan

@dataclass
class ExperimentRecord:
    """All measurements for one experiment query."""

    query: ExperimentQuery
    logical_alternatives: int

    static_optimization_seconds: float = 0.0  # measured wall-clock
    dynamic_optimization_seconds: float = 0.0  # measured wall-clock
    static_modeled_optimization_seconds: float = 0.0  # counted work
    dynamic_modeled_optimization_seconds: float = 0.0  # counted work
    static_plan_nodes: int = 0
    dynamic_plan_nodes: int = 0
    choose_plan_count: int = 0
    static_stats: SearchStats = field(default_factory=SearchStats)
    dynamic_stats: SearchStats = field(default_factory=SearchStats)

    static_execution_costs: list[float] = field(default_factory=list)  # c_i
    dynamic_execution_costs: list[float] = field(default_factory=list)  # g_i
    runtime_execution_costs: list[float] = field(default_factory=list)  # d_i
    runtime_optimization_seconds: list[float] = field(default_factory=list)
    runtime_modeled_optimization_seconds: list[float] = field(default_factory=list)
    dynamic_startup_cpu_seconds: list[float] = field(default_factory=list)
    dynamic_cost_evaluations: int = 0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def uncertain_variables(self) -> int:
        """Number of uncertain cost-model parameters (the figures' x-axis)."""
        return self.query.uncertain_variables

    @property
    def avg_static_execution(self) -> float:
        """Mean static-plan execution cost, c̄."""
        return _mean(self.static_execution_costs)

    @property
    def avg_dynamic_execution(self) -> float:
        """Mean dynamic-plan execution cost, ḡ."""
        return _mean(self.dynamic_execution_costs)

    @property
    def avg_runtime_execution(self) -> float:
        """Mean run-time-optimized execution cost, d̄."""
        return _mean(self.runtime_execution_costs)

    @property
    def avg_runtime_optimization(self) -> float:
        """Mean per-invocation run-time optimization time, ā (measured)."""
        return _mean(self.runtime_optimization_seconds)

    @property
    def avg_runtime_modeled_optimization(self) -> float:
        """Mean per-invocation run-time optimization effort, model time."""
        return _mean(self.runtime_modeled_optimization_seconds)

    def modeled_startup_cpu_seconds(self, model: CostModel) -> float:
        """Choose-plan decision effort per start-up, in model time."""
        return self.dynamic_cost_evaluations * model.startup_eval_seconds

    @property
    def avg_dynamic_startup_cpu(self) -> float:
        """Mean measured choose-plan decision CPU per start-up."""
        return _mean(self.dynamic_startup_cpu_seconds)

    def dynamic_activation_io_seconds(self, model: CostModel) -> float:
        """Modeled I/O to read + validate the dynamic access module."""
        return model.activation_time(self.dynamic_plan_nodes)

    def static_activation_io_seconds(self, model: CostModel) -> float:
        """Modeled I/O to read + validate the static access module."""
        return model.activation_time(self.static_plan_nodes)

    def as_dict(self) -> dict:
        """JSON-ready summary of the record.

        Search statistics go through :meth:`SearchStats.as_dict` — the
        same serialization path the metrics snapshots and trace spans use
        — instead of hand-picked attributes; per-binding lists are
        reduced to their means (the figures' quantities).
        """
        return {
            "query": self.query.label,
            "uncertain_variables": self.uncertain_variables,
            "logical_alternatives": self.logical_alternatives,
            "static_optimization_seconds": self.static_optimization_seconds,
            "dynamic_optimization_seconds": self.dynamic_optimization_seconds,
            "static_plan_nodes": self.static_plan_nodes,
            "dynamic_plan_nodes": self.dynamic_plan_nodes,
            "choose_plan_count": self.choose_plan_count,
            "static_stats": self.static_stats.as_dict(),
            "dynamic_stats": self.dynamic_stats.as_dict(),
            "avg_static_execution": self.avg_static_execution,
            "avg_dynamic_execution": self.avg_dynamic_execution,
            "avg_runtime_execution": self.avg_runtime_execution,
            "avg_runtime_optimization": self.avg_runtime_optimization,
            "avg_dynamic_startup_cpu": self.avg_dynamic_startup_cpu,
            "dynamic_cost_evaluations": self.dynamic_cost_evaluations,
            "invocations": len(self.dynamic_execution_costs),
        }


def run_experiment(
    query: ExperimentQuery,
    catalog: Catalog,
    bindings: Sequence[dict[str, float]],
    model: CostModel | None = None,
    include_runtime_optimization: bool = True,
) -> ExperimentRecord:
    """Run all of Section 6's measurements for one query.

    With a recording tracer installed, the whole run is wrapped in an
    ``experiment.query`` span (optimizer spans and chooser/executor
    events nest inside), and the finished record is emitted as an
    ``experiment.record`` event — so every figure's numbers are
    recoverable from the machine-readable trace alone.
    """
    tracer = get_tracer()
    if tracer.enabled:
        with tracer.span("experiment.query", query=query.label) as span:
            record = _run_experiment(
                query, catalog, bindings, model, include_runtime_optimization
            )
            span.set(invocations=len(bindings))
            tracer.event("experiment.record", **record.as_dict())
        return record
    return _run_experiment(
        query, catalog, bindings, model, include_runtime_optimization
    )


def _run_experiment(
    query: ExperimentQuery,
    catalog: Catalog,
    bindings: Sequence[dict[str, float]],
    model: CostModel | None,
    include_runtime_optimization: bool,
) -> ExperimentRecord:
    model = model if model is not None else CostModel()
    record = ExperimentRecord(
        query=query,
        logical_alternatives=query.graph.count_join_trees(),
    )

    static = optimize_query(
        query.graph, catalog, model, mode=OptimizationMode.STATIC
    )
    record.static_optimization_seconds = static.optimization_seconds
    record.static_modeled_optimization_seconds = static.modeled_optimization_seconds
    record.static_plan_nodes = static.plan_node_count
    record.static_stats = static.stats

    dynamic = optimize_query(
        query.graph, catalog, model, mode=OptimizationMode.DYNAMIC
    )
    record.dynamic_optimization_seconds = dynamic.optimization_seconds
    record.dynamic_modeled_optimization_seconds = dynamic.modeled_optimization_seconds
    record.dynamic_plan_nodes = dynamic.plan_node_count
    record.choose_plan_count = dynamic.choose_plan_count
    record.dynamic_stats = dynamic.stats

    for binding in bindings:
        env = query.graph.parameters.bind(binding)
        static_eval = resolve_plan(static.plan, static.ctx.with_env(env))
        record.static_execution_costs.append(static_eval.execution_cost)

        dynamic_eval = resolve_plan(dynamic.plan, dynamic.ctx.with_env(env))
        record.dynamic_execution_costs.append(dynamic_eval.execution_cost)
        record.dynamic_startup_cpu_seconds.append(dynamic_eval.cpu_seconds)
        record.dynamic_cost_evaluations = dynamic_eval.cost_evaluations

        if include_runtime_optimization:
            runtime = optimize_query(
                query.graph,
                catalog,
                model,
                mode=OptimizationMode.RUN_TIME,
                binding=binding,
            )
            record.runtime_optimization_seconds.append(
                runtime.optimization_seconds
            )
            record.runtime_modeled_optimization_seconds.append(
                runtime.modeled_optimization_seconds
            )
            record.runtime_execution_costs.append(runtime.plan.cost.low)
    return record


def _mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
