"""Plan diagrams: optimality regions of a dynamic plan over one parameter.

Parametric query optimization ([INS92], discussed in the paper's Section 3)
studies how the optimal plan partitions the parameter space into regions.
A dynamic plan embodies that partition implicitly: the choose-plan decision
procedure switches plans exactly at the cost crossovers.  This module makes
the partition explicit for a single parameter — the classic 1-D "plan
diagram" — by probing the decision function on a grid and refining each
boundary by bisection.

Besides being an analysis tool, the diagram quantifies dynamic-plan
structure: the number of regions equals the number of distinct effective
plans the dynamic plan actually uses along the swept axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BindingError
from repro.optimizer.optimizer import OptimizationResult
from repro.runtime.chooser import effective_plan_nodes, resolve_plan


@dataclass(frozen=True)
class PlanRegion:
    """One maximal interval of the swept parameter with a stable decision."""

    low: float
    high: float
    signature: tuple[int, ...]  # identities of the chosen alternatives
    description: str  # operator labels of the effective plan
    cost_low: float  # chosen plan cost at the region's low end
    cost_high: float  # chosen plan cost at the region's high end

    @property
    def width(self) -> float:
        """Length of the region."""
        return self.high - self.low


def selectivity_regions(
    result: OptimizationResult,
    parameter: str,
    fixed: dict[str, float] | None = None,
    grid: int = 64,
    tolerance: float = 1e-5,
) -> list[PlanRegion]:
    """Partition one parameter's domain by the dynamic plan's decisions.

    ``fixed`` pins every *other* parameter (required when the query has
    more than one).  ``grid`` initial probes locate decision changes;
    bisection then refines each boundary to ``tolerance``.
    """
    space = result.env.space
    declared = space.get(parameter)
    fixed = dict(fixed or {})
    for other in space:
        if other.name != parameter and other.name not in fixed:
            raise BindingError(
                f"parameter {other.name} must be fixed to sweep {parameter}"
            )

    def decide(value: float):
        binding = dict(fixed)
        binding[parameter] = value
        env = space.bind(binding)
        decision = resolve_plan(result.plan, result.ctx.with_env(env))
        signature = tuple(sorted(id(chosen) for chosen in decision.choices.values()))
        return signature, decision

    low, high = declared.domain.low, declared.domain.high
    if low == high:
        signature, decision = decide(low)
        return [
            _region(result, low, high, signature, decision, decision)
        ]

    points = [low + (high - low) * i / grid for i in range(grid + 1)]
    signatures = [decide(p) for p in points]

    regions: list[PlanRegion] = []
    start = points[0]
    start_decision = signatures[0][1]
    for i in range(1, len(points)):
        if signatures[i][0] == signatures[i - 1][0]:
            continue
        boundary = _bisect_boundary(
            decide, points[i - 1], points[i], signatures[i - 1][0], tolerance
        )
        regions.append(
            _region(
                result,
                start,
                boundary,
                signatures[i - 1][0],
                start_decision,
                signatures[i - 1][1],
            )
        )
        start = boundary
        start_decision = signatures[i][1]
    regions.append(
        _region(
            result, start, points[-1], signatures[-1][0], start_decision,
            signatures[-1][1],
        )
    )
    return regions


def decision_grid(
    result: OptimizationResult,
    x_parameter: str,
    y_parameter: str,
    fixed: dict[str, float] | None = None,
    steps: int = 24,
) -> tuple[list[list[int]], int]:
    """2-D plan diagram: decision-signature indices over two parameters.

    Returns ``(grid, distinct)`` where ``grid[row][col]`` is a small integer
    identifying the effective plan at that (y, x) cell — rows sweep
    ``y_parameter`` from high to low, columns sweep ``x_parameter`` from
    low to high — and ``distinct`` is the number of distinct plans seen.
    """
    space = result.env.space
    x_domain = space.get(x_parameter).domain
    y_domain = space.get(y_parameter).domain
    fixed = dict(fixed or {})
    for other in space:
        if other.name not in (x_parameter, y_parameter) and other.name not in fixed:
            raise BindingError(
                f"parameter {other.name} must be fixed for the 2-D grid"
            )

    signatures: dict[tuple, int] = {}
    grid: list[list[int]] = []
    for row in range(steps, 0, -1):
        y = y_domain.low + (y_domain.high - y_domain.low) * row / (steps + 1)
        line: list[int] = []
        for col in range(1, steps + 1):
            x = x_domain.low + (x_domain.high - x_domain.low) * col / (steps + 1)
            binding = dict(fixed)
            binding[x_parameter] = x
            binding[y_parameter] = y
            env = space.bind(binding)
            decision = resolve_plan(result.plan, result.ctx.with_env(env))
            signature = tuple(
                sorted(id(chosen) for chosen in decision.choices.values())
            )
            line.append(signatures.setdefault(signature, len(signatures)))
        grid.append(line)
    return grid, len(signatures)


def _bisect_boundary(decide, low, high, low_signature, tolerance) -> float:
    """Locate the decision switch between two grid points."""
    while high - low > tolerance:
        mid = (low + high) / 2
        if decide(mid)[0] == low_signature:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def _region(result, low, high, signature, low_decision, high_decision) -> PlanRegion:
    used = effective_plan_nodes(result.plan, high_decision.choices)
    description = " / ".join(
        node.label.split(" [")[0]
        for node in reversed(used)
        if not node.label.startswith("Choose-Plan")
    )
    return PlanRegion(
        low=low,
        high=high,
        signature=signature,
        description=description,
        cost_low=low_decision.execution_cost,
        cost_high=high_decision.execution_cost,
    )
