"""Text rendering of the figure data (paper-style tables).

The paper plots log-scale curves; we print the underlying series as aligned
tables, one row per query, so the shapes (who wins, by what factor, where
crossovers fall) are directly readable in benchmark output and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figures import (
    BreakEvenRow,
    Figure4Row,
    Figure5Row,
    Figure6Row,
    Figure7Row,
    Figure8Row,
)
from repro.util.fmt import format_table


def render_figure4(rows: Sequence[Figure4Row]) -> str:
    """Figure 4: execution times of static and dynamic plans."""
    return format_table(
        ["query", "uncertain", "static c̄ [s]", "dynamic ḡ [s]", "speedup"],
        [
            (r.label, r.uncertain_variables, r.static_avg_execution,
             r.dynamic_avg_execution, r.speedup)
            for r in rows
        ],
        title="Figure 4 — average execution time over N random bindings",
    )


def render_figure5(rows: Sequence[Figure5Row]) -> str:
    """Figure 5: optimization times for static and dynamic plans."""
    return format_table(
        ["query", "uncertain", "static a [s]", "dynamic e [s]", "e/a"],
        [
            (r.label, r.uncertain_variables, r.static_seconds,
             r.dynamic_seconds, r.ratio)
            for r in rows
        ],
        title="Figure 5 — measured optimization time",
    )


def render_figure6(rows: Sequence[Figure6Row]) -> str:
    """Figure 6: plan sizes in operator nodes."""
    return format_table(
        ["query", "uncertain", "static nodes", "dynamic nodes", "choose-plans"],
        [
            (r.label, r.uncertain_variables, r.static_nodes,
             r.dynamic_nodes, r.choose_plan_nodes)
            for r in rows
        ],
        title="Figure 6 — plan sizes (DAG operator nodes)",
    )


def render_figure7(rows: Sequence[Figure7Row]) -> str:
    """Figure 7: start-up CPU times for dynamic plans."""
    return format_table(
        ["query", "uncertain", "decision CPU [s]", "cost evals", "module I/O [s]"],
        [
            (r.label, r.uncertain_variables, r.startup_cpu_seconds,
             r.cost_evaluations, r.activation_io_seconds)
            for r in rows
        ],
        title="Figure 7 — dynamic-plan start-up (measured CPU, modeled I/O)",
    )


def render_figure8(rows: Sequence[Figure8Row]) -> str:
    """Figure 8: run-time optimization versus dynamic plans."""
    return format_table(
        ["query", "uncertain", "run-time opt ā+d̄ [s]", "dynamic f̄+ḡ [s]",
         "ratio", "break-even N"],
        [
            (r.label, r.uncertain_variables, r.runtime_opt_seconds,
             r.dynamic_seconds, r.ratio,
             r.break_even if r.break_even is not None else "never")
            for r in rows
        ],
        title="Figure 8 — per-invocation run-time effort",
    )


def render_break_even(rows: Sequence[BreakEvenRow]) -> str:
    """Section 6 break-even table."""
    return format_table(
        ["query", "uncertain", "vs static", "vs run-time opt"],
        [
            (r.label, r.uncertain_variables,
             r.vs_static if r.vs_static is not None else "never",
             r.vs_runtime if r.vs_runtime is not None else "never")
            for r in rows
        ],
        title="Break-even invocation counts (paper: 1 vs static, 2-4 vs run-time)",
    )
