"""Row generators for every figure of the paper's evaluation.

Each ``figureN_rows`` function turns :class:`ExperimentRecord` lists into
the series the corresponding paper figure plots; ``repro.experiments.report``
renders them as text tables.  Records with and without the uncertain-memory
parameter supply the two curve families of Figures 4–7 (circles vs squares
in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.cost.model import CostModel
from repro.experiments.harness import ExperimentRecord


@dataclass(frozen=True)
class Figure4Row:
    """Average execution time, static vs dynamic (Figure 4)."""

    label: str
    uncertain_variables: int
    static_avg_execution: float  # c̄
    dynamic_avg_execution: float  # ḡ
    speedup: float  # c̄ / ḡ — the paper reports factors 5 → 24


def figure4_rows(records: Sequence[ExperimentRecord]) -> list[Figure4Row]:
    """One row per query: average predicted execution costs over N bindings."""
    rows = []
    for record in records:
        static_avg = record.avg_static_execution
        dynamic_avg = record.avg_dynamic_execution
        rows.append(
            Figure4Row(
                label=record.query.label,
                uncertain_variables=record.uncertain_variables,
                static_avg_execution=static_avg,
                dynamic_avg_execution=dynamic_avg,
                speedup=static_avg / dynamic_avg if dynamic_avg else math.inf,
            )
        )
    return rows


@dataclass(frozen=True)
class Figure5Row:
    """Optimization time, static vs dynamic (Figure 5)."""

    label: str
    uncertain_variables: int
    static_seconds: float  # a
    dynamic_seconds: float  # e
    ratio: float  # e / a — the paper's worst case is < 3


def figure5_rows(records: Sequence[ExperimentRecord]) -> list[Figure5Row]:
    """One row per query: measured optimization times."""
    rows = []
    for record in records:
        rows.append(
            Figure5Row(
                label=record.query.label,
                uncertain_variables=record.uncertain_variables,
                static_seconds=record.static_optimization_seconds,
                dynamic_seconds=record.dynamic_optimization_seconds,
                ratio=(
                    record.dynamic_optimization_seconds
                    / record.static_optimization_seconds
                    if record.static_optimization_seconds
                    else math.inf
                ),
            )
        )
    return rows


@dataclass(frozen=True)
class Figure6Row:
    """Plan sizes in operator nodes (Figure 6)."""

    label: str
    uncertain_variables: int
    static_nodes: int
    dynamic_nodes: int
    choose_plan_nodes: int


def figure6_rows(records: Sequence[ExperimentRecord]) -> list[Figure6Row]:
    """One row per query: DAG node counts of both plans."""
    return [
        Figure6Row(
            label=record.query.label,
            uncertain_variables=record.uncertain_variables,
            static_nodes=record.static_plan_nodes,
            dynamic_nodes=record.dynamic_plan_nodes,
            choose_plan_nodes=record.choose_plan_count,
        )
        for record in records
    ]


@dataclass(frozen=True)
class Figure7Row:
    """Start-up CPU time of dynamic plans (Figure 7)."""

    label: str
    uncertain_variables: int
    startup_cpu_seconds: float  # measured decision CPU per start-up
    cost_evaluations: int  # one per distinct DAG node (sharing!)
    activation_io_seconds: float  # modeled module read + validation


def figure7_rows(
    records: Sequence[ExperimentRecord], model: CostModel
) -> list[Figure7Row]:
    """One row per query: measured decision CPU plus modeled module I/O."""
    return [
        Figure7Row(
            label=record.query.label,
            uncertain_variables=record.uncertain_variables,
            startup_cpu_seconds=record.avg_dynamic_startup_cpu,
            cost_evaluations=record.dynamic_cost_evaluations,
            activation_io_seconds=record.dynamic_activation_io_seconds(model),
        )
        for record in records
    ]


@dataclass(frozen=True)
class Figure8Row:
    """Per-invocation run-time effort: run-time opt vs dynamic (Figure 8).

    All quantities are in deterministic model time: optimization and
    decision effort are counted work × the cost model's calibration
    constants; execution and module I/O come from the analytic model.
    """

    label: str
    uncertain_variables: int
    runtime_opt_seconds: float  # ā + d̄
    dynamic_seconds: float  # f̄ + ḡ
    ratio: float  # the paper reports > 2 for query 5
    break_even: int | None  # ⌈e / (ā − f̄)⌉, paper: 2–4


def figure8_rows(
    records: Sequence[ExperimentRecord],
    model: CostModel,
) -> list[Figure8Row]:
    """One row per query: the Figure 8 comparison plus break-even points."""
    rows = []
    for record in records:
        if not record.runtime_modeled_optimization_seconds:
            raise ValueError(
                f"record for {record.query.label} lacks run-time optimization "
                "measurements; run the harness with "
                "include_runtime_optimization=True"
            )
        runtime_total = (
            record.avg_runtime_modeled_optimization + record.avg_runtime_execution
        )
        startup = (
            record.dynamic_activation_io_seconds(model)
            + record.modeled_startup_cpu_seconds(model)
        )
        dynamic_total = startup + record.avg_dynamic_execution
        dynamic_compile = record.dynamic_modeled_optimization_seconds
        gain = runtime_total - dynamic_total
        break_even = max(1, math.ceil(dynamic_compile / gain)) if gain > 0 else None
        rows.append(
            Figure8Row(
                label=record.query.label,
                uncertain_variables=record.uncertain_variables,
                runtime_opt_seconds=runtime_total,
                dynamic_seconds=dynamic_total,
                ratio=runtime_total / dynamic_total if dynamic_total else math.inf,
                break_even=break_even,
            )
        )
    return rows


@dataclass(frozen=True)
class BreakEvenRow:
    """Break-even invocation counts (Section 6)."""

    label: str
    uncertain_variables: int
    vs_static: int | None  # paper: consistently 1
    vs_runtime: int | None  # paper: 2–4


def break_even_rows(
    records: Sequence[ExperimentRecord],
    model: CostModel,
) -> list[BreakEvenRow]:
    """Break-even points of dynamic plans vs both alternatives (model time)."""
    rows = []
    for record in records:
        dynamic_compile = record.dynamic_modeled_optimization_seconds
        static_compile = record.static_modeled_optimization_seconds
        dynamic_per_invocation = (
            record.dynamic_activation_io_seconds(model)
            + record.modeled_startup_cpu_seconds(model)
            + record.avg_dynamic_execution
        )
        static_per_invocation = (
            record.static_activation_io_seconds(model)
            + record.avg_static_execution
        )
        gain_vs_static = static_per_invocation - dynamic_per_invocation
        vs_static = (
            max(1, math.ceil((dynamic_compile - static_compile) / gain_vs_static))
            if gain_vs_static > 0
            else None
        )

        vs_runtime: int | None = None
        if record.runtime_modeled_optimization_seconds:
            runtime_per_invocation = (
                record.avg_runtime_modeled_optimization
                + record.avg_runtime_execution
            )
            gain_vs_runtime = runtime_per_invocation - dynamic_per_invocation
            vs_runtime = (
                max(1, math.ceil(dynamic_compile / gain_vs_runtime))
                if gain_vs_runtime > 0
                else None
            )
        rows.append(
            BreakEvenRow(
                label=record.query.label,
                uncertain_variables=record.uncertain_variables,
                vs_static=vs_static,
                vs_runtime=vs_runtime,
            )
        )
    return rows
