"""Catalog generation matching the paper's Section 6 setup.

"The number of records in each relation varied from 100 to 1,000 ...  All
relations had a record length of 512 bytes.  Attribute domain sizes varied
from 0.2 to 1.25 times the respective relation's cardinality.  Attributes
referenced by the unbound selection predicates as well as all join
attributes had unclustered B-tree structures."
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.util.rng import make_rng

SELECTION_ATTRIBUTE = "a"  # carries each query's unbound predicate
JOIN_IN_ATTRIBUTE = "j"  # joined with the previous relation's k
JOIN_OUT_ATTRIBUTE = "k"  # joined with the next relation's j

MIN_CARDINALITY = 100
MAX_CARDINALITY = 1000
RECORD_BYTES = 512
# The paper: "attribute domain sizes varied from 0.2 to 1.25 times the
# respective relation's cardinality."  Selection attributes draw from the
# full range; join attributes draw from the lower part of it so that join
# fan-outs exceed one and selectivity misestimates compound with join depth
# — the behaviour behind the paper's growing static/dynamic execution gap
# (Figure 4, factors 5 → 24).
SELECTION_DOMAIN_LOW = 0.2
SELECTION_DOMAIN_HIGH = 1.25
JOIN_DOMAIN_LOW = 0.2
JOIN_DOMAIN_HIGH = 0.5


def relation_name(index: int) -> str:
    """Name of the i-th experiment relation (R1, R2, ...)."""
    return f"R{index + 1}"


def make_experiment_catalog(n_relations: int = 10, seed: int = 7) -> Catalog:
    """Build the shared experiment catalog.

    Each relation ``R<i>`` has a selection attribute ``a`` and chain-join
    attributes ``j``/``k``, all with unclustered B-tree indexes.
    Deterministic given ``seed``.
    """
    rng = make_rng(seed)
    catalog = Catalog()
    for i in range(n_relations):
        name = relation_name(i)
        cardinality = rng.randint(MIN_CARDINALITY, MAX_CARDINALITY)
        attributes = []
        for attr, low, high in (
            (SELECTION_ATTRIBUTE, SELECTION_DOMAIN_LOW, SELECTION_DOMAIN_HIGH),
            (JOIN_IN_ATTRIBUTE, JOIN_DOMAIN_LOW, JOIN_DOMAIN_HIGH),
            (JOIN_OUT_ATTRIBUTE, JOIN_DOMAIN_LOW, JOIN_DOMAIN_HIGH),
        ):
            factor = rng.uniform(low, high)
            domain = max(2, int(cardinality * factor))
            attributes.append((attr, domain))
        catalog.add_relation(
            name, attributes, cardinality=cardinality, record_bytes=RECORD_BYTES
        )
        for attr, _ in attributes:
            catalog.create_index(f"{name}_{attr}", name, attr, clustered=False)
    return catalog
