"""Aggregation: GROUP BY and aggregate functions (engine extension).

Table 1 stops at select-project-join; a usable engine also needs
aggregation, and it enriches the dynamic-plan story: the two physical
implementations (hash aggregation vs sorted aggregation over an ordered
input) trade off exactly like the paper's join algorithms, so uncertain
input cardinalities put a choose-plan on top of the aggregate as well.

An :class:`AggregateSpec` describes one aggregation step: the grouping
attributes and the aggregate expressions.  Output rows carry the grouping
attributes first (in spec order) followed by one synthetic attribute per
aggregate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.catalog.schema import Attribute
from repro.errors import OptimizationError

AGGREGATE_RELATION = "<agg>"  # synthetic relation name for result columns


class AggregateFunction(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True, slots=True)
class AggregateExpr:
    """One aggregate: ``COUNT(*)`` (attribute None) or ``FUNC(attribute)``."""

    function: AggregateFunction
    attribute: Attribute | None = None

    def __post_init__(self) -> None:
        if self.attribute is None and self.function is not AggregateFunction.COUNT:
            raise OptimizationError(
                f"{self.function.value.upper()} requires an attribute argument"
            )

    @property
    def output_name(self) -> str:
        """Column name of the aggregate in the result schema."""
        if self.attribute is None:
            return "count"
        return f"{self.function.value}_{self.attribute.relation}_{self.attribute.name}"

    def output_attribute(self) -> Attribute:
        """Synthetic result attribute for this aggregate."""
        return Attribute(AGGREGATE_RELATION, self.output_name, 1)

    def __str__(self) -> str:
        arg = "*" if self.attribute is None else self.attribute.qualified_name
        return f"{self.function.value.upper()}({arg})"


@dataclass(frozen=True)
class AggregateSpec:
    """Grouping attributes plus aggregate expressions."""

    group_by: tuple[Attribute, ...]
    aggregates: tuple[AggregateExpr, ...]

    def __post_init__(self) -> None:
        if not self.aggregates and not self.group_by:
            raise OptimizationError("aggregation needs group-by keys or aggregates")
        names = [e.output_name for e in self.aggregates]
        if len(set(names)) != len(names):
            raise OptimizationError(f"duplicate aggregate expressions: {names}")

    @property
    def input_attributes(self) -> tuple[Attribute, ...]:
        """Every base attribute the aggregation reads."""
        result = list(self.group_by)
        for expr in self.aggregates:
            if expr.attribute is not None:
                result.append(expr.attribute)
        return tuple(result)

    def output_attributes(self) -> tuple[Attribute, ...]:
        """Result schema: group keys first, then one column per aggregate."""
        return self.group_by + tuple(
            expr.output_attribute() for expr in self.aggregates
        )

    def __str__(self) -> str:
        keys = ", ".join(a.qualified_name for a in self.group_by) or "-"
        funcs = ", ".join(map(str, self.aggregates)) or "-"
        return f"group by [{keys}] compute [{funcs}]"
