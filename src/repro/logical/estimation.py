"""Selectivity estimation combining parameters, histograms, and defaults.

Resolution order for a selection predicate:

1. **Host variable** — the selectivity is an uncertain *parameter*; read it
   from the environment (an interval at compile time, a point at start-up).
   This is the paper's core case.
2. **Literal with a histogram** — estimate from the attribute's equi-depth
   histogram (built by ``Database.analyze()``).
3. **Literal without statistics** — the classic System R defaults
   (1/domain for equality, 1/3 for ranges).

Both the optimizer (plan-node costing, group cardinalities) and the
start-up decision procedure estimate through this single function, so
compile-time and start-up-time calculations always agree.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.logical.predicates import CompareOp, HostVariable, SelectionPredicate
from repro.params.parameter import Environment
from repro.util.interval import Interval


def estimate_selectivity(
    predicate: SelectionPredicate, env: Environment, catalog: Catalog
) -> Interval:
    """Estimated selectivity of ``predicate`` under ``env`` and statistics."""
    if isinstance(predicate.operand, HostVariable):
        return env.interval(predicate.operand.selectivity_parameter)

    histogram = catalog.histogram(predicate.attribute)
    if histogram is None:
        return predicate.selectivity(env)

    value = predicate.operand.value
    if not isinstance(value, (int, float)):
        return predicate.selectivity(env)

    op = predicate.op
    if op is CompareOp.EQ:
        return Interval.point(histogram.equality_selectivity())
    if op is CompareOp.NE:
        return Interval.point(1.0 - histogram.equality_selectivity())
    if op is CompareOp.LT:
        return Interval.point(histogram.selectivity_between(None, value, True, False))
    if op is CompareOp.LE:
        return Interval.point(histogram.selectivity_between(None, value, True, True))
    if op is CompareOp.GT:
        return Interval.point(histogram.selectivity_between(value, None, False, True))
    return Interval.point(histogram.selectivity_between(value, None, True, True))
