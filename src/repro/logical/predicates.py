"""Predicates: selections (possibly unbound) and equijoins.

A selection predicate compares an attribute against either a
:class:`Literal` (its selectivity is estimable at compile time) or a
:class:`HostVariable` (its selectivity is an uncertain parameter resolved
only at start-up time — the paper's motivating case).

Join predicates are equijoins; their selectivity follows the paper's
Section 6 convention: output = cross product divided by the larger of the
two join attributes' domain sizes, i.e. selectivity = 1 / max(domains).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Union

from repro.catalog.schema import Attribute
from repro.errors import BindingError
from repro.params.parameter import Environment
from repro.util.interval import Interval


class CompareOp(enum.Enum):
    """Comparison operators supported in selection predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, left: object, right: object) -> bool:
        """Apply the comparison to two concrete values."""
        if self is CompareOp.EQ:
            return left == right
        if self is CompareOp.NE:
            return left != right
        if self is CompareOp.LT:
            return left < right  # type: ignore[operator]
        if self is CompareOp.LE:
            return left <= right  # type: ignore[operator]
        if self is CompareOp.GT:
            return left > right  # type: ignore[operator]
        return left >= right  # type: ignore[operator]

    @property
    def is_range(self) -> bool:
        """True for operators a B-tree range scan can serve directly."""
        return self is not CompareOp.NE


@dataclass(frozen=True, slots=True)
class Literal:
    """A constant known at compile time."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class HostVariable:
    """An embedded-query user variable, bound only at start-up time.

    ``selectivity_parameter`` names the uncertain parameter (declared in the
    query's :class:`~repro.params.parameter.ParameterSpace`) that models the
    predicate's unknown selectivity.
    """

    name: str
    selectivity_parameter: str

    def __str__(self) -> str:
        return f":{self.name}"


Operand = Union[Literal, HostVariable]

# Default selectivity of a range predicate over a literal, the classic
# System R magic number.
RANGE_PREDICATE_DEFAULT_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True, slots=True)
class SelectionPredicate:
    """``attribute <op> operand`` over a single relation."""

    attribute: Attribute
    op: CompareOp
    operand: Operand

    @property
    def is_unbound(self) -> bool:
        """True when the operand is a host variable (selectivity uncertain)."""
        return isinstance(self.operand, HostVariable)

    @property
    def relation(self) -> str:
        """Name of the relation the predicate restricts."""
        return self.attribute.relation

    def selectivity(self, env: Environment) -> Interval:
        """Estimated selectivity under ``env``.

        Unbound predicates read their selectivity parameter from the
        environment: an interval at compile time, a point at start-up.
        Literal predicates use standard static estimates.
        """
        if isinstance(self.operand, HostVariable):
            return env.interval(self.operand.selectivity_parameter)
        if self.op is CompareOp.EQ:
            return Interval.point(1.0 / self.attribute.domain_size)
        if self.op is CompareOp.NE:
            return Interval.point(1.0 - 1.0 / self.attribute.domain_size)
        return Interval.point(RANGE_PREDICATE_DEFAULT_SELECTIVITY)

    def evaluate(self, value: object, bindings: Mapping[str, object]) -> bool:
        """Evaluate the predicate on a concrete attribute value.

        ``bindings`` maps host-variable names to their run-time values;
        literal predicates ignore it.
        """
        if isinstance(self.operand, HostVariable):
            if self.operand.name not in bindings:
                raise BindingError(
                    f"host variable :{self.operand.name} is unbound"
                )
            other = bindings[self.operand.name]
        else:
            other = self.operand.value
        return self.op.evaluate(value, other)

    def __str__(self) -> str:
        return f"{self.attribute} {self.op.value} {self.operand}"


@dataclass(frozen=True, slots=True)
class JoinPredicate:
    """Equijoin predicate ``left = right`` between two relations."""

    left: Attribute
    right: Attribute

    def __post_init__(self) -> None:
        if self.left.relation == self.right.relation:
            raise BindingError(
                f"join predicate must span two relations, both sides are "
                f"{self.left.relation}"
            )

    @property
    def relations(self) -> frozenset[str]:
        """The two relations the predicate connects."""
        return frozenset((self.left.relation, self.right.relation))

    def selectivity(self) -> Interval:
        """1 / max(domain sizes), the paper's join-selectivity model."""
        return Interval.point(
            1.0 / max(self.left.domain_size, self.right.domain_size)
        )

    def attribute_for(self, relation: str) -> Attribute:
        """The side of the predicate belonging to ``relation``."""
        if self.left.relation == relation:
            return self.left
        if self.right.relation == relation:
            return self.right
        raise BindingError(
            f"join predicate {self} does not involve relation {relation}"
        )

    def connects(self, left_relations: frozenset[str], right_relations: frozenset[str]) -> bool:
        """True when the predicate spans the two relation sets."""
        sides = self.relations
        left_side = sides & left_relations
        right_side = sides & right_relations
        return bool(left_side) and bool(right_side)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"
