"""Compound statements: SPJU queries with outer joins and subqueries.

A :class:`Statement` composes one or more select-project-join *branches*
(each an ordinary :class:`~repro.logical.query.QueryGraph`) with the
statement-level operators the Volcano search engine does not enumerate:

* **UNION / UNION ALL** over branches of equal projection arity,
* a trailing **LEFT OUTER JOIN** extending a branch's core output,
* **IN / EXISTS subqueries** rewritten to semi-joins against a
  single-relation subquery.

The composition structure above the branch cores is *fixed* — no
choose-plan alternatives are introduced at this level — which is what
keeps the paper's ∀i gᵢ = dᵢ invariant compositional: under a bound
environment every branch alternative computes identical cardinalities,
so the composition cost is a deterministic function of the branch
optima (see :mod:`repro.optimizer.statement`).

All branches share a single :class:`~repro.params.parameter.ParameterSpace`
so one run-time binding covers the whole statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Attribute
from repro.errors import OptimizationError
from repro.logical.predicates import SelectionPredicate
from repro.logical.query import QueryGraph
from repro.params.parameter import ParameterSpace


@dataclass(frozen=True)
class SemiJoin:
    """One IN/EXISTS subquery rewritten as a semi-join.

    ``outer_attr IN (SELECT inner_attr FROM inner_relation WHERE
    selections)``; EXISTS with a single correlated equality is the same
    semi-join.  Output rows are outer rows with at least one match — the
    unary-key upper bound (at most one output per outer row) holds by
    construction, independent of key declarations.
    """

    outer_attr: Attribute
    inner_relation: str
    inner_attr: Attribute
    selections: tuple[SelectionPredicate, ...] = ()
    style: str = "in"  # "in" | "exists": SQL surface only, same semantics

    def __post_init__(self) -> None:
        if self.inner_attr.relation != self.inner_relation:
            raise OptimizationError(
                f"semi-join attribute {self.inner_attr.qualified_name} is "
                f"not from subquery relation {self.inner_relation}"
            )
        for predicate in self.selections:
            if predicate.relation != self.inner_relation:
                raise OptimizationError(
                    f"subquery predicate {predicate} is not on "
                    f"{self.inner_relation}"
                )


@dataclass(frozen=True)
class OuterJoin:
    """A trailing LEFT OUTER JOIN: preserve every core row, pad misses.

    ``... FROM core LEFT OUTER JOIN right_relation ON left_attr =
    right_attr``.  The right side carries no WHERE predicates (they would
    change outer-join semantics); its access path is optimized
    independently.
    """

    left_attr: Attribute
    right_relation: str
    right_attr: Attribute

    def __post_init__(self) -> None:
        if self.right_attr.relation != self.right_relation:
            raise OptimizationError(
                f"outer-join attribute {self.right_attr.qualified_name} is "
                f"not from {self.right_relation}"
            )


@dataclass(frozen=True)
class StatementBranch:
    """One SELECT block: an SPJ core plus its statement-level extensions.

    ``graph`` is the core the join-order search optimizes; it carries no
    projection of its own when the branch is part of a compound statement
    (``projection`` below is applied *above* the semi/outer operators,
    because it may reference the outer-joined relation).
    """

    graph: QueryGraph
    semijoins: tuple[SemiJoin, ...] = ()
    outer: OuterJoin | None = None
    projection: tuple[Attribute, ...] | None = None

    def __post_init__(self) -> None:
        core = set(self.graph.relations)
        extended = set(core)
        for semijoin in self.semijoins:
            if semijoin.outer_attr.relation not in core:
                raise OptimizationError(
                    f"semi-join outer attribute "
                    f"{semijoin.outer_attr.qualified_name} is outside the "
                    "branch's FROM list"
                )
            if semijoin.inner_relation in extended:
                raise OptimizationError(
                    f"subquery relation {semijoin.inner_relation} already "
                    "appears in the branch"
                )
        if self.outer is not None:
            if self.outer.left_attr.relation not in core:
                raise OptimizationError(
                    f"outer-join left attribute "
                    f"{self.outer.left_attr.qualified_name} is outside the "
                    "branch's FROM list"
                )
            if self.outer.right_relation in core:
                raise OptimizationError(
                    f"outer-join relation {self.outer.right_relation} "
                    "already appears in the branch"
                )
            extended.add(self.outer.right_relation)
        if self.projection is not None:
            for attribute in self.projection:
                if attribute.relation not in extended:
                    raise OptimizationError(
                        f"projected attribute {attribute.qualified_name} is "
                        "outside the branch's relations"
                    )

    @property
    def is_plain(self) -> bool:
        """True when the branch is a bare SPJ core (no extensions)."""
        return not self.semijoins and self.outer is None

    def output_relations(self) -> tuple[str, ...]:
        """Relations visible in the branch output, in schema order."""
        relations = tuple(self.graph.relations)
        if self.outer is not None:
            relations += (self.outer.right_relation,)
        return relations


@dataclass(frozen=True)
class Statement:
    """A full statement: branches, UNION mode, and presentation order."""

    branches: tuple[StatementBranch, ...]
    union_all: bool = True
    parameters: ParameterSpace = field(default_factory=ParameterSpace)
    order_by: Attribute | None = None
    order_by_rest: tuple[Attribute, ...] = ()

    def __post_init__(self) -> None:
        if not self.branches:
            raise OptimizationError("statement needs at least one branch")
        if self.order_by_rest and self.order_by is None:
            raise OptimizationError(
                "order_by_rest requires a leading order_by attribute"
            )
        if len(self.branches) > 1:
            arities = set()
            for branch in self.branches:
                if branch.projection is None:
                    raise OptimizationError(
                        "UNION branches must name their output columns"
                    )
                arities.add(len(branch.projection))
            if len(arities) != 1:
                raise OptimizationError(
                    f"UNION branches have mismatched arities {sorted(arities)}"
                )
            first = self.branches[0].projection or ()
            for key in self.order_by_keys:
                if key not in first:
                    raise OptimizationError(
                        f"ORDER BY {key.qualified_name} must be "
                        "projected by the first UNION branch"
                    )

    @property
    def order_by_keys(self) -> tuple[Attribute, ...]:
        """All ORDER BY attributes (leading key first), () when unordered."""
        if self.order_by is None:
            return ()
        return (self.order_by,) + self.order_by_rest

    @property
    def is_simple(self) -> bool:
        """True for a single plain SPJ branch — the legacy query shape."""
        return len(self.branches) == 1 and self.branches[0].is_plain

    @property
    def is_compound(self) -> bool:
        return not self.is_simple

    def output_attributes(self) -> tuple[Attribute, ...] | None:
        """The statement's projection (branch 0's), or None for SELECT *."""
        return self.branches[0].projection
