"""Logical algebra operators (Table 1: Get-Set, Select, Join).

Logical expressions are immutable trees built by applications (directly or
through the SQL front end) and handed to the optimizer, which normalizes
them into a :class:`~repro.logical.query.QueryGraph` before searching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logical.predicates import JoinPredicate, SelectionPredicate


class LogicalExpr:
    """Base class of logical algebra expressions."""

    @property
    def children(self) -> tuple["LogicalExpr", ...]:
        """Input expressions, outermost first."""
        raise NotImplementedError

    @property
    def relations(self) -> frozenset[str]:
        """Names of all base relations referenced below this expression."""
        result: set[str] = set()
        stack: list[LogicalExpr] = [self]
        while stack:
            expr = stack.pop()
            if isinstance(expr, GetSet):
                result.add(expr.relation)
            else:
                stack.extend(expr.children)
        return frozenset(result)


@dataclass(frozen=True, slots=True)
class GetSet(LogicalExpr):
    """Retrieve a stored relation (the paper's Get-Set operator)."""

    relation: str

    @property
    def children(self) -> tuple[LogicalExpr, ...]:
        return ()

    def __str__(self) -> str:
        return f"Get-Set {self.relation}"


@dataclass(frozen=True, slots=True)
class Select(LogicalExpr):
    """Filter the input by one selection predicate."""

    input: LogicalExpr
    predicate: SelectionPredicate

    @property
    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.input,)

    def __str__(self) -> str:
        return f"Select[{self.predicate}]"


@dataclass(frozen=True, slots=True)
class Join(LogicalExpr):
    """Equijoin of two inputs."""

    left: LogicalExpr
    right: LogicalExpr
    predicate: JoinPredicate

    @property
    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"Join[{self.predicate}]"


@dataclass(frozen=True, slots=True)
class Project(LogicalExpr):
    """Restrict the output to the given attributes (Table 1's Project).

    Projection is not duplicate-eliminating (SQL semantics).  Normalization
    hoists it to the query root; only a root projection is meaningful in a
    select-project-join query.
    """

    input: LogicalExpr
    attributes: tuple

    @property
    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.input,)

    def __str__(self) -> str:
        names = ", ".join(a.qualified_name for a in self.attributes)
        return f"Project[{names}]"
