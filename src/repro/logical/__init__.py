"""Logical algebra: the optimizer's input language.

Queries are trees of Get-Set / Select / Join operators (Table 1 of the
paper) over predicates that may reference *host variables* — the unbound
user variables of embedded SQL whose selectivities are unknown until
start-up time.  :func:`repro.logical.query.normalize` flattens a logical
tree into the :class:`repro.logical.query.QueryGraph` form the search
engine enumerates over.
"""

from repro.logical.predicates import (
    CompareOp,
    HostVariable,
    JoinPredicate,
    Literal,
    SelectionPredicate,
)
from repro.logical.aggregates import (
    AggregateExpr,
    AggregateFunction,
    AggregateSpec,
)
from repro.logical.algebra import GetSet, Join, LogicalExpr, Project, Select
from repro.logical.query import QueryGraph, normalize

__all__ = [
    "AggregateExpr",
    "AggregateFunction",
    "AggregateSpec",
    "CompareOp",
    "HostVariable",
    "JoinPredicate",
    "Literal",
    "SelectionPredicate",
    "GetSet",
    "Join",
    "LogicalExpr",
    "Project",
    "Select",
    "QueryGraph",
    "normalize",
]
