"""Query normalization: logical trees → query graphs.

The search engine enumerates join orders over a *query graph*: the set of
base relations, the selection predicates pushed down to each relation, and
the equijoin predicates connecting them.  For select-project-join queries
this graph is exactly the transformation closure that Volcano's join
commutativity + associativity rules would generate, so enumerating
connected partitions of relation subsets explores the same logical plan
space ("all bushy trees", Section 5) without materializing every rewritten
expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import OptimizationError
from repro.logical.algebra import GetSet, Join, LogicalExpr, Project, Select
from repro.logical.predicates import JoinPredicate, SelectionPredicate
from repro.params.parameter import ParameterSpace


@dataclass(frozen=True)
class QueryGraph:
    """A normalized select-project-join query.

    ``selections`` maps each relation name to the (possibly empty) tuple of
    selection predicates on it; ``joins`` holds all equijoin predicates.
    ``parameters`` declares the uncertain parameters the predicates (and
    optionally memory) reference.
    """

    relations: tuple[str, ...]
    selections: dict[str, tuple[SelectionPredicate, ...]] = field(default_factory=dict)
    joins: tuple[JoinPredicate, ...] = ()
    parameters: ParameterSpace = field(default_factory=ParameterSpace)
    projection: tuple | None = None  # Attributes to keep at the root, or all
    aggregate: object | None = None  # AggregateSpec, applied at the root

    def __post_init__(self) -> None:
        if not self.relations:
            raise OptimizationError("query must reference at least one relation")
        if len(set(self.relations)) != len(self.relations):
            raise OptimizationError("duplicate relation in query")
        known = set(self.relations)
        for relation, predicates in self.selections.items():
            if relation not in known:
                raise OptimizationError(
                    f"selection on {relation}, which the query does not reference"
                )
            for predicate in predicates:
                if predicate.relation != relation:
                    raise OptimizationError(
                        f"predicate {predicate} filed under relation {relation}"
                    )
        for join in self.joins:
            if not join.relations <= known:
                raise OptimizationError(
                    f"join predicate {join} references relations outside the query"
                )
        if self.projection is not None:
            if not self.projection:
                raise OptimizationError("projection must keep at least one attribute")
            for attribute in self.projection:
                if attribute.relation not in known:
                    raise OptimizationError(
                        f"projected attribute {attribute.qualified_name} is "
                        "outside the query's relations"
                    )
        if self.aggregate is not None:
            if self.projection is not None:
                raise OptimizationError(
                    "aggregate queries define their own output columns; "
                    "projection must be None"
                )
            for attribute in self.aggregate.input_attributes:
                if attribute.relation not in known:
                    raise OptimizationError(
                        f"aggregated attribute {attribute.qualified_name} is "
                        "outside the query's relations"
                    )

    @property
    def relation_set(self) -> frozenset[str]:
        """All relations as a frozenset (the root memo group)."""
        return frozenset(self.relations)

    def selections_on(self, relation: str) -> tuple[SelectionPredicate, ...]:
        """Selection predicates pushed down to ``relation``."""
        return self.selections.get(relation, ())

    def joins_within(self, subset: frozenset[str]) -> list[JoinPredicate]:
        """Join predicates both of whose relations lie inside ``subset``."""
        return [j for j in self.joins if j.relations <= subset]

    def joins_between(
        self, left: frozenset[str], right: frozenset[str]
    ) -> list[JoinPredicate]:
        """Join predicates connecting the two disjoint relation sets."""
        return [j for j in self.joins if j.connects(left, right)]

    def is_connected(self, subset: frozenset[str]) -> bool:
        """True when ``subset`` induces a connected join subgraph."""
        if len(subset) <= 1:
            return True
        adjacency: dict[str, set[str]] = {r: set() for r in subset}
        for join in self.joins_within(subset):
            a, b = tuple(join.relations)
            adjacency[a].add(b)
            adjacency[b].add(a)
        start = next(iter(subset))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen == subset

    def count_join_trees(self) -> int:
        """Number of logical bushy join trees without cross products.

        This is the "number of logical alternative plans" statistic the
        paper reports per query (Section 6); the exact value depends on the
        join graph shape (chains here), so our counts document our own
        search space rather than matching the paper's unspecified graphs.
        """

        @lru_cache(maxsize=None)
        def trees(subset: frozenset[str]) -> int:
            if len(subset) == 1:
                return 1
            total = 0
            for left, right in enumerate_partitions(subset):
                if not self.joins_between(left, right):
                    continue
                if not (self.is_connected(left) and self.is_connected(right)):
                    continue
                total += trees(left) * trees(right)
            return total

        return trees(self.relation_set)


def enumerate_partitions(
    subset: frozenset[str],
) -> list[tuple[frozenset[str], frozenset[str]]]:
    """All ordered two-way partitions of ``subset`` (both (L,R) and (R,L)).

    Ordered enumeration realizes join commutativity: every partition is
    produced twice with sides swapped, so each join algorithm need only be
    instantiated with its inputs in the given order.
    """
    members = sorted(subset)
    n = len(members)
    partitions: list[tuple[frozenset[str], frozenset[str]]] = []
    # Bitmask enumeration over proper non-empty subsets; each mask and its
    # complement appear separately, giving ordered pairs.
    for mask in range(1, (1 << n) - 1):
        left = frozenset(members[i] for i in range(n) if mask & (1 << i))
        right = subset - left
        partitions.append((left, right))
    return partitions


def normalize(expr: LogicalExpr, parameters: ParameterSpace | None = None) -> QueryGraph:
    """Flatten a logical expression tree into a :class:`QueryGraph`.

    Selections are pushed down to their base relations (they each reference
    exactly one relation); joins are collected into the predicate set.  This
    realizes the standard select-push-down normalization the paper's plans
    assume (Figures 1 and 2 apply predicates at the scans).
    """
    relations: list[str] = []
    selections: dict[str, list[SelectionPredicate]] = {}
    joins: list[JoinPredicate] = []
    projection: tuple | None = None

    def walk(node: LogicalExpr, at_root: bool) -> None:
        nonlocal projection
        if isinstance(node, GetSet):
            if node.relation in relations:
                raise OptimizationError(
                    f"relation {node.relation} referenced twice (self-joins "
                    "are not supported)"
                )
            relations.append(node.relation)
        elif isinstance(node, Select):
            walk(node.input, at_root=False)
            selections.setdefault(node.predicate.relation, []).append(node.predicate)
        elif isinstance(node, Join):
            walk(node.left, at_root=False)
            walk(node.right, at_root=False)
            joins.append(node.predicate)
        elif isinstance(node, Project):
            if not at_root:
                raise OptimizationError(
                    "projection is only supported at the query root"
                )
            projection = tuple(node.attributes)
            walk(node.input, at_root=False)
        else:
            raise OptimizationError(f"unknown logical operator {type(node).__name__}")

    walk(expr, at_root=True)
    return QueryGraph(
        relations=tuple(relations),
        selections={r: tuple(preds) for r, preds in selections.items()},
        joins=tuple(joins),
        parameters=parameters if parameters is not None else ParameterSpace(),
        projection=projection,
    )
