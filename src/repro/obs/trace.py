"""Hierarchical tracing: spans and events with a process-global tracer.

The tracer is the single switchboard for all observability in this
package.  By default it is a :class:`NullTracer` whose cost is one
attribute check per instrumentation site — hot paths guard with
``if tracer.enabled:`` so the default configuration adds no measurable
overhead to optimization or execution (see
``benchmarks/test_obs_overhead.py``).

A :class:`RecordingTracer` keeps the span tree in memory and can
additionally stream one JSON object per line (JSONL) to any writable
text stream.  The schema is deliberately small:

``{"type": "span", "id": 3, "parent": 1, "name": "optimizer.group",
   "start": ..., "duration": ..., "attrs": {...}}``
    One record per *finished* span.  ``parent`` is the id of the
    enclosing span or ``null`` for roots; ``start`` is a
    ``perf_counter`` timestamp (relative, monotonic), ``duration`` is
    seconds.

``{"type": "event", "span": 3, "name": "search.prune", "attrs": {...}}``
    A point-in-time structured record attached to the currently open
    span (``span: null`` when emitted outside any span).

Attribute values must be JSON-serializable; instrumentation sites keep
them to strings, numbers, booleans, and flat lists/dicts thereof.

The tracer is intentionally single-threaded (one trace per process);
this matches the repository's execution model.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Iterator, TextIO


class Span:
    """One timed region of work with attributes, events, and children."""

    __slots__ = ("span_id", "name", "attrs", "start", "end", "parent", "children", "events")

    def __init__(
        self,
        span_id: int,
        name: str,
        attrs: dict[str, Any],
        parent: "Span | None",
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.attrs = attrs
        self.start = time.perf_counter()
        self.end: float | None = None
        self.parent = parent
        self.children: list[Span] = []
        self.events: list[dict[str, Any]] = []

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach or update attributes on an open span."""
        self.attrs.update(attrs)

    def to_record(self) -> dict[str, Any]:
        """The span's JSONL record (emitted when the span finishes)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent.span_id if self.parent is not None else None,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} id={self.span_id} children={len(self.children)}>"


class _NullSpan:
    """Shared do-nothing span returned by the null tracer."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """No-op tracer; the base class *is* the null implementation.

    ``enabled`` is False so instrumentation sites can skip building
    attribute dictionaries entirely:

        if tracer.enabled:
            tracer.event("search.prune", bound=bound, limit=limit)
    """

    enabled: bool = False

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Any]:
        """Open a named span for the duration of the ``with`` block."""
        del name, attrs
        yield _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time structured event."""
        del name, attrs


#: The process-wide default tracer (never recording).
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Tracer that records spans/events in memory and optionally as JSONL.

    ``stream`` receives one JSON line per finished span and per event as
    they happen; the in-memory tree (``roots``, ``events``) is always
    kept so tests and callers can inspect structure without parsing.
    """

    enabled = True

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream
        self.roots: list[Span] = []
        self.events: list[dict[str, Any]] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        parent = self._stack[-1] if self._stack else None
        span = Span(self._next_id, name, attrs, parent)
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            self._stack.pop()
            self._write(span.to_record())

    def event(self, name: str, **attrs: Any) -> None:
        current = self._stack[-1] if self._stack else None
        record = {
            "type": "event",
            "span": current.span_id if current is not None else None,
            "name": name,
            "attrs": attrs,
        }
        if current is not None:
            current.events.append(record)
        self.events.append(record)
        self._write(record)

    def _write(self, record: dict[str, Any]) -> None:
        if self.stream is not None:
            self.stream.write(json.dumps(record) + "\n")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, parents before children."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find_events(self, name: str) -> list[dict[str, Any]]:
        """All recorded events with the given name, in emission order."""
        return [e for e in self.events if e["name"] == name]

    def flush(self) -> None:
        """Flush the JSONL stream, if any."""
        if self.stream is not None:
            self.stream.flush()


# ----------------------------------------------------------------------
# Process-global tracer
# ----------------------------------------------------------------------
_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The current process-global tracer (a no-op unless configured)."""
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (None restores the no-op); returns the
    previous tracer so callers can restore it."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped installation: the global tracer for the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
