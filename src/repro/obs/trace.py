"""Hierarchical tracing: spans and events with a process-global tracer.

The tracer is the single switchboard for all observability in this
package.  By default it is a :class:`NullTracer` whose cost is one
attribute check per instrumentation site — hot paths guard with
``if tracer.enabled:`` so the default configuration adds no measurable
overhead to optimization or execution (see
``benchmarks/test_obs_overhead.py``).

A :class:`RecordingTracer` keeps the span tree in memory and can
additionally stream one JSON object per line (JSONL) to any writable
text stream.  The schema is deliberately small:

``{"type": "span", "id": 3, "parent": 1, "name": "optimizer.group",
   "start": ..., "duration": ..., "attrs": {...}}``
    One record per *finished* span.  ``parent`` is the id of the
    enclosing span or ``null`` for roots; ``start`` is a
    ``perf_counter`` timestamp (relative, monotonic), ``duration`` is
    seconds.

``{"type": "event", "span": 3, "name": "search.prune", "attrs": {...}}``
    A point-in-time structured record attached to the currently open
    span (``span: null`` when emitted outside any span).

Attribute values must be JSON-serializable; instrumentation sites keep
them to strings, numbers, booleans, and flat lists/dicts thereof.

Tracing is thread-aware: each thread keeps its own span stack, and a
parent span can be carried across a thread boundary with
``tracer.attach(span)`` — the service worker pool and exchange producer
threads use this so one trace covers a full scatter/gather query.  For
serving, :class:`SamplingTracer` records every N-th root span (the
sampling decision is made once at the root and inherited by everything
beneath it, including attached worker threads), keeping overhead bounded
while still producing representative traces.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, TextIO


class Span:
    """One timed region of work with attributes, events, and children."""

    __slots__ = ("span_id", "name", "attrs", "start", "end", "parent", "children", "events")

    def __init__(
        self,
        span_id: int,
        name: str,
        attrs: dict[str, Any],
        parent: "Span | None",
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.attrs = attrs
        self.start = time.perf_counter()
        self.end: float | None = None
        self.parent = parent
        self.children: list[Span] = []
        self.events: list[dict[str, Any]] = []

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach or update attributes on an open span."""
        self.attrs.update(attrs)

    def to_record(self) -> dict[str, Any]:
        """The span's JSONL record (emitted when the span finishes)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent.span_id if self.parent is not None else None,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} id={self.span_id} children={len(self.children)}>"


class _NullSpan:
    """Shared do-nothing span returned by the null tracer."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """No-op tracer; the base class *is* the null implementation.

    ``enabled`` is False so instrumentation sites can skip building
    attribute dictionaries entirely:

        if tracer.enabled:
            tracer.event("search.prune", bound=bound, limit=limit)

    ``active`` distinguishes "a real tracer is installed" from "this
    thread is currently recording": for a :class:`SamplingTracer` the two
    differ — ``enabled`` is thread-local and only True inside a sampled
    trace, while ``active`` stays True so root-span sites (the query
    service) keep calling :meth:`span` and give the sampler its decision
    points.
    """

    enabled: bool = False
    active: bool = False

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Any]:
        """Open a named span for the duration of the ``with`` block."""
        del name, attrs
        yield _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time structured event."""
        del name, attrs

    def current_span(self) -> "Span | None":
        """The innermost open span on *this* thread (None when not
        recording) — capture it before spawning workers and re-parent
        their spans with :meth:`attach`."""
        return None

    @contextmanager
    def attach(self, span: "Span | None") -> Iterator[None]:
        """Adopt ``span`` as this thread's current parent for the block.

        Cross-thread propagation: a coordinator captures
        ``tracer.current_span()`` before handing work to another thread,
        and the worker wraps its body in ``tracer.attach(parent)`` so its
        spans and events nest under the coordinator's span.  No timing is
        recorded for the attachment itself.
        """
        del span
        yield


#: The process-wide default tracer (never recording).
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Tracer that records spans/events in memory and optionally as JSONL.

    ``stream`` receives one JSON line per finished span and per event as
    they happen; the in-memory tree (``roots``, ``events``) is always
    kept so tests and callers can inspect structure without parsing.

    Span stacks are per-thread; the shared tree, id counter, and stream
    are guarded by one lock, so worker threads can record concurrently
    (re-parented via :meth:`attach`) without corrupting the trace.
    """

    enabled = True
    active = True

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream
        self.roots: list[Span] = []
        self.events: list[dict[str, Any]] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        stack = self._stack
        parent = stack[-1] if stack else None
        with self._lock:
            span = Span(self._next_id, name, attrs, parent)
            self._next_id += 1
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            stack.pop()
            self._write(span.to_record())

    def event(self, name: str, **attrs: Any) -> None:
        stack = self._stack
        current = stack[-1] if stack else None
        record = {
            "type": "event",
            "span": current.span_id if current is not None else None,
            "name": name,
            "attrs": attrs,
        }
        with self._lock:
            if current is not None:
                current.events.append(record)
            self.events.append(record)
        self._write(record)

    def current_span(self) -> Span | None:
        stack = self._stack
        return stack[-1] if stack else None

    @contextmanager
    def attach(self, span: Span | None) -> Iterator[None]:
        if span is None:
            yield
            return
        stack = self._stack
        stack.append(span)
        try:
            yield
        finally:
            stack.pop()

    def _write(self, record: dict[str, Any]) -> None:
        if self.stream is not None:
            with self._lock:
                self.stream.write(json.dumps(record) + "\n")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, parents before children."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find_events(self, name: str) -> list[dict[str, Any]]:
        """All recorded events with the given name, in emission order."""
        return [e for e in self.events if e["name"] == name]

    def flush(self) -> None:
        """Flush the JSONL stream, if any."""
        if self.stream is not None:
            self.stream.flush()


class SamplingTracer(Tracer):
    """Head-based sampling: record every ``rate``-th root span in full.

    The sampling decision is made once, when a root span opens, and is
    inherited by everything beneath it — nested spans, events, and worker
    threads that :meth:`attach` the sampled parent.  Unsampled traces pay
    only the root-counter increment; crucially, ``enabled`` is
    *thread-local* and only True inside a sampled trace, so
    instrumentation sites guarded by ``if tracer.enabled:`` (and the
    executor's per-operator metering) stay on the no-op path for the
    other ``rate - 1`` of every ``rate`` requests.  That is what bounds
    serving overhead (see ``benchmarks/test_obs_overhead.py``).

    ``rate=1`` records everything; the recorded tree lives in
    ``self.inner`` (a :class:`RecordingTracer`).
    """

    active = True

    def __init__(self, rate: int = 10, stream: TextIO | None = None) -> None:
        if rate < 1:
            raise ValueError("sampling rate must be >= 1")
        self.rate = rate
        self.inner = RecordingTracer(stream)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._seen = 0
        self._sampled = 0

    def _state(self) -> dict[str, Any]:
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = {"depth": 0, "sampled": False}
        return state

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        """True only on a thread currently inside a sampled trace."""
        state = getattr(self._local, "state", None)
        return bool(state is not None and state["sampled"])

    @property
    def seen(self) -> int:
        """Root spans observed (sampled or not)."""
        with self._lock:
            return self._seen

    @property
    def sampled(self) -> int:
        """Root spans actually recorded."""
        with self._lock:
            return self._sampled

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Any]:
        state = self._state()
        if state["depth"] == 0:
            with self._lock:
                self._seen += 1
                take = (self._seen - 1) % self.rate == 0
                if take:
                    self._sampled += 1
            state["sampled"] = take
        state["depth"] += 1
        try:
            if state["sampled"]:
                with self.inner.span(name, **attrs) as span:
                    yield span
            else:
                yield _NULL_SPAN
        finally:
            state["depth"] -= 1
            if state["depth"] == 0:
                state["sampled"] = False

    def event(self, name: str, **attrs: Any) -> None:
        if self._state()["sampled"]:
            self.inner.event(name, **attrs)

    def current_span(self) -> Span | None:
        if self._state()["sampled"]:
            return self.inner.current_span()
        return None

    @contextmanager
    def attach(self, span: Span | None) -> Iterator[None]:
        if span is None:
            yield
            return
        state = self._state()
        previous = state["sampled"]
        state["sampled"] = True
        state["depth"] += 1
        try:
            with self.inner.attach(span):
                yield
        finally:
            state["depth"] -= 1
            state["sampled"] = previous

    # Inspection conveniences mirror RecordingTracer on the inner tree.
    @property
    def roots(self) -> list[Span]:
        return self.inner.roots

    @property
    def events(self) -> list[dict[str, Any]]:
        return self.inner.events

    def iter_spans(self) -> Iterator[Span]:
        return self.inner.iter_spans()

    def find_events(self, name: str) -> list[dict[str, Any]]:
        return self.inner.find_events(name)

    def flush(self) -> None:
        self.inner.flush()


# ----------------------------------------------------------------------
# Process-global tracer
# ----------------------------------------------------------------------
_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The current process-global tracer (a no-op unless configured)."""
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (None restores the no-op); returns the
    previous tracer so callers can restore it."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped installation: the global tracer for the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
