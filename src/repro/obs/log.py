"""Logging setup for the ``repro.*`` logger hierarchy.

Every module logs through ``get_logger(__name__)``; nothing is printed
unless :func:`setup_logging` runs (or the application configures the
root logger itself).  The level resolves in order of precedence:

1. the explicit ``level`` argument,
2. the ``REPRO_LOG`` environment variable (``debug``, ``info``,
   ``warning``, ``error``, or a numeric level),
3. the default, ``WARNING``.

The CLI's ``--verbose`` flag maps to ``setup_logging("debug")``.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import TextIO

ROOT_LOGGER_NAME = "repro"
ENV_VAR = "REPRO_LOG"

_configured = False


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Accepts either a dotted module name (``repro.optimizer.engine``) or a
    bare suffix (``optimizer.engine``).
    """
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def resolve_level(level: str | int | None) -> int:
    """Translate an explicit level or ``REPRO_LOG`` into a logging level."""
    if level is None:
        level = os.environ.get(ENV_VAR)
    if level is None:
        return logging.WARNING
    if isinstance(level, int):
        return level
    text = level.strip()
    if text.isdigit():
        return int(text)
    resolved = logging.getLevelName(text.upper())
    if isinstance(resolved, int):
        return resolved
    raise ValueError(f"unrecognized log level {level!r}")


def setup_logging(
    level: str | int | None = None, stream: TextIO | None = None
) -> logging.Logger:
    """Configure the ``repro`` logger once; repeated calls adjust the level.

    Returns the root ``repro`` logger.  Handlers write single-line
    records (``level logger: message``) to ``stream`` (default stderr).
    """
    global _configured
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(resolve_level(level))
    if not _configured:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
        logger.propagate = False
        _configured = True
    return logger
