"""Production telemetry: cardinality feedback and a plan flight recorder.

Two subsystems grow :mod:`repro.obs` from per-query EXPLAIN ANALYZE into
the feedback channel adaptive re-optimization needs:

* :class:`CardinalityLedger` — every pipeline breaker (sort, hash-join
  build, hash/sorted aggregation, exchange partition) records the
  cardinality it *observed*, keyed by a stable plan-node signature plus
  the catalog version the plan was compiled against, and compares it to
  the node's compile-time interval.  Observations outside the interval
  emit a structured ``estimate.out_of_interval`` event carrying the
  error ratio.  The aggregated ledger is exactly the empirical
  distribution over run-time parameters that least-expected-cost
  optimization and mid-query re-optimization consume (see PAPERS.md).

* :class:`FlightRecorder` — a thread-safe ring buffer of recent
  executions (normalized SQL, plan signature, bindings vector, activated
  alternatives, duration, worst estimation error).  It maintains a
  per-plan-signature runtime baseline and emits ``plan.regression`` when
  a cached plan drifts well above it; the serving layer reacts by
  flagging the plan-cache entry for recompile through the existing
  statistics-drift path.

Both are process-global and **disabled by default** — the untraced
execution path stays untouched (instrumentation sites guard on
``ledger.enabled`` the same way they guard on ``tracer.enabled``).

The error ratio is symmetric and ≥ 1: an observation inside the interval
scores 1.0; above the high bound it is ``(observed+1)/(high+1)``; below
the low bound it is ``(low+1)/(observed+1)``.  The ``+1`` smoothing keeps
empty intermediate results finite.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from hashlib import blake2b
from typing import Any, Iterator, Sequence

from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer


def plan_signature(node: Any) -> str:
    """Stable structural signature of a plan (sub)tree.

    Post-order fold of each node's ``label`` over its ``inputs``, hashed
    with blake2b and truncated to 12 hex digits.  The signature is a pure
    function of plan *structure* — two compilations of the same statement
    against the same catalog produce the same signature, which is what
    lets the ledger and flight recorder correlate observations across
    process restarts and cache rebuilds.  Duck-typed on purpose: any
    object with ``label`` and ``inputs`` works (physical nodes, exchange
    nodes, choose-plan nodes).
    """
    parts: list[str] = []

    def visit(current: Any) -> None:
        for child in getattr(current, "inputs", ()):
            visit(child)
        parts.append(current.label)
        parts.append(f"/{len(getattr(current, 'inputs', ()))}")

    visit(node)
    digest = blake2b("|".join(parts).encode(), digest_size=6)
    return digest.hexdigest()


def error_ratio(low: float, high: float, observed: float) -> float:
    """Symmetric ≥ 1 estimation-error ratio of ``observed`` vs [low, high]."""
    if observed > high:
        return (observed + 1.0) / (high + 1.0)
    if observed < low:
        return (low + 1.0) / (observed + 1.0)
    return 1.0


@dataclass
class LedgerEntry:
    """Aggregated observations for one (plan-node signature, catalog
    version) key."""

    signature: str
    label: str
    catalog_version: int
    estimate_low: float
    estimate_high: float
    count: int = 0
    out_of_interval: int = 0
    last_observed: float = 0.0
    min_observed: float = float("inf")
    max_observed: float = 0.0
    max_error_ratio: float = 1.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "signature": self.signature,
            "label": self.label,
            "catalog_version": self.catalog_version,
            "estimate_low": self.estimate_low,
            "estimate_high": self.estimate_high,
            "count": self.count,
            "out_of_interval": self.out_of_interval,
            "last_observed": self.last_observed,
            "min_observed": self.min_observed,
            "max_observed": self.max_observed,
            "max_error_ratio": self.max_error_ratio,
        }


class _Collection:
    """Per-execution scratchpad: the worst error ratio seen while open."""

    __slots__ = ("max_error_ratio",)

    def __init__(self) -> None:
        self.max_error_ratio = 1.0


class CardinalityLedger:
    """Observed-vs-estimated cardinalities at pipeline breakers.

    Thread-safe; disabled by default.  Aggregates per (signature,
    catalog_version) and keeps counters/events flowing through the
    shared metrics registry and tracer.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, int], LedgerEntry] = {}
        self._local = threading.local()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def collect(self) -> Iterator[_Collection]:
        """Scope one execution: records made on this thread while the
        block is open update the yielded collection's
        ``max_error_ratio`` (surfaced as
        ``ExecutionResult.max_estimate_error``)."""
        previous = getattr(self._local, "collection", None)
        collection = _Collection()
        self._local.collection = collection
        try:
            yield collection
        finally:
            self._local.collection = previous

    def record(
        self,
        signature: str,
        label: str,
        interval: Any,
        observed: float,
        catalog_version: int,
        detail: dict[str, Any] | None = None,
    ) -> float:
        """Record one observation; returns its error ratio (1.0 = inside
        the compile-time interval)."""
        low = float(interval.low)
        high = float(interval.high)
        ratio = error_ratio(low, high, observed)
        key = (signature, catalog_version)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = LedgerEntry(
                    signature=signature,
                    label=label,
                    catalog_version=catalog_version,
                    estimate_low=low,
                    estimate_high=high,
                )
            entry.count += 1
            entry.last_observed = observed
            entry.min_observed = min(entry.min_observed, observed)
            entry.max_observed = max(entry.max_observed, observed)
            if ratio > 1.0:
                entry.out_of_interval += 1
                entry.max_error_ratio = max(entry.max_error_ratio, ratio)
        collection = getattr(self._local, "collection", None)
        if collection is not None and ratio > collection.max_error_ratio:
            collection.max_error_ratio = ratio
        metrics = get_metrics()
        metrics.counter("telemetry.estimates_recorded").inc()
        if ratio > 1.0:
            metrics.counter("telemetry.estimates_out_of_interval").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "estimate.out_of_interval",
                    signature=signature,
                    label=label,
                    observed=observed,
                    estimate_low=low,
                    estimate_high=high,
                    error_ratio=ratio,
                    catalog_version=catalog_version,
                    **(detail or {}),
                )
        return ratio

    def records(self) -> list[LedgerEntry]:
        """Every entry (copies), stably ordered by (signature, version)."""
        with self._lock:
            return [
                replace(self._entries[key]) for key in sorted(self._entries)
            ]

    def worst(self, n: int = 10) -> list[LedgerEntry]:
        """The ``n`` entries with the largest max error ratio, worst first."""
        entries = self.records()
        entries.sort(key=lambda e: (-e.max_error_ratio, e.signature))
        return entries[:n]

    def observed_by_signature(self) -> dict[str, float]:
        """signature → last observed cardinality (fuzzer oracle check)."""
        with self._lock:
            return {
                entry.signature: entry.last_observed
                for entry in self._entries.values()
            }

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclass(frozen=True)
class FlightRecord:
    """One execution as remembered by the flight recorder."""

    query_text: str
    plan_signature: str
    bindings: tuple[tuple[str, Any], ...]
    alternatives: tuple[str, ...]
    duration_seconds: float
    max_error_ratio: float
    cache_hit: bool
    regression: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "query_text": self.query_text,
            "plan_signature": self.plan_signature,
            "bindings": dict(self.bindings),
            "alternatives": list(self.alternatives),
            "duration_seconds": self.duration_seconds,
            "max_error_ratio": self.max_error_ratio,
            "cache_hit": self.cache_hit,
            "regression": self.regression,
        }


@dataclass
class _Baseline:
    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


class FlightRecorder:
    """Ring buffer of recent executions with runtime-drift detection.

    Keeps a per-plan-signature running-mean baseline.  After ``warmup``
    observations of a signature, an execution slower than
    ``regression_factor`` × baseline (and slower than the absolute noise
    floor ``min_seconds``) is a regression: the record is marked, a
    ``plan.regression`` event is emitted, the
    ``telemetry.plan_regressions`` counter increments, and
    :meth:`record` returns True so the caller (the serving layer) can
    flag the plan-cache entry for recompile.  Regressed samples do not
    poison the baseline.  Disabled by default; thread-safe.
    """

    def __init__(
        self,
        capacity: int = 256,
        warmup: int = 5,
        regression_factor: float = 3.0,
        min_seconds: float = 0.0005,
    ) -> None:
        self.enabled = False
        self.warmup = warmup
        self.regression_factor = regression_factor
        self.min_seconds = min_seconds
        self._lock = threading.Lock()
        self._records: deque[FlightRecord] = deque(maxlen=capacity)
        self._baselines: dict[str, _Baseline] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def record(
        self,
        query_text: str,
        plan_sig: str,
        bindings: dict[str, Any] | None,
        alternatives: Sequence[str],
        duration_seconds: float,
        max_error_ratio: float = 1.0,
        cache_hit: bool = False,
    ) -> bool:
        """Remember one execution; True when it regressed vs baseline."""
        regression = False
        baseline_mean = 0.0
        with self._lock:
            baseline = self._baselines.get(plan_sig)
            if baseline is None:
                baseline = self._baselines[plan_sig] = _Baseline()
            baseline_mean = baseline.mean
            if (
                baseline.count >= self.warmup
                and duration_seconds > self.min_seconds
                and duration_seconds > self.regression_factor * baseline_mean
            ):
                regression = True
            else:
                baseline.count += 1
                baseline.total_seconds += duration_seconds
            self._records.append(
                FlightRecord(
                    query_text=query_text,
                    plan_signature=plan_sig,
                    bindings=tuple(sorted((bindings or {}).items())),
                    alternatives=tuple(alternatives),
                    duration_seconds=duration_seconds,
                    max_error_ratio=max_error_ratio,
                    cache_hit=cache_hit,
                    regression=regression,
                )
            )
        if regression:
            get_metrics().counter("telemetry.plan_regressions").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "plan.regression",
                    query=query_text,
                    signature=plan_sig,
                    duration_seconds=duration_seconds,
                    baseline_seconds=baseline_mean,
                    factor=(
                        duration_seconds / baseline_mean
                        if baseline_mean
                        else float("inf")
                    ),
                    max_error_ratio=max_error_ratio,
                )
        return regression

    def records(self) -> list[FlightRecord]:
        """The buffer's contents, oldest first (copies are unnecessary —
        records are frozen)."""
        with self._lock:
            return list(self._records)

    def regressions(self) -> list[FlightRecord]:
        return [r for r in self.records() if r.regression]

    def baseline_seconds(self, plan_sig: str) -> float:
        """Current mean baseline for a signature (0.0 when unknown)."""
        with self._lock:
            baseline = self._baselines.get(plan_sig)
            return baseline.mean if baseline is not None else 0.0

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._baselines.clear()


@dataclass
class _TelemetryState:
    ledger: CardinalityLedger = field(default_factory=CardinalityLedger)
    recorder: FlightRecorder = field(default_factory=FlightRecorder)


_state = _TelemetryState()


def get_ledger() -> CardinalityLedger:
    """The process-global cardinality-feedback ledger."""
    return _state.ledger


def get_flight_recorder() -> FlightRecorder:
    """The process-global plan flight recorder."""
    return _state.recorder


def enable_telemetry() -> None:
    """Switch on both the ledger and the flight recorder."""
    _state.ledger.enable()
    _state.recorder.enable()


def disable_telemetry() -> None:
    _state.ledger.disable()
    _state.recorder.disable()


def reset_telemetry() -> None:
    """Disable and clear both subsystems (test isolation)."""
    _state.ledger.disable()
    _state.ledger.reset()
    _state.recorder.disable()
    _state.recorder.reset()
