"""repro.obs — zero-dependency tracing, metrics, and logging.

Three small, orthogonal pieces:

* :mod:`repro.obs.trace` — hierarchical spans plus structured events,
  recorded in memory and/or streamed as JSONL.  The process-global
  tracer defaults to a no-op whose cost is one attribute check per
  instrumentation site.
* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  timers with a flat ``snapshot()`` for reports and the CLI ``--stats``
  flag.
* :mod:`repro.obs.log` — stdlib-``logging`` setup for the ``repro.*``
  logger hierarchy, controlled by ``REPRO_LOG`` or ``--verbose``.

The instrumented subsystems emit the following trace vocabulary (see
README's Observability section for the full schema):

========================  ============================================
span / event              emitted by
========================  ============================================
``optimizer.query``       one per :func:`repro.optimizer.optimize_query`
``optimizer.group``       one span per memo group optimized
``search.retain``         candidate entered the winner set
``search.prune``          candidate discarded; ``reason`` is
                          ``dominated`` or ``budget``
``search.group_pruned``   completed group rejected against a caller limit
``choose.decision``       one event per choose-plan operator decided
``choose.tie``            equal re-evaluated costs broke toward the
                          first alternative (documented determinism)
``chooser.resolved``      summary event per :func:`resolve_plan`
``executor.execute``      summary event per :func:`execute_plan`
``executor.operator``     per-operator runtime counters (EXPLAIN ANALYZE)
========================  ============================================
"""

from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    get_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    RecordingTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingTracer",
    "Span",
    "Timer",
    "Tracer",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "set_tracer",
    "setup_logging",
    "use_tracer",
]
