"""repro.obs — zero-dependency tracing, metrics, and logging.

Three small, orthogonal pieces:

* :mod:`repro.obs.trace` — hierarchical spans plus structured events,
  recorded in memory and/or streamed as JSONL.  The process-global
  tracer defaults to a no-op whose cost is one attribute check per
  instrumentation site.
* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  timers with a flat ``snapshot()`` for reports and the CLI ``--stats``
  flag.
* :mod:`repro.obs.log` — stdlib-``logging`` setup for the ``repro.*``
  logger hierarchy, controlled by ``REPRO_LOG`` or ``--verbose``.

The instrumented subsystems emit the following trace vocabulary (see
README's Observability section for the full schema):

========================  ============================================
span / event              emitted by
========================  ============================================
``optimizer.query``       one per :func:`repro.optimizer.optimize_query`
``optimizer.group``       one span per memo group optimized
``search.retain``         candidate entered the winner set
``search.prune``          candidate discarded; ``reason`` is
                          ``dominated`` or ``budget``
``search.group_pruned``   completed group rejected against a caller limit
``choose.decision``       one event per choose-plan operator decided
``choose.tie``            equal re-evaluated costs broke toward the
                          first alternative (documented determinism)
``chooser.resolved``      summary event per :func:`resolve_plan`
``executor.execute``      summary event per :func:`execute_plan`
``executor.operator``     per-operator runtime counters (EXPLAIN ANALYZE)
``estimate.out_of_interval``  pipeline breaker observed a cardinality
                          outside its compile-time interval (telemetry
                          ledger; carries the error ratio)
``plan.regression``       cached plan ran well above its runtime
                          baseline (flight recorder)
``service.invoke``        one span per service invocation (worker thread,
                          re-parented under the submitter's span)
``parallel.worker``       one span per exchange producer thread
========================  ============================================
"""

from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_metrics,
    render_openmetrics,
    set_metrics,
    snapshot_jsonl,
    use_metrics,
    validate_openmetrics,
)
from repro.obs.telemetry import (
    CardinalityLedger,
    FlightRecord,
    FlightRecorder,
    LedgerEntry,
    disable_telemetry,
    enable_telemetry,
    get_flight_recorder,
    get_ledger,
    plan_signature,
    reset_telemetry,
)
from repro.obs.trace import (
    NULL_TRACER,
    RecordingTracer,
    SamplingTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CardinalityLedger",
    "Counter",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LedgerEntry",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingTracer",
    "SamplingTracer",
    "Span",
    "Timer",
    "Tracer",
    "disable_telemetry",
    "enable_telemetry",
    "get_flight_recorder",
    "get_ledger",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "plan_signature",
    "render_openmetrics",
    "reset_telemetry",
    "set_metrics",
    "set_tracer",
    "setup_logging",
    "snapshot_jsonl",
    "use_metrics",
    "use_tracer",
    "validate_openmetrics",
]
