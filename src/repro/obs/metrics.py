"""Named metrics: counters, gauges, and timers in one registry.

Metric names form a dotted hierarchy mirroring the subsystems they
measure, e.g. ``optimizer.candidates_considered``,
``chooser.decisions``, ``executor.rows``.  The registry stays deliberately
simple — plain Python numbers, no export protocol — because its job is to
give the paper's quantitative claims one queryable home: ``snapshot()``
returns a flat JSON-ready dict that the CLI's ``--stats`` flag and the
experiment harness print verbatim.

Every metric (and the registry's get-or-create path) is thread-safe: the
serving layer updates counters and timers from a worker pool, so lost
increments would silently corrupt cache-hit-rate and latency reports.
Reads (``value``/``snapshot``) take the same per-metric locks, so a
snapshot never observes a torn timer (seconds updated, count not).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount


class Gauge:
    """Last-written value (e.g. largest winner set seen)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def max(self, value: float) -> None:
        """Keep the running maximum instead of the last write."""
        with self._lock:
            if value > self._value:
                self._value = value


class Timer:
    """Accumulated duration plus observation count."""

    __slots__ = ("_seconds", "_count", "_lock")

    def __init__(self) -> None:
        self._seconds = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def seconds(self) -> float:
        with self._lock:
            return self._seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._seconds += seconds
            self._count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)


class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/timers."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def timer(self, name: str) -> Timer:
        with self._lock:
            metric = self._timers.get(name)
            if metric is None:
                metric = self._timers[name] = Timer()
            return metric

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat name → value dict; timers expand to ``.seconds``/``.count``."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            timers = sorted(self._timers.items())
        out: dict[str, float] = {}
        for name, counter in counters:
            out[name] = counter.value
        for name, gauge in gauges:
            out[name] = gauge.value
        for name, timer in timers:
            out[f"{name}.seconds"] = timer.seconds
            out[f"{name}.count"] = float(timer.count)
        return out

    def as_dict(self) -> dict[str, float]:
        """Alias of :meth:`snapshot` matching the repo's serialization idiom."""
        return self.snapshot()

    def reset(self) -> None:
        """Drop every metric (tests and repeated CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


# ----------------------------------------------------------------------
# Process-global registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry
