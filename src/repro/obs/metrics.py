"""Named metrics: counters, gauges, timers, and histograms in one registry.

Metric names form a dotted hierarchy mirroring the subsystems they
measure, e.g. ``optimizer.candidates_considered``,
``chooser.decisions``, ``executor.rows``.  The registry's job is to give
the paper's quantitative claims one queryable home: ``snapshot()``
returns a flat JSON-ready dict that the CLI's ``--stats`` flag and the
experiment harness print verbatim, and :func:`render_openmetrics` /
:func:`snapshot_jsonl` export the same state for scraping.

Every metric (and the registry's get-or-create path) is thread-safe: the
serving layer updates counters and timers from a worker pool, so lost
increments would silently corrupt cache-hit-rate and latency reports.
Reads (``value``/``snapshot``) take the same per-metric locks, so a
snapshot never observes a torn timer (seconds updated, count not).

Histograms use *fixed* logarithmic bucket boundaries (powers of two from
1 µs), so percentile estimates are mergeable across processes and the
OpenMetrics exposition needs no per-process bucket negotiation.  A
quantile is reported as the upper bound of the bucket containing it,
clamped to the exact observed maximum — an overestimate by at most one
bucket width (2x), which is the standard Prometheus trade-off.
"""

from __future__ import annotations

import json
import re
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

#: Default histogram boundaries: 1 µs · 2^i, spanning ~1 µs .. ~134 s.
#: Latencies in this repository range from sub-millisecond cache hits to
#: multi-second benchmark executions; 28 log buckets cover both ends at
#: a constant factor-of-two resolution.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(1e-6 * (2.0**i) for i in range(28))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount


class Gauge:
    """Last-written value (e.g. largest winner set seen)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def max(self, value: float) -> None:
        """Keep the running maximum instead of the last write."""
        with self._lock:
            if value > self._value:
                self._value = value


class Timer:
    """Accumulated duration plus observation count."""

    __slots__ = ("_seconds", "_count", "_lock")

    def __init__(self) -> None:
        self._seconds = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def seconds(self) -> float:
        with self._lock:
            return self._seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._seconds += seconds
            self._count += 1

    def merge(self, seconds: float, count: int) -> None:
        """Fold another process's accumulated duration into this timer."""
        with self._lock:
            self._seconds += seconds
            self._count += count

    @contextmanager
    def time(self) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)


class Histogram:
    """Fixed-boundary log-bucket distribution with quantile estimates.

    ``boundaries`` are ascending bucket upper bounds; one implicit
    overflow bucket catches everything above the last bound.  The exact
    running maximum is tracked separately so ``max`` (and quantiles near
    it) never overshoot the largest observation.
    """

    __slots__ = ("_boundaries", "_counts", "_sum", "_count", "_max", "_lock")

    def __init__(self, boundaries: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be ascending and non-empty")
        self._boundaries = tuple(float(b) for b in boundaries)
        self._counts = [0] * (len(self._boundaries) + 1)  # + overflow
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = threading.Lock()

    @property
    def boundaries(self) -> tuple[float, ...]:
        return self._boundaries

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    def observe(self, value: float) -> None:
        index = bisect_left(self._boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts (last entry is the overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]): the upper bound of
        the bucket holding the q-th observation, clamped to the exact
        maximum.  0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if index < len(self._boundaries):
                        return min(self._boundaries[index], self._max)
                    return self._max
            return self._max

    def merge(
        self,
        counts: list[int],
        total: float,
        count: int,
        maximum: float,
        boundaries: tuple[float, ...] | None = None,
    ) -> None:
        """Fold another histogram's state into this one.

        The fixed logarithmic boundaries make bucket counts directly
        addable across processes; ``boundaries`` (when given) must match
        ours exactly — merging histograms with different bucket layouts
        would silently corrupt quantiles.
        """
        if boundaries is not None and tuple(boundaries) != self._boundaries:
            raise ValueError("cannot merge histograms with different boundaries")
        if len(counts) != len(self._counts):
            raise ValueError("cannot merge histograms with different bucket counts")
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += bucket_count
            self._sum += total
            self._count += count
            if maximum > self._max:
                self._max = maximum

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @contextmanager
    def time(self) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)


class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/timers/histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def timer(self, name: str) -> Timer:
        with self._lock:
            metric = self._timers.get(name)
            if metric is None:
                metric = self._timers[name] = Timer()
            return metric

    def histogram(
        self, name: str, boundaries: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(boundaries)
            return metric

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat name → value dict; timers expand to ``.seconds``/``.count``,
        histograms to ``.p50``/``.p95``/``.p99``/``.max``/``.count``/``.sum``."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            timers = sorted(self._timers.items())
            histograms = sorted(self._histograms.items())
        out: dict[str, float] = {}
        for name, counter in counters:
            out[name] = counter.value
        for name, gauge in gauges:
            out[name] = gauge.value
        for name, timer in timers:
            out[f"{name}.seconds"] = timer.seconds
            out[f"{name}.count"] = float(timer.count)
        for name, histogram in histograms:
            out[f"{name}.p50"] = histogram.p50
            out[f"{name}.p95"] = histogram.p95
            out[f"{name}.p99"] = histogram.p99
            out[f"{name}.max"] = histogram.max
            out[f"{name}.count"] = float(histogram.count)
            out[f"{name}.sum"] = histogram.sum
        return out

    def as_dict(self) -> dict[str, float]:
        """Alias of :meth:`snapshot` matching the repo's serialization idiom."""
        return self.snapshot()

    def collect(self) -> dict[str, dict[str, object]]:
        """Typed view of every metric, keyed by kind — the exporter input."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "timers": dict(sorted(self._timers.items())),
                "histograms": dict(sorted(self._histograms.items())),
            }

    # ------------------------------------------------------------------
    # Cross-process merge
    # ------------------------------------------------------------------
    def dump_state(self) -> dict[str, object]:
        """JSON-compatible full state, for shipping across process
        boundaries and folding into another registry with
        :meth:`merge_state`.  Unlike :meth:`snapshot` this keeps raw
        histogram bucket counts so quantiles stay mergeable."""
        collected = self.collect()
        return {
            "counters": {
                name: counter.value
                for name, counter in collected["counters"].items()
            },
            "gauges": {
                name: gauge.value for name, gauge in collected["gauges"].items()
            },
            "timers": {
                name: {"seconds": timer.seconds, "count": timer.count}
                for name, timer in collected["timers"].items()
            },
            "histograms": {
                name: {
                    "boundaries": list(histogram.boundaries),
                    "counts": histogram.bucket_counts(),
                    "sum": histogram.sum,
                    "count": histogram.count,
                    "max": histogram.max,
                }
                for name, histogram in collected["histograms"].items()
            },
        }

    def merge_state(self, state: dict[str, object]) -> None:
        """Fold a :meth:`dump_state` payload (typically from a shard
        process) into this registry: counters and timers add, gauges keep
        the maximum (they report high-water marks here), histograms add
        bucket counts."""
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).max(value)
        for name, data in state.get("timers", {}).items():
            self.timer(name).merge(data["seconds"], data["count"])
        for name, data in state.get("histograms", {}).items():
            self.histogram(name, tuple(data["boundaries"])).merge(
                data["counts"],
                data["sum"],
                data["count"],
                data["max"],
                boundaries=tuple(data["boundaries"]),
            )

    def reset(self) -> None:
        """Drop every metric (tests and repeated CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})?"
    r" [-+]?([0-9]*\.)?[0-9]+([eE][-+]?[0-9]+)?$"
)


def _metric_name(name: str, prefix: str = "repro") -> str:
    """Dotted registry name → Prometheus metric name (``repro_`` prefix)."""
    return f"{prefix}_{_NAME_SANITIZER.sub('_', name)}"


def _format_value(value: float) -> str:
    # OpenMetrics floats: repr round-trips exactly and never produces
    # locale-dependent output.
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_openmetrics(registry: "MetricsRegistry | None" = None) -> str:
    """The registry in OpenMetrics/Prometheus text exposition format.

    Counters expose ``<name>_total``; timers expose a summary-style
    ``_sum``/``_count`` pair; histograms expose cumulative ``_bucket``
    series with ``le`` labels plus ``_sum``/``_count``.  The output ends
    with the mandatory ``# EOF`` terminator.
    """
    registry = registry if registry is not None else get_metrics()
    collected = registry.collect()
    lines: list[str] = []
    for name, counter in collected["counters"].items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(counter.value)}")
    for name, gauge in collected["gauges"].items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")
    for name, timer in collected["timers"].items():
        metric = _metric_name(f"{name}_seconds")
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_sum {_format_value(timer.seconds)}")
        lines.append(f"{metric}_count {_format_value(float(timer.count))}")
    for name, histogram in collected["histograms"].items():
        metric = _metric_name(f"{name}_seconds")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        counts = histogram.bucket_counts()
        for bound, bucket_count in zip(histogram.boundaries, counts):
            cumulative += bucket_count
            lines.append(
                f'{metric}_bucket{{le="{repr(bound)}"}} {cumulative}'
            )
        cumulative += counts[-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(histogram.sum)}")
        lines.append(f"{metric}_count {_format_value(float(histogram.count))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def snapshot_jsonl(registry: "MetricsRegistry | None" = None) -> str:
    """One JSON object per metric, newline-delimited — the log-shipping
    twin of :func:`render_openmetrics`."""
    registry = registry if registry is not None else get_metrics()
    collected = registry.collect()
    lines: list[str] = []
    for name, counter in collected["counters"].items():
        lines.append(
            json.dumps({"metric": name, "type": "counter", "value": counter.value})
        )
    for name, gauge in collected["gauges"].items():
        lines.append(
            json.dumps({"metric": name, "type": "gauge", "value": gauge.value})
        )
    for name, timer in collected["timers"].items():
        lines.append(
            json.dumps(
                {
                    "metric": name,
                    "type": "timer",
                    "seconds": timer.seconds,
                    "count": timer.count,
                }
            )
        )
    for name, histogram in collected["histograms"].items():
        lines.append(
            json.dumps(
                {
                    "metric": name,
                    "type": "histogram",
                    "count": histogram.count,
                    "sum": histogram.sum,
                    "max": histogram.max,
                    "p50": histogram.p50,
                    "p95": histogram.p95,
                    "p99": histogram.p99,
                }
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def validate_openmetrics(text: str) -> None:
    """Raise ``ValueError`` unless ``text`` is well-formed OpenMetrics.

    Structural validation only (no client library in this environment):
    every line is a ``# TYPE``/``# HELP`` comment or a sample matching the
    exposition grammar, type names are known, and the text ends with the
    mandatory ``# EOF`` terminator.  Used by tests and the CI workflow.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("OpenMetrics output must end with '# EOF'")
    known_types = {"counter", "gauge", "summary", "histogram", "unknown"}
    for number, line in enumerate(lines[:-1], 1):
        if not line:
            raise ValueError(f"line {number}: blank lines are not allowed")
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise ValueError(f"line {number}: malformed comment {line!r}")
            if parts[1] == "TYPE" and parts[3] not in known_types:
                raise ValueError(f"line {number}: unknown metric type {parts[3]!r}")
            continue
        if not _SAMPLE_LINE.match(line):
            raise ValueError(f"line {number}: malformed sample {line!r}")


# ----------------------------------------------------------------------
# Process-global registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The current process-global metrics registry."""
    return _registry


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (None installs a fresh one); returns
    the previous registry so callers can restore it."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Scoped registry swap: a private (or given) registry for the
    ``with`` block, restoring the previous one afterwards.  The test
    suite's isolation primitive — tests measure deltas against their own
    registry instead of mutating the shared singleton in place."""
    previous = set_metrics(registry)
    try:
        yield get_metrics()
    finally:
        set_metrics(previous)
