"""Named metrics: counters, gauges, and timers in one registry.

Metric names form a dotted hierarchy mirroring the subsystems they
measure, e.g. ``optimizer.candidates_considered``,
``chooser.decisions``, ``executor.rows``.  The registry is deliberately
simple — plain Python numbers, no locks, no export protocol — because
its job is to give the paper's quantitative claims one queryable home:
``snapshot()`` returns a flat JSON-ready dict that the CLI's ``--stats``
flag and the experiment harness print verbatim.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (e.g. largest winner set seen)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum instead of the last write."""
        if value > self.value:
            self.value = value


class Timer:
    """Accumulated duration plus observation count."""

    __slots__ = ("seconds", "count")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.seconds += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)


class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/timers."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def timer(self, name: str) -> Timer:
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = Timer()
        return metric

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat name → value dict; timers expand to ``.seconds``/``.count``."""
        out: dict[str, float] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.value
        for name, timer in sorted(self._timers.items()):
            out[f"{name}.seconds"] = timer.seconds
            out[f"{name}.count"] = float(timer.count)
        return out

    def as_dict(self) -> dict[str, float]:
        """Alias of :meth:`snapshot` matching the repo's serialization idiom."""
        return self.snapshot()

    def reset(self) -> None:
        """Drop every metric (tests and repeated CLI runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()


# ----------------------------------------------------------------------
# Process-global registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry
