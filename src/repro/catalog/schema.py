"""Relational schemas: attributes and ordered attribute lists."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import CatalogError


@dataclass(frozen=True, slots=True)
class Attribute:
    """A named column of a relation.

    ``domain_size`` is the number of distinct values the attribute can take;
    the paper derives join selectivities from it (Section 6: join output =
    cross product divided by the larger of the join attributes' domain
    sizes).
    """

    relation: str
    name: str
    domain_size: int

    def __post_init__(self) -> None:
        if self.domain_size <= 0:
            raise CatalogError(
                f"attribute {self.relation}.{self.name} must have a positive "
                f"domain size, got {self.domain_size}"
            )

    @property
    def qualified_name(self) -> str:
        """The ``relation.attribute`` form used in plans and queries."""
        return f"{self.relation}.{self.name}"

    def __str__(self) -> str:
        return self.qualified_name


@dataclass(frozen=True)
class Schema:
    """An ordered, duplicate-free list of attributes.

    Schemas are value objects: joining two subplans concatenates their
    schemas, and equality is positional.
    """

    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for attribute in self.attributes:
            key = attribute.qualified_name
            if key in seen:
                raise CatalogError(f"duplicate attribute {key} in schema")
            seen.add(key)

    @staticmethod
    def of(*attributes: Attribute) -> "Schema":
        """Build a schema from attributes given positionally."""
        return Schema(tuple(attributes))

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, attribute: Attribute) -> bool:
        return attribute in self.attributes

    def index_of(self, attribute: Attribute) -> int:
        """Position of ``attribute`` in this schema.

        Raises :class:`CatalogError` when absent — callers use this to map
        predicate attributes to tuple slots during execution.
        """
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise CatalogError(
                f"attribute {attribute.qualified_name} not in schema "
                f"[{', '.join(a.qualified_name for a in self.attributes)}]"
            ) from None

    def find(self, qualified_name: str) -> Attribute:
        """Look up an attribute by its ``relation.name`` string."""
        for attribute in self.attributes:
            if attribute.qualified_name == qualified_name:
                return attribute
        raise CatalogError(f"no attribute named {qualified_name} in schema")

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output: this schema followed by ``other``."""
        return Schema(self.attributes + other.attributes)
