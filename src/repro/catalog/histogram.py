"""Equi-depth histograms for selectivity estimation.

The paper's experiments only need the selectivity *parameters* of unbound
predicates, but a production optimizer also estimates literal predicates
from data statistics.  This module provides classic equi-depth (equal
frequency) histograms: built by ``Database.analyze()``, registered in the
catalog, and consulted by :mod:`repro.logical.estimation` in place of the
System R magic numbers whenever available.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from repro.errors import CatalogError


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram over a numeric attribute.

    ``boundaries`` has ``buckets + 1`` entries; bucket *i* covers values in
    ``[boundaries[i], boundaries[i+1])`` (the last bucket is closed) and
    holds ``total / buckets`` values by construction.
    """

    boundaries: tuple[float, ...]
    total: int
    distinct: int

    def __post_init__(self) -> None:
        if len(self.boundaries) < 2:
            raise CatalogError("histogram needs at least one bucket")
        if any(
            self.boundaries[i] > self.boundaries[i + 1]
            for i in range(len(self.boundaries) - 1)
        ):
            raise CatalogError("histogram boundaries must be non-decreasing")
        if self.total <= 0 or self.distinct <= 0:
            raise CatalogError("histogram requires a non-empty value set")

    @property
    def buckets(self) -> int:
        """Number of buckets."""
        return len(self.boundaries) - 1

    @property
    def minimum(self) -> float:
        """Smallest value seen at build time."""
        return self.boundaries[0]

    @property
    def maximum(self) -> float:
        """Largest value seen at build time."""
        return self.boundaries[-1]

    @classmethod
    def from_values(
        cls, values: Sequence[float], buckets: int = 20
    ) -> "EquiDepthHistogram":
        """Build a histogram from a sample of attribute values."""
        if not values:
            raise CatalogError("cannot build a histogram from no values")
        if buckets < 1:
            raise CatalogError("histogram needs at least one bucket")
        ordered = sorted(float(v) for v in values)
        buckets = min(buckets, len(ordered))
        boundaries = [ordered[0]]
        for i in range(1, buckets):
            boundaries.append(ordered[(i * len(ordered)) // buckets])
        boundaries.append(ordered[-1])
        return cls(
            boundaries=tuple(boundaries),
            total=len(ordered),
            distinct=len(set(ordered)),
        )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def fraction_below(self, value: float, inclusive: bool = False) -> float:
        """Estimated fraction of values ``< value`` (or ``<=``).

        Linear interpolation inside the containing bucket, the standard
        equi-depth assumption.  Duplicated boundaries (heavy hitters) form
        zero-width buckets whose full mass is excluded by the strict form
        and included by the inclusive form, which keeps both forms monotone
        in ``value``.
        """
        value = float(value)
        if inclusive:
            index = bisect.bisect_right(self.boundaries, value)
        else:
            index = bisect.bisect_left(self.boundaries, value)
        if index == 0:
            return 0.0
        if index >= len(self.boundaries):
            return 1.0
        low = self.boundaries[index - 1]
        high = self.boundaries[index]
        within = 0.0 if high == low else (value - low) / (high - low)
        fraction = ((index - 1) + within) / self.buckets
        return min(max(fraction, 0.0), 1.0)

    def equality_selectivity(self) -> float:
        """Estimated selectivity of ``attribute = literal``: 1 / distinct."""
        return 1.0 / self.distinct

    def selectivity_between(
        self,
        low: float | None,
        high: float | None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> float:
        """Estimated selectivity of a (possibly half-open) range."""
        upper = 1.0 if high is None else self.fraction_below(high, include_high)
        lower = 0.0 if low is None else self.fraction_below(low, not include_low)
        return min(max(upper - lower, 0.0), 1.0)
