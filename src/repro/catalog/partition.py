"""Horizontal partitioning: row placement and shard-local catalog stats.

The sharded serving layer partitions ONE relation per query (the
"driver") across shards and gives every shard a full copy of the rest,
so the union of per-shard results equals the single-process result for
any join shape — partitioning every relation independently would lose
cross-shard join pairs.  This module owns the two deterministic pieces
of that contract:

* **row placement** — which rows of a relation a given shard stores,
  computed identically on the coordinator and on every shard from
  ``(rows, shard_id, shard_count, mode)`` alone.  Hash placement uses
  ``int(value) % shard_count`` on the partition column (never
  ``hash(str)``: spawn children randomize the string hash seed), and
  round-robin uses the row index, so both are stable across processes.
* **shard-local statistics** — a derived catalog whose numbers describe
  the shard's partition while its *version stays the coordinator's*, so
  access modules compiled centrally still validate shard-side but their
  choose-plan start-up decisions run against local cardinalities (the
  paper's start-up decision, made N times with N different answers).
"""

from __future__ import annotations

import copy
import enum
from typing import Mapping, Sequence

from repro.catalog.catalog import Catalog
from repro.errors import CatalogError


class PartitionMode(str, enum.Enum):
    """How a driver relation's rows are placed across shards."""

    HASH = "hash"
    ROUND_ROBIN = "round-robin"


def partition_column(catalog: Catalog, relation: str) -> int:
    """Position of the partition key column for hash placement.

    Prefers the first declared unary key (perfectly even spread for
    sampled-without-replacement key columns); falls back to the first
    attribute.
    """
    info = catalog.relation(relation)
    for position, attribute in enumerate(info.schema):
        if catalog.is_unique(attribute.qualified_name):
            return position
    return 0


def partition_rows(
    rows: Sequence[tuple],
    shard_id: int,
    shard_count: int,
    mode: PartitionMode = PartitionMode.HASH,
    key_position: int = 0,
) -> list[tuple]:
    """The slice of ``rows`` that shard ``shard_id`` stores.

    Every shard (and the coordinator) computes this from the same full
    row list, so no row ever ships over a pipe: partitions are
    *re-derived*, not transferred.  The two modes cover both the
    disjoint-union invariant (each row lands on exactly one shard) and
    determinism across processes.
    """
    if not 0 <= shard_id < shard_count:
        raise CatalogError(
            f"shard_id {shard_id} out of range for {shard_count} shards"
        )
    if mode is PartitionMode.ROUND_ROBIN:
        return list(rows[shard_id::shard_count])
    return [
        row for row in rows if int(row[key_position]) % shard_count == shard_id
    ]


def partition_cardinalities(
    rows: Sequence[tuple],
    shard_count: int,
    mode: PartitionMode = PartitionMode.HASH,
    key_position: int = 0,
) -> list[int]:
    """Per-shard partition sizes for one relation (coordinator-side view)."""
    counts = [0] * shard_count
    if mode is PartitionMode.ROUND_ROBIN:
        for index in range(len(rows)):
            counts[index % shard_count] += 1
    else:
        for row in rows:
            counts[int(row[key_position]) % shard_count] += 1
    return counts


def derive_shard_catalog(
    catalog: Catalog, cardinalities: Mapping[str, int]
) -> Catalog:
    """A shard-local catalog: given relations re-sized, version preserved.

    ``cardinalities`` maps partitioned relation names to their shard-local
    row counts; every other relation keeps its full statistics (the shard
    holds a full copy).  The clone's version equals ``catalog.version`` —
    statistics replacement is not DDL — which is exactly what lets a
    centrally compiled access module validate on the shard while its
    start-up decisions legitimately diverge.
    """
    clone = copy.deepcopy(catalog)
    for name, cardinality in cardinalities.items():
        clone.replace_statistics(name, cardinality)
    return clone
