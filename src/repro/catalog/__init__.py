"""Catalog: relations, attributes, indexes, and statistics.

The catalog is the optimizer's source of *known* parameters — cardinalities,
record widths, attribute domain sizes, and which B-tree indexes exist.  The
*uncertain* parameters (host-variable selectivities, run-time memory) live
in :mod:`repro.params` instead.
"""

from repro.catalog.schema import Attribute, Schema
from repro.catalog.statistics import RelationStats
from repro.catalog.catalog import Catalog, IndexInfo, RelationInfo

__all__ = [
    "Attribute",
    "Schema",
    "RelationStats",
    "Catalog",
    "IndexInfo",
    "RelationInfo",
]
