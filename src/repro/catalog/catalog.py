"""The catalog proper: a registry of relations and indexes.

The catalog carries a monotonically increasing *version* so access modules
can validate at start-up that the metadata they were compiled against is
still current (System R-style plan validation, [CAK81] in the paper).
Creating or dropping an index bumps the version.

Version bumps are observable: :meth:`Catalog.subscribe` registers a
listener called with the new version after every DDL-like change, which is
how the serving layer's plan cache learns to drop entries compiled against
outdated metadata.  DDL operations are serialized by an internal lock so
concurrent schema changes (e.g. from a query service's admin path) cannot
lose updates; listeners run outside that lock.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.catalog.schema import Attribute, Schema
from repro.catalog.statistics import RelationStats
from repro.errors import CatalogError


@dataclass(frozen=True, slots=True)
class IndexInfo:
    """Metadata for a B-tree index on a single attribute.

    The paper's experiments use *unclustered* B-trees on every selection and
    join attribute; clustered indexes are supported because the cost model
    distinguishes them.
    """

    name: str
    relation: str
    attribute: Attribute
    clustered: bool = False


@dataclass(frozen=True)
class RelationInfo:
    """A stored relation: schema, statistics, and its indexes."""

    name: str
    schema: Schema
    stats: RelationStats
    indexes: tuple[IndexInfo, ...] = ()

    def index_on(self, attribute: Attribute) -> IndexInfo | None:
        """The index whose key is ``attribute``, or None."""
        for index in self.indexes:
            if index.attribute == attribute:
                return index
        return None


@dataclass
class Catalog:
    """Mutable registry of relations; the optimizer's view of the database."""

    _relations: dict[str, RelationInfo] = field(default_factory=dict)
    _histograms: dict[str, object] = field(default_factory=dict)
    _unique: set[str] = field(default_factory=set)
    _version: int = 0
    _listeners: list[Callable[[int], None]] = field(
        default_factory=list, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __getstate__(self) -> dict[str, object]:
        # Locks aren't copyable/picklable and listeners are identity-bound
        # to this instance: a copy gets fresh ones.
        state = self.__dict__.copy()
        del state["_lock"]
        del state["_listeners"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self.__dict__["_listeners"] = []
        self.__dict__["_lock"] = threading.Lock()

    @property
    def version(self) -> int:
        """Schema version, bumped on every DDL-like change."""
        return self._version

    # ------------------------------------------------------------------
    # Change notification
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[int], None]) -> Callable[[int], None]:
        """Call ``listener(new_version)`` after every future version bump.

        Returns ``listener`` so callers can keep the handle for
        :meth:`unsubscribe`.  Listeners run on the thread performing the
        DDL, after the catalog lock is released.
        """
        with self._lock:
            self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Callable[[int], None]) -> None:
        """Remove a listener registered with :meth:`subscribe`."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def _bump_locked(self) -> tuple[int, tuple[Callable[[int], None], ...]]:
        """Advance the version; caller must hold the lock.

        Returns the new version and the listener snapshot to notify once
        the lock is released (so listeners may re-enter the catalog).
        """
        self._version += 1
        return self._version, tuple(self._listeners)

    @staticmethod
    def _notify(
        version: int, listeners: tuple[Callable[[int], None], ...]
    ) -> None:
        for listener in listeners:
            listener(version)

    @property
    def relation_names(self) -> list[str]:
        """Names of all registered relations, in registration order."""
        return list(self._relations)

    def add_relation(
        self,
        name: str,
        attributes: list[tuple[str, int]],
        cardinality: int,
        record_bytes: int = 512,
    ) -> RelationInfo:
        """Register a relation.

        ``attributes`` is a list of ``(attribute_name, domain_size)`` pairs.
        Returns the created :class:`RelationInfo`.
        """
        with self._lock:
            if name in self._relations:
                raise CatalogError(f"relation {name} already exists")
            if not attributes:
                raise CatalogError(
                    f"relation {name} must have at least one attribute"
                )
            schema = Schema(
                tuple(Attribute(name, attr, domain) for attr, domain in attributes)
            )
            info = RelationInfo(
                name=name,
                schema=schema,
                stats=RelationStats(
                    cardinality=cardinality, record_bytes=record_bytes
                ),
            )
            self._relations[name] = info
            version, listeners = self._bump_locked()
        self._notify(version, listeners)
        return info

    def drop_relation(self, name: str) -> None:
        """Remove a relation (and implicitly its indexes)."""
        with self._lock:
            if name not in self._relations:
                raise CatalogError(f"relation {name} does not exist")
            del self._relations[name]
            version, listeners = self._bump_locked()
        self._notify(version, listeners)

    def relation(self, name: str) -> RelationInfo:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"unknown relation {name}") from None

    def attribute(self, qualified_name: str) -> Attribute:
        """Resolve ``relation.attribute`` to an :class:`Attribute`."""
        relation_name, _, attr_name = qualified_name.partition(".")
        if not attr_name:
            raise CatalogError(
                f"attribute reference {qualified_name!r} must be qualified "
                "as relation.attribute"
            )
        return self.relation(relation_name).schema.find(qualified_name)

    def create_index(
        self,
        index_name: str,
        relation_name: str,
        attribute_name: str,
        clustered: bool = False,
    ) -> IndexInfo:
        """Create a B-tree index on one attribute of a relation."""
        with self._lock:
            info = self.relation(relation_name)
            attribute = info.schema.find(f"{relation_name}.{attribute_name}")
            if any(ix.name == index_name for ix in info.indexes):
                raise CatalogError(f"index {index_name} already exists")
            if info.index_on(attribute) is not None:
                raise CatalogError(
                    f"attribute {attribute.qualified_name} already indexed"
                )
            if clustered and any(ix.clustered for ix in info.indexes):
                raise CatalogError(
                    f"relation {relation_name} already has a clustered index"
                )
            index = IndexInfo(
                name=index_name,
                relation=relation_name,
                attribute=attribute,
                clustered=clustered,
            )
            self._relations[relation_name] = RelationInfo(
                name=info.name,
                schema=info.schema,
                stats=info.stats,
                indexes=info.indexes + (index,),
            )
            version, listeners = self._bump_locked()
        self._notify(version, listeners)
        return index

    def drop_index(self, index_name: str) -> None:
        """Drop an index by name (searches all relations)."""
        with self._lock:
            for name, info in self._relations.items():
                remaining = tuple(
                    ix for ix in info.indexes if ix.name != index_name
                )
                if len(remaining) != len(info.indexes):
                    self._relations[name] = RelationInfo(
                        name=info.name,
                        schema=info.schema,
                        stats=info.stats,
                        indexes=remaining,
                    )
                    version, listeners = self._bump_locked()
                    break
            else:
                raise CatalogError(f"unknown index {index_name}")
        self._notify(version, listeners)

    def index_on(self, attribute: Attribute) -> IndexInfo | None:
        """The index keyed on ``attribute``, or None."""
        return self.relation(attribute.relation).index_on(attribute)

    # ------------------------------------------------------------------
    # Unary key constraints
    # ------------------------------------------------------------------
    def declare_unique(self, qualified_name: str) -> None:
        """Declare ``relation.attribute`` a unary key (no duplicate values).

        Key constraints tighten cardinality upper bounds on intermediates
        (Chen & Schneider's SPJU size bounds): a join whose inner side is
        unique on the join attribute yields at most one match per outer
        row.  Declaring a key bumps the version — plans compiled without
        the constraint remain sound but may under-use it.
        """
        attribute = self.attribute(qualified_name)  # validates existence
        with self._lock:
            if attribute.qualified_name in self._unique:
                return
            self._unique.add(attribute.qualified_name)
            version, listeners = self._bump_locked()
        self._notify(version, listeners)

    def is_unique(self, qualified_name: str) -> bool:
        """True when ``relation.attribute`` is a declared unary key."""
        return qualified_name in self._unique

    def set_histogram(self, attribute: Attribute, histogram) -> None:
        """Attach a value histogram to an attribute (ANALYZE output).

        Statistics updates do not bump the catalog version: better
        statistics never invalidate a compiled plan, they only improve
        future optimizations.
        """
        # Validate the attribute exists before storing.
        self.attribute(attribute.qualified_name)
        self._histograms[attribute.qualified_name] = histogram

    def histogram(self, attribute: Attribute):
        """The histogram attached to ``attribute``, or None."""
        return self._histograms.get(attribute.qualified_name)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the catalog's schema and statistics to JSON.

        Histograms are not serialized (rebuild them with
        ``Database.analyze()``); the version counter restarts on load.
        """
        payload = {
            "relations": [
                {
                    "name": info.name,
                    "cardinality": info.stats.cardinality,
                    "record_bytes": info.stats.record_bytes,
                    "attributes": [
                        {"name": a.name, "domain_size": a.domain_size}
                        for a in info.schema
                    ],
                    "indexes": [
                        {
                            "name": ix.name,
                            "attribute": ix.attribute.name,
                            "clustered": ix.clustered,
                        }
                        for ix in info.indexes
                    ],
                }
                for info in self._relations.values()
            ]
        }
        if self._unique:
            payload["unique"] = sorted(self._unique)
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Catalog":
        """Rebuild a catalog from :meth:`to_json` output."""
        payload = json.loads(text)
        catalog = cls()
        for rel in payload["relations"]:
            catalog.add_relation(
                rel["name"],
                [(a["name"], a["domain_size"]) for a in rel["attributes"]],
                cardinality=rel["cardinality"],
                record_bytes=rel.get("record_bytes", 512),
            )
            for ix in rel.get("indexes", ()):
                catalog.create_index(
                    ix["name"],
                    rel["name"],
                    ix["attribute"],
                    clustered=ix.get("clustered", False),
                )
        for qualified_name in payload.get("unique", ()):
            catalog.declare_unique(qualified_name)
        return catalog

    def replace_statistics(self, relation_name: str, cardinality: int) -> None:
        """Replace a relation's cardinality *without* bumping the version.

        This is the shard-local statistics derivation hook: a shard's
        catalog must differ from the coordinator's only in its numbers —
        the version has to stay identical so access modules compiled by
        the coordinator still validate shard-side (same rationale as
        :meth:`set_histogram`: better statistics never invalidate a plan).
        Simulated database growth should keep using
        :meth:`set_cardinality`, which does bump.
        """
        with self._lock:
            info = self.relation(relation_name)
            self._relations[relation_name] = RelationInfo(
                name=info.name,
                schema=info.schema,
                stats=RelationStats(
                    cardinality=cardinality, record_bytes=info.stats.record_bytes
                ),
                indexes=info.indexes,
            )

    def set_cardinality(self, relation_name: str, cardinality: int) -> None:
        """Update a relation's cardinality (simulates database growth)."""
        with self._lock:
            info = self.relation(relation_name)
            self._relations[relation_name] = RelationInfo(
                name=info.name,
                schema=info.schema,
                stats=RelationStats(
                    cardinality=cardinality, record_bytes=info.stats.record_bytes
                ),
                indexes=info.indexes,
            )
            version, listeners = self._bump_locked()
        self._notify(version, listeners)
