"""Per-relation statistics used by the cost model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError


@dataclass(frozen=True, slots=True)
class RelationStats:
    """Cardinality and record width of a stored relation.

    The paper's experiments use cardinalities in [100, 1000] and 512-byte
    records on 2048-byte pages; both are configurable here, and the page
    size lives in :class:`repro.cost.model.CostModel` so that statistics
    remain device-independent.
    """

    cardinality: int
    record_bytes: int = 512

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise CatalogError(f"negative cardinality {self.cardinality}")
        if self.record_bytes <= 0:
            raise CatalogError(f"non-positive record size {self.record_bytes}")

    def pages(self, page_bytes: int) -> int:
        """Number of data pages at the given page size (at least 1)."""
        if page_bytes < self.record_bytes:
            raise CatalogError(
                f"page size {page_bytes} smaller than record size "
                f"{self.record_bytes}"
            )
        records_per_page = page_bytes // self.record_bytes
        return max(1, -(-self.cardinality // records_per_page))
