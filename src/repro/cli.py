"""Command-line interface: ``python -m repro <command>``.

Commands:

``explain``
    Parse a SQL query against a catalog and print the optimized plan
    (static or dynamic), optionally as Graphviz DOT.
``choose``
    Optimize dynamically, bind the supplied parameter values, and show
    which alternative every choose-plan operator activates.
``analyze``
    Optimize, decide, and *execute* a query against synthetic data,
    printing the plan annotated with observed per-operator counters
    (rows, time, pages) — EXPLAIN ANALYZE for dynamic plans.  With
    ``--adaptive``, execution runs under the mid-query re-optimization
    controller and the report gains an adaptive section (replan events,
    pinned intermediates, re-opt latency).
``run``
    Execute a query against synthetic data and print result rows plus
    execution metrics; ``--adaptive`` enables mid-query
    re-optimization at pipeline breakers.
``experiments``
    Regenerate the paper's Section 6 evaluation tables.
``serve-bench``
    Run a Zipfian workload against the concurrent query service and
    report throughput, latency percentiles, and plan-cache hit rate;
    writes a JSON artifact (default ``benchmarks/results/serve_bench.json``).
``parallel-bench``
    Time the speedup benchmark: one hash join executed serially and
    through the exchange operator at DOP 2 and 4, with the disk's
    latency simulation on; writes a JSON artifact (default
    ``benchmarks/results/BENCH_parallel.json``).
``exec-bench``
    Time the vectorized executor against the row-at-a-time baseline on a
    CPU-bound scan+join workload across a batch-size sweep; writes a
    JSON artifact (default ``benchmarks/results/BENCH_exec.json``) and
    fails if the default batch size is not at least 3x faster.
``adaptive-bench``
    Static vs adaptive execution on a deliberately mis-estimated skewed
    join (and a never-triggering control); writes a JSON artifact
    (default ``benchmarks/results/BENCH_adaptive.json``) and fails if
    the adaptive run does not beat static by 1.5x or the control run
    pays more than the overhead budget.
``fuzz``
    Differential fuzzing: generate random catalogs + parameterized
    queries, execute every optimization mode, and compare against a
    naive reference oracle; failures are shrunk and written as
    replayable JSON artifacts (see ``repro.qa``).
``demo``
    The motivating example (Figure 1) in one command.

Catalogs are JSON files (see ``Catalog.to_json``); ``--demo-catalog`` uses
the built-in experiment catalog instead.

Observability (available on every command)::

    repro explain --demo-catalog --trace trace.jsonl 'SELECT ...'
        # dump optimizer spans + search prune/retain events as JSONL
    repro analyze --demo-catalog --stats 'SELECT ...'
        # print the metrics snapshot (counters/gauges/timers) afterwards
    REPRO_LOG=debug repro choose --demo-catalog 'SELECT ...'
        # stdlib logging from the repro.* hierarchy (or pass --verbose)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.experiments.catalogs import make_experiment_catalog
from repro.obs.log import setup_logging
from repro.obs.metrics import get_metrics
from repro.obs.trace import RecordingTracer, set_tracer
from repro.optimizer.optimizer import OptimizationMode, optimize_query
from repro.physical.explain import explain, explain_analyze, to_dot
from repro.query.parser import parse_query
from repro.runtime.chooser import effective_plan_nodes, resolve_plan


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    trace_file = None
    try:
        if getattr(args, "verbose", False):
            setup_logging("debug")
        else:
            setup_logging()  # level from REPRO_LOG, default WARNING
        if getattr(args, "trace", None):
            trace_file = open(args.trace, "w", encoding="utf-8")
            set_tracer(RecordingTracer(stream=trace_file))
        return args.handler(args)
    except Exception as error:  # surfaced as a clean CLI message
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if trace_file is not None:
            set_tracer(None)
            trace_file.close()
        if getattr(args, "stats", False):
            print(json.dumps(get_metrics().snapshot(), indent=2))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Dynamic query evaluation plans (SIGMOD 1994)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    explain_cmd = commands.add_parser(
        "explain", help="optimize a SQL query and print the plan"
    )
    _add_catalog_options(explain_cmd)
    explain_cmd.add_argument("sql", help="query text, e.g. 'SELECT * FROM R1 ...'")
    explain_cmd.add_argument(
        "--mode",
        choices=[m.value for m in OptimizationMode],
        default=OptimizationMode.DYNAMIC.value,
    )
    explain_cmd.add_argument(
        "--dot", action="store_true", help="emit Graphviz DOT instead of text"
    )
    explain_cmd.set_defaults(handler=_cmd_explain)

    choose_cmd = commands.add_parser(
        "choose", help="show start-up-time decisions for given bindings"
    )
    _add_catalog_options(choose_cmd)
    choose_cmd.add_argument("sql")
    choose_cmd.add_argument(
        "--bind",
        action="append",
        default=[],
        metavar="PARAM=VALUE",
        help="parameter binding, e.g. --bind sel:v=0.3 (repeatable)",
    )
    choose_cmd.set_defaults(handler=_cmd_choose)

    analyze_cmd = commands.add_parser(
        "analyze",
        help="execute a query on synthetic data and print the plan with "
        "observed per-operator counters (EXPLAIN ANALYZE)",
    )
    _add_catalog_options(analyze_cmd)
    analyze_cmd.add_argument("sql")
    analyze_cmd.add_argument(
        "--mode",
        choices=[m.value for m in OptimizationMode],
        default=OptimizationMode.DYNAMIC.value,
    )
    analyze_cmd.add_argument(
        "--set",
        action="append",
        default=[],
        dest="values",
        metavar="VAR=VALUE",
        help="host-variable value, e.g. --set v=120 (repeatable)",
    )
    analyze_cmd.add_argument(
        "--bind",
        action="append",
        default=[],
        metavar="PARAM=VALUE",
        help="override a derived parameter, e.g. --bind sel:v=0.3 (repeatable)",
    )
    analyze_cmd.add_argument(
        "--seed", type=int, default=0, help="synthetic-data RNG seed"
    )
    analyze_cmd.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="also print the N slowest operators by inclusive time and "
        "the N worst cardinality-estimation errors from the telemetry "
        "ledger",
    )
    analyze_cmd.add_argument(
        "--adaptive",
        action="store_true",
        help="execute under the mid-query re-optimization controller and "
        "print the adaptive section (replan events, re-opt latency)",
    )
    analyze_cmd.add_argument(
        "--show-fused",
        action="store_true",
        help="print the generated source of every fused pipeline the "
        "plan compiles to under execution_mode=fused, with its "
        "plan-signature cache key and the codegen cache counters",
    )
    analyze_cmd.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="also execute through a sharded service at N in-process "
        "shards and print each shard's start-up decision vs the "
        "coordinator baseline (shard-local statistics may legitimately "
        "change choose-plan outcomes)",
    )
    analyze_cmd.set_defaults(handler=_cmd_analyze)

    run_cmd = commands.add_parser(
        "run",
        help="execute a query on synthetic data and print rows + metrics",
    )
    _add_catalog_options(run_cmd)
    run_cmd.add_argument("sql")
    run_cmd.add_argument(
        "--mode",
        choices=[m.value for m in OptimizationMode],
        default=OptimizationMode.DYNAMIC.value,
    )
    run_cmd.add_argument(
        "--set",
        action="append",
        default=[],
        dest="values",
        metavar="VAR=VALUE",
        help="host-variable value, e.g. --set v=120 (repeatable)",
    )
    run_cmd.add_argument(
        "--bind",
        action="append",
        default=[],
        metavar="PARAM=VALUE",
        help="override a derived parameter, e.g. --bind sel:v=0.3 (repeatable)",
    )
    run_cmd.add_argument(
        "--seed", type=int, default=0, help="synthetic-data RNG seed"
    )
    run_cmd.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="print at most N result rows (0 prints none; default 10)",
    )
    run_cmd.add_argument(
        "--adaptive",
        action="store_true",
        help="enable mid-query re-optimization at pipeline breakers",
    )
    run_cmd.set_defaults(handler=_cmd_run)

    experiments_cmd = commands.add_parser(
        "experiments", help="regenerate the paper's Section 6 tables"
    )
    experiments_cmd.add_argument("--n", type=int, default=100)
    experiments_cmd.add_argument("--memory", action="store_true")
    experiments_cmd.set_defaults(handler=_cmd_experiments)

    metrics_cmd = commands.add_parser(
        "metrics",
        help="drive a small workload with full telemetry and export the "
        "metrics registry (OpenMetrics text or JSONL)",
    )
    _add_catalog_options(metrics_cmd)
    metrics_cmd.add_argument(
        "--workload",
        type=int,
        default=25,
        metavar="N",
        help="invocations to drive through a query service before "
        "exporting (0 exports the empty registry; default 25)",
    )
    metrics_cmd.add_argument(
        "--format",
        choices=["openmetrics", "jsonl"],
        default="openmetrics",
        help="export format (default openmetrics)",
    )
    metrics_cmd.add_argument(
        "--seed", type=int, default=0, help="data + workload RNG seed"
    )
    metrics_cmd.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the export to FILE instead of stdout",
    )
    metrics_cmd.set_defaults(handler=_cmd_metrics)

    serve_cmd = commands.add_parser(
        "serve-bench",
        help="benchmark the concurrent query service with a shared plan cache",
    )
    _add_catalog_options(serve_cmd)
    serve_cmd.add_argument(
        "--invocations", type=int, default=500, help="workload size (default 500)"
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=4, help="service worker threads"
    )
    serve_cmd.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission-control queue depth (backpressure beyond this)",
    )
    serve_cmd.add_argument(
        "--statements",
        type=int,
        default=None,
        metavar="N",
        help="distinct statements (default: one per catalog relation)",
    )
    serve_cmd.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        help="Zipf skew of statement popularity (0 = uniform)",
    )
    serve_cmd.add_argument(
        "--cache-capacity", type=int, default=128, help="plan cache entries"
    )
    serve_cmd.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="plan cache entry TTL (default: no expiry)",
    )
    serve_cmd.add_argument(
        "--seed", type=int, default=0, help="data + workload RNG seed"
    )
    serve_cmd.add_argument(
        "--adaptive",
        action="store_true",
        help="enable mid-query re-optimization for every request "
        "(replans also flag the cached plan for recompile)",
    )
    serve_cmd.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fast run for CI (2 workers, 2 statements, 25 invocations)",
    )
    serve_cmd.add_argument(
        "--output",
        type=Path,
        default=Path("benchmarks/results/serve_bench.json"),
        metavar="FILE",
        help="JSON benchmark artifact path",
    )
    serve_cmd.set_defaults(handler=_cmd_serve_bench)

    parallel_cmd = commands.add_parser(
        "parallel-bench",
        help="serial vs exchange-parallel hash join wall time at "
        "DOP 2 and 4 (I/O-latency-bound workload)",
    )
    parallel_cmd.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration for CI (smaller relations, DOP=4 only)",
    )
    parallel_cmd.add_argument(
        "--output",
        type=Path,
        default=Path("benchmarks/results/BENCH_parallel.json"),
        metavar="FILE",
        help="JSON benchmark artifact path",
    )
    parallel_cmd.set_defaults(handler=_cmd_parallel_bench)

    shard_cmd = commands.add_parser(
        "shard-bench",
        help="single-process thread pool vs multiprocess sharded serving "
        "on a Zipfian point-lookup + analytics workload (asserts "
        "byte-identical results; full mode gates on the 5x speedup "
        "target at 8 shards)",
    )
    shard_cmd.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard process count (default: 8 full, 2 smoke)",
    )
    shard_cmd.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration for CI (2 shards, small relations, "
        "correctness asserted, no speedup gate)",
    )
    shard_cmd.add_argument(
        "--output",
        type=Path,
        default=Path("benchmarks/results/BENCH_shard.json"),
        metavar="FILE",
        help="JSON benchmark artifact path",
    )
    shard_cmd.set_defaults(handler=_cmd_shard_bench)

    exec_cmd = commands.add_parser(
        "exec-bench",
        help="row-at-a-time vs vectorized batch execution wall time "
        "across a batch-size sweep (CPU-bound workload)",
    )
    exec_cmd.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration for CI (smaller probe relation, "
        "two batch sizes, no speedup assertion)",
    )
    exec_cmd.add_argument(
        "--output",
        type=Path,
        default=Path("benchmarks/results/BENCH_exec.json"),
        metavar="FILE",
        help="JSON benchmark artifact path",
    )
    exec_cmd.set_defaults(handler=_cmd_exec_bench)

    adaptive_cmd = commands.add_parser(
        "adaptive-bench",
        help="static vs adaptive execution on a mis-estimated skewed "
        "join, plus a never-triggering accurate-estimate control",
    )
    adaptive_cmd.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration for CI (smaller relations, zero disk "
        "latency, no wall-clock assertions)",
    )
    adaptive_cmd.add_argument(
        "--output",
        type=Path,
        default=Path("benchmarks/results/BENCH_adaptive.json"),
        metavar="FILE",
        help="JSON benchmark artifact path",
    )
    adaptive_cmd.set_defaults(handler=_cmd_adaptive_bench)

    fuzz_cmd = commands.add_parser(
        "fuzz",
        help="differential fuzzing of the whole pipeline against a "
        "reference oracle (random queries, plan-equivalence checks)",
    )
    fuzz_cmd.add_argument(
        "--seed",
        default="0",
        help="run seed; each case derives sub-seed SEED/INDEX (default 0)",
    )
    fuzz_cmd.add_argument(
        "--cases", type=int, default=200, help="cases to generate (default 200)"
    )
    fuzz_cmd.add_argument(
        "--shrink",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="greedily shrink failing cases before writing artifacts",
    )
    fuzz_cmd.add_argument(
        "--artifact-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="write a replayable JSON artifact per failure into DIR",
    )
    fuzz_cmd.add_argument(
        "--service-every",
        type=int,
        default=4,
        metavar="N",
        help="run the QueryService byte-identity check every Nth case "
        "(0 disables; default 4)",
    )
    fuzz_cmd.add_argument(
        "--parallel-every",
        type=int,
        default=4,
        metavar="N",
        help="run the parallel-execution differential (DOP 1/2/4 vs "
        "serial) every Nth case (0 disables; default 4)",
    )
    fuzz_cmd.add_argument(
        "--batch-every",
        type=int,
        default=2,
        metavar="N",
        help="run the batch-vs-row executor byte-identity differential "
        "every Nth case (0 disables; default 2)",
    )
    fuzz_cmd.add_argument(
        "--ledger-every",
        type=int,
        default=4,
        metavar="N",
        help="run the telemetry-ledger differential (observed "
        "cardinalities at pipeline breakers vs oracle intermediate "
        "sizes) every Nth case (0 disables; default 4)",
    )
    fuzz_cmd.add_argument(
        "--adaptive-every",
        type=int,
        default=4,
        metavar="N",
        help="run the adaptive-execution differential (mid-query "
        "replans must be result-identical, deterministic, and keep "
        "g = d post-splice) every Nth case (0 disables; default 4)",
    )
    fuzz_cmd.add_argument(
        "--fused-every",
        type=int,
        default=2,
        metavar="N",
        help="run the fused-codegen differential (fused execution "
        "byte-identical to plain batch at two batch sizes, plus "
        "post-activation g = d at corner bindings) every Nth case "
        "(0 disables; default 2)",
    )
    fuzz_cmd.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run the sharded differential (coordinator + N in-process "
        "shards vs the oracle, per-shard g = d by exhaustive choose-plan "
        "enumeration) every --sharded-every cases (0 disables; default 0)",
    )
    fuzz_cmd.add_argument(
        "--sharded-every",
        type=int,
        default=4,
        metavar="N",
        help="throttle for the --shards differential: every Nth case "
        "(0 disables; default 4)",
    )
    fuzz_cmd.add_argument(
        "--smoke",
        action="store_true",
        help="fixed-seed 150-case run for CI (overrides --seed/--cases; "
        "failures always write artifacts, to fuzz-artifacts/ unless "
        "--artifact-dir says otherwise)",
    )
    fuzz_cmd.add_argument(
        "--coverage",
        action="store_true",
        help="plan-shape-coverage-guided fuzzing: fingerprint every "
        "case's plans, and evolve the generator's catalog/data state "
        "(statistics skew, index churn, relation growth, grammar mix) "
        "whenever discovery of new shapes goes stale",
    )
    fuzz_cmd.add_argument(
        "--coverage-report",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the plan-shape coverage report as JSON to FILE "
        "(implies --coverage)",
    )
    fuzz_cmd.add_argument(
        "--coverage-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="fail (exit 1) if this run discovers fewer distinct plan "
        "shapes than the checked-in baseline report at FILE "
        "(implies --coverage)",
    )
    fuzz_cmd.set_defaults(handler=_cmd_fuzz)

    demo_cmd = commands.add_parser("demo", help="the Figure 1 motivating example")
    demo_cmd.set_defaults(handler=_cmd_demo)

    for command in (
        explain_cmd,
        choose_cmd,
        analyze_cmd,
        run_cmd,
        experiments_cmd,
        metrics_cmd,
        serve_cmd,
        parallel_cmd,
        shard_cmd,
        exec_cmd,
        adaptive_cmd,
        fuzz_cmd,
        demo_cmd,
    ):
        _add_obs_options(command)
    return parser


def _add_obs_options(command: argparse.ArgumentParser) -> None:
    group = command.add_argument_group("observability")
    group.add_argument(
        "--trace",
        type=Path,
        metavar="FILE",
        help="record a JSONL trace (spans + events) of the whole run to FILE",
    )
    group.add_argument(
        "--stats",
        action="store_true",
        help="print the metrics snapshot (JSON) after the command finishes",
    )
    group.add_argument(
        "--verbose",
        action="store_true",
        help="debug logging from the repro.* hierarchy (same as REPRO_LOG=debug)",
    )


def _add_catalog_options(command: argparse.ArgumentParser) -> None:
    group = command.add_mutually_exclusive_group()
    group.add_argument(
        "--catalog", type=Path, help="catalog JSON file (Catalog.to_json format)"
    )
    group.add_argument(
        "--demo-catalog",
        action="store_true",
        help="use the built-in 10-relation experiment catalog (R1..R10)",
    )


def _load_catalog(args: argparse.Namespace) -> Catalog:
    if getattr(args, "catalog", None):
        return Catalog.from_json(args.catalog.read_text())
    return make_experiment_catalog()


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------
def _cmd_explain(args: argparse.Namespace) -> int:
    catalog = _load_catalog(args)
    parsed = parse_query(args.sql, catalog)
    result = optimize_query(
        parsed.graph,
        catalog,
        CostModel(),
        mode=OptimizationMode(args.mode),
        required_order=parsed.order_by_keys or None,
    )
    if args.dot:
        print(to_dot(result.plan, title=args.sql.strip()))
    else:
        print(explain(result.plan))
        print(
            f"\n{result.plan_node_count} operator nodes, "
            f"{result.choose_plan_count} choose-plan operators, "
            f"optimized in {result.optimization_seconds * 1000:.2f} ms "
            f"({result.stats.candidates_considered} candidates costed)"
        )
    return 0


def _cmd_choose(args: argparse.Namespace) -> int:
    catalog = _load_catalog(args)
    parsed = parse_query(args.sql, catalog)
    result = optimize_query(
        parsed.graph, catalog, CostModel(), mode=OptimizationMode.DYNAMIC
    )
    values = _parse_assignments(args.bind, "--bind", float)
    env = parsed.graph.parameters.bind(values)
    decision = resolve_plan(result.plan, result.ctx.with_env(env))
    used = {id(node) for node in effective_plan_nodes(result.plan, decision.choices)}
    print(explain(result.plan))
    print(f"\ndecisions under {values}:")
    for choose_id, chosen in decision.choices.items():
        marker = "active" if choose_id in used else "unreached"
        print(f"  choose-plan -> {chosen.label}  [{marker}]")
    print(f"predicted execution cost: {decision.execution_cost:.4f} s")
    return 0


def _host_variable_names(graph) -> set[str]:
    from repro.logical.predicates import HostVariable

    names: set[str] = set()
    for relation in graph.relations:
        for predicate in graph.selections_on(relation):
            operand = getattr(predicate, "operand", None)
            if isinstance(operand, HostVariable):
                names.add(operand.name)
    return names


def _parse_assignments(items: list[str], flag: str, cast) -> dict:
    values: dict = {}
    for item in items:
        name, _, raw = item.partition("=")
        if not raw:
            raise ValueError(f"{flag} expects NAME=VALUE, got {item!r}")
        values[name] = cast(raw)
    return values


def _host_value(raw: str) -> object:
    """Host-variable values are integers over synthetic domains; fall back
    to float for fractional inputs."""
    try:
        return int(raw)
    except ValueError:
        return float(raw)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.executor.database import Database
    from repro.executor.executor import execute_plan
    from repro.obs.telemetry import get_ledger
    from repro.runtime.prepared import PreparedQuery

    if args.top:
        get_ledger().enable()  # record estimation errors at breakers
    catalog = _load_catalog(args)
    value_bindings = _parse_assignments(args.values, "--set", _host_value)
    overrides = _parse_assignments(args.bind, "--bind", float)

    prepared = PreparedQuery.prepare(
        args.sql, catalog, CostModel(), mode=OptimizationMode(args.mode)
    )
    missing = sorted(
        _host_variable_names(prepared.graph) - set(value_bindings)
    )
    if missing:
        raise ValueError(
            "missing host-variable value(s): "
            + ", ".join(missing)
            + " (pass --set NAME=VALUE)"
        )
    db = Database(catalog, prepared.model)
    db.load_synthetic(seed=args.seed)
    parameter_values = prepared.derive_parameters(db, value_bindings, overrides)
    activation = prepared.activate(parameter_values)
    adaptive_run = None
    if args.adaptive:
        from repro.adaptive.controller import execute_adaptive_plan

        adaptive_run = execute_adaptive_plan(
            prepared.module.plan,
            prepared.graph,
            db,
            prepared.module.ctx,
            bindings=value_bindings,
            parameter_values=parameter_values,
            choices=activation.decision.choices,
            analyze=True,
            mode=prepared.mode,
        )
        result = adaptive_run.result
    else:
        result = execute_plan(
            prepared.module.plan,
            db,
            bindings=value_bindings,
            choices=activation.decision.choices,
            analyze=True,
        )
    # Per-operator counters come from the last execution attempt; after a
    # mid-query replan that is the spliced remainder plan (its scans over
    # __adaptive* relations read the pinned intermediates), so show it.
    shown_plan = prepared.module.plan
    shown_choices = activation.decision.choices
    if adaptive_run is not None and adaptive_run.replans:
        final = adaptive_run.replans[-1]
        shown_plan = final.outcome.result.plan
        shown_choices = final.decision.choices
        print(
            f"final spliced plan (after {len(adaptive_run.replans)} "
            "mid-query replan(s)):\n"
        )
    print(
        explain_analyze(
            shown_plan,
            result.operator_stats,
            choices=shown_choices,
        )
    )
    metrics = result.metrics
    print(
        f"\n{metrics.rows} rows in {metrics.wall_seconds * 1000:.2f} ms wall; "
        f"simulated I/O {metrics.io_seconds:.4f} s "
        f"({metrics.sequential_reads} sequential + {metrics.random_reads} random "
        f"reads, {metrics.writes} writes, "
        f"{metrics.buffer_hits}/{metrics.buffer_hits + metrics.buffer_misses} "
        f"buffer hits)"
    )
    print(
        f"start-up: {activation.decision.decision_count} choose-plan decisions, "
        f"{activation.decision.cost_evaluations} cost evaluations, "
        f"predicted cost {activation.decision.execution_cost:.4f} s"
    )
    if adaptive_run is not None:
        _print_adaptive(adaptive_run)
    if args.show_fused:
        _print_fused(
            prepared.module.plan,
            db,
            value_bindings,
            activation.decision.choices,
        )
    if args.shards:
        _print_sharded(
            args.sql,
            catalog,
            value_bindings,
            OptimizationMode(args.mode),
            args.seed,
            args.shards,
        )
    if args.top:
        _print_top(args.top, result.operator_stats, get_ledger())
    return 0


def _print_sharded(
    sql, catalog, value_bindings, mode, seed, shards
) -> None:
    """The ``analyze --shards N`` report section: each shard re-runs the
    start-up decision against its local statistics; divergence from the
    coordinator's baseline is expected behaviour worth seeing."""
    from repro.shard.coordinator import ShardedQueryService

    service = ShardedQueryService(
        catalog,
        CostModel(),
        shards=shards,
        workers=1,
        in_process=True,
        seed=seed,
    )
    try:
        sharded = service.execute(sql, value_bindings, mode=mode)
    finally:
        service.close()
    print(
        f"\nsharded ({shards} in-process shards, driver "
        f"{sharded.driver!r}): {sharded.row_count} rows, "
        f"{sharded.decision_divergence} diverged start-up decision(s)"
    )
    print(
        "  coordinator baseline: "
        f"{[list(pair) for pair in sharded.baseline_decision]}"
    )
    if len(sharded.shard_decisions) < shards:
        print(
            f"  (partition-pruned: routed to "
            f"{len(sharded.shard_decisions)} shard(s))"
        )
    for shard_id, signature in enumerate(sharded.shard_decisions):
        marker = (
            "  <- diverged"
            if signature != sharded.baseline_decision
            else ""
        )
        print(
            f"  shard {shard_id}: "
            f"{[list(pair) for pair in signature]}{marker}"
        )


def _print_fused(plan, db, bindings, choices) -> None:
    """The ``analyze --show-fused`` report: each pipeline's generated
    source with its plan-signature cache key, plus codegen counters.

    ``analyze`` itself meters every operator, which disables fusion for
    the measured run; the pipelines are therefore built here separately
    (construction compiles but never executes, so no I/O is charged).
    """
    from repro.executor.executor import build_fused_pipelines
    from repro.obs.metrics import get_metrics

    pipelines = build_fused_pipelines(plan, db, bindings, choices)
    print(f"\nfused pipelines: {len(pipelines)}")
    for index, pipeline in enumerate(pipelines):
        source = "scan" if pipeline.scan_fused else "batch"
        print(
            f"\n--- pipeline {index}: {pipeline.label} "
            f"[cache key {pipeline.cache_key}, {source}-sourced] ---"
        )
        print(pipeline.source_text.rstrip())
    registry = get_metrics()
    hits = registry.counter("codegen.cache_hits").value
    misses = registry.counter("codegen.cache_misses").value
    print(
        f"\ncodegen cache: {hits:.0f} hits / {misses:.0f} misses "
        "(process-wide, keyed by plan signature + source shape)"
    )


def _print_adaptive(adaptive_run) -> None:
    """The ``--adaptive`` report section: one line per replan event."""
    print(
        f"\nadaptive: {adaptive_run.triggered} trigger(s), "
        f"{len(adaptive_run.replans)} replan(s), "
        f"{adaptive_run.kept} kept, {adaptive_run.attempts} attempt(s)"
    )
    for rank, event in enumerate(adaptive_run.replans, start=1):
        print(
            f"  {rank}. {event.label}: observed {event.observed} vs "
            f"estimate [{event.estimate_low:.1f}, {event.estimate_high:.1f}] "
            f"(error {event.error_ratio:.2f}x); pinned "
            f"{event.pinned_rows} rows across "
            f"{len(event.pinned_relations)} intermediate(s), re-optimized "
            f"in {event.reopt_seconds * 1000:.2f} ms"
        )


def _print_top(n: int, operator_stats, ledger) -> None:
    """The ``analyze --top N`` report: slowest operators by inclusive
    time, then the worst estimation errors the ledger recorded."""
    slowest = sorted(
        operator_stats.values(), key=lambda s: -s.seconds
    )[:n]
    print(f"\ntop {n} operators by inclusive time:")
    for rank, stats in enumerate(slowest, start=1):
        print(
            f"  {rank}. {stats.label}: {stats.seconds * 1000:.2f} ms, "
            f"{stats.rows} rows, {stats.pages_read} pages"
        )
    worst = ledger.worst(n)
    print(f"top {n} estimation errors (telemetry ledger):")
    if not worst:
        print("  (no pipeline breakers recorded)")
    for rank, entry in enumerate(worst, start=1):
        print(
            f"  {rank}. {entry.label}: observed {entry.last_observed:.0f} "
            f"vs estimate [{entry.estimate_low:.1f}, "
            f"{entry.estimate_high:.1f}], error ratio "
            f"{entry.max_error_ratio:.2f}x "
            f"({entry.out_of_interval}/{entry.count} out of interval)"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.executor.database import Database
    from repro.runtime.prepared import PreparedQuery

    catalog = _load_catalog(args)
    value_bindings = _parse_assignments(args.values, "--set", _host_value)
    overrides = _parse_assignments(args.bind, "--bind", float)

    prepared = PreparedQuery.prepare(
        args.sql, catalog, CostModel(), mode=OptimizationMode(args.mode)
    )
    missing = sorted(
        _host_variable_names(prepared.graph) - set(value_bindings)
    )
    if missing:
        raise ValueError(
            "missing host-variable value(s): "
            + ", ".join(missing)
            + " (pass --set NAME=VALUE)"
        )
    db = Database(catalog, prepared.model)
    db.load_synthetic(seed=args.seed)
    parameter_values = prepared.derive_parameters(db, value_bindings, overrides)
    adaptive_run = None
    if args.adaptive:
        adaptive_run = prepared.execute_adaptive(
            db, value_bindings, parameter_values=parameter_values
        )
        result = adaptive_run.result
    else:
        result = prepared.execute(
            db, value_bindings, parameter_values=parameter_values
        )

    header = " | ".join(a.qualified_name for a in result.schema.attributes)
    if args.limit and result.rows:
        print(header)
        print("-" * len(header))
        for row in result.rows[: args.limit]:
            print(" | ".join(str(value) for value in row))
        if len(result.rows) > args.limit:
            print(f"... ({len(result.rows) - args.limit} more)")
    metrics = result.metrics
    print(
        f"\n{metrics.rows} rows in {metrics.wall_seconds * 1000:.2f} ms wall; "
        f"simulated I/O {metrics.io_seconds:.4f} s "
        f"({metrics.sequential_reads} sequential + {metrics.random_reads} "
        f"random reads)"
    )
    if adaptive_run is not None:
        _print_adaptive(adaptive_run)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import (
        figures,
        generate_bindings,
        paper_queries,
        report,
        run_experiment,
    )

    model = CostModel()
    catalog = make_experiment_catalog()
    records = []
    for query in paper_queries(catalog, with_memory=args.memory):
        bindings = generate_bindings(query.graph.parameters, n=args.n)
        print(f"running {query.label} ...", file=sys.stderr)
        records.append(run_experiment(query, catalog, bindings, model))
    print(report.render_figure4(figures.figure4_rows(records)), end="\n\n")
    print(report.render_figure5(figures.figure5_rows(records)), end="\n\n")
    print(report.render_figure6(figures.figure6_rows(records)), end="\n\n")
    print(report.render_figure7(figures.figure7_rows(records, model)), end="\n\n")
    print(report.render_figure8(figures.figure8_rows(records, model)), end="\n\n")
    print(report.render_break_even(figures.break_even_rows(records, model)))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.metrics import (
        render_openmetrics,
        snapshot_jsonl,
        validate_openmetrics,
    )
    from repro.obs.telemetry import enable_telemetry
    from repro.service import (
        QueryService,
        default_statements,
        generate_invocations,
        run_workload,
    )

    catalog = _load_catalog(args)
    if args.workload:
        enable_telemetry()
        service = QueryService(
            catalog, CostModel(), workers=2, seed=args.seed
        )
        try:
            statements = default_statements(catalog)
            run_workload(
                service,
                generate_invocations(
                    statements, args.workload, seed=args.seed + 1
                ),
            )
        finally:
            service.close()
    if args.format == "jsonl":
        text = snapshot_jsonl()
    else:
        text = render_openmetrics()
        validate_openmetrics(text)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _telemetry_drift_phase(service, catalog) -> dict:
    """Exercise the telemetry feedback loop end to end, deterministically.

    Two controlled provocations against the first catalog relation:

    1. **Plan regression** — warm a grouped statement's runtime baseline
       at a near-empty binding, then invoke it at full selectivity; the
       flight recorder sees a multiple of the baseline, emits
       ``plan.regression``, and flags the cached plan for recompile.
    2. **Estimation drift** — deflate the relation's catalog cardinality
       (the plan cache recompiles against the new statistics) while the
       workers' loaded data keeps its original size; the aggregation
       breaker observes far more rows than the compile-time interval
       allows and the ledger records ``estimate.out_of_interval``.

    Returns the telemetry evidence for the benchmark artifact.  The
    catalog statistics are restored before returning.
    """
    from repro.obs.telemetry import get_flight_recorder, get_ledger

    relation = catalog.relation_names[0]
    info = catalog.relation(relation)
    attribute = next(iter(info.schema))
    qualified = f"{relation}.{attribute.name}"
    recorder = get_flight_recorder()
    ledger = get_ledger()

    grouped = (
        f"SELECT {qualified}, COUNT(*) FROM {relation} "
        f"WHERE {qualified} < :v GROUP BY {qualified}"
    )
    floor = recorder.min_seconds
    recorder.min_seconds = 0.0  # keep the demo deterministic across hosts
    try:
        for _ in range(recorder.warmup + 1):
            service.execute(grouped, {"v": 2})
        service.execute(grouped, {"v": attribute.domain_size})
    finally:
        recorder.min_seconds = floor

    actual = info.stats.cardinality
    catalog.set_cardinality(relation, max(1, actual // 5))
    try:
        service.execute(
            f"SELECT {qualified}, COUNT(*) FROM {relation} "
            f"GROUP BY {qualified}"
        )
    finally:
        catalog.set_cardinality(relation, actual)

    entries = ledger.records()
    return {
        "plan_regressions": len(recorder.regressions()),
        "out_of_interval_entries": sum(
            1 for entry in entries if entry.out_of_interval
        ),
        "worst_error_ratio": max(
            (entry.max_error_ratio for entry in entries), default=1.0
        ),
        "ledger_entries": len(entries),
        "flight_records": len(recorder.records()),
    }


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.obs.metrics import get_metrics as _get_metrics
    from repro.obs.telemetry import enable_telemetry
    from repro.service import (
        QueryService,
        default_statements,
        generate_invocations,
        run_workload,
    )

    catalog = _load_catalog(args)
    invocations = args.invocations
    if invocations < 1:
        raise ValueError("--invocations must be at least 1")
    workers = args.workers
    statements_count = args.statements
    if args.smoke:
        invocations = min(invocations, 25)
        workers = min(workers, 2)
        statements_count = 2 if statements_count is None else statements_count

    statements = default_statements(catalog, statements_count)
    service = QueryService(
        catalog,
        CostModel(),
        workers=workers,
        queue_limit=args.queue_limit,
        cache_capacity=args.cache_capacity,
        cache_ttl_seconds=args.cache_ttl,
        seed=args.seed,
        adaptive=args.adaptive,
    )
    enable_telemetry()
    try:
        stream = generate_invocations(
            statements, invocations, zipf_s=args.zipf, seed=args.seed + 1
        )
        report = run_workload(service, stream)
        drift = _telemetry_drift_phase(service, catalog)
    finally:
        service.close()

    print(
        f"{report.completed}/{report.invocations} invocations over "
        f"{len(statements)} statements ({workers} workers, "
        f"queue limit {args.queue_limit}, zipf s={args.zipf})"
    )
    print(
        f"throughput: {report.throughput_qps:,.0f} queries/s "
        f"in {report.elapsed_seconds:.3f} s wall"
    )
    print(
        f"latency: p50 {report.latency_p50_seconds * 1e3:.2f} ms, "
        f"p95 {report.latency_p95_seconds * 1e3:.2f} ms, "
        f"p99 {report.latency_p99_seconds * 1e3:.2f} ms"
    )
    print(
        f"plan cache: {report.cache_hit_rate * 100:.1f}% hit rate "
        f"({report.cache_hits} hits / {report.cache_misses} misses), "
        f"{report.optimizer_runs} optimizer runs"
    )
    print(
        f"backpressure: {report.rejections} overload rejections "
        f"(retried), {report.failed} failures"
    )
    if report.rejections:
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(report.shed_load_reasons.items())
        )
        print(
            f"shed load: {reasons} (max retry_after_hint "
            f"{report.max_retry_after_hint * 1e3:.2f} ms, max queue depth "
            f"{report.max_rejection_queue_depth})"
        )
    print(
        f"telemetry drift phase: {drift['plan_regressions']} plan "
        f"regression(s), {drift['out_of_interval_entries']} out-of-interval "
        f"ledger entr(ies) (worst error ratio "
        f"{drift['worst_error_ratio']:.2f}x, {drift['ledger_entries']} "
        f"ledger entries, {drift['flight_records']} flight records)"
    )

    snapshot = _get_metrics().snapshot()
    codegen_hits = float(snapshot.get("codegen.cache_hits", 0.0))
    codegen_misses = float(snapshot.get("codegen.cache_misses", 0.0))
    codegen_total = codegen_hits + codegen_misses
    if codegen_total:
        print(
            f"codegen cache: {codegen_hits / codegen_total * 100:.1f}% hit "
            f"rate ({codegen_hits:.0f} hits / {codegen_misses:.0f} misses) "
            "— fused pipelines compile once per plan signature"
        )
    payload = {
        "config": {
            "invocations": invocations,
            "workers": workers,
            "queue_limit": args.queue_limit,
            "statements": len(statements),
            "zipf_s": args.zipf,
            "cache_capacity": args.cache_capacity,
            "cache_ttl_seconds": args.cache_ttl,
            "seed": args.seed,
            "adaptive": bool(args.adaptive),
            "smoke": bool(args.smoke),
        },
        "report": report.as_dict(),
        "telemetry": drift,
        "metrics": {
            name: value
            for name, value in snapshot.items()
            if name.startswith(
                (
                    "plan_cache.",
                    "service.",
                    "optimizer.runs",
                    "telemetry.",
                    "adaptive.",
                    "codegen.",
                )
            )
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


def _cmd_parallel_bench(args: argparse.Namespace) -> int:
    from repro.parallel.bench import SMOKE_CONFIG, run_speedup_bench

    payload = run_speedup_bench(**(SMOKE_CONFIG if args.smoke else {}))
    serial = payload["serial"]
    print(
        f"serial: {serial['seconds']:.2f}s "
        f"({serial['rows']} rows, {serial['active_exchanges']} exchanges)"
    )
    ok = serial["active_exchanges"] == 0
    for run in payload["runs"]:
        print(
            f"DOP={run['dop']}: {run['seconds']:.2f}s "
            f"(speedup {run['speedup']:.2f}x, "
            f"{run['active_exchanges']} exchange(s), {run['rows']} rows)"
        )
        ok = ok and run["rows"] == serial["rows"] and run["active_exchanges"] >= 1
    top = max(payload["runs"], key=lambda run: run["dop"])
    if top["speedup"] < 2.0:
        print(f"FAIL: DOP={top['dop']} speedup below the 2x acceptance bar")
        ok = False
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


def _cmd_shard_bench(args: argparse.Namespace) -> int:
    from repro.shard.bench import SMOKE_CONFIG, SPEEDUP_TARGET, run_shard_bench

    config = dict(SMOKE_CONFIG) if args.smoke else {}
    if args.shards is not None:
        if args.shards < 1:
            raise ValueError("--shards must be at least 1")
        config["shards"] = args.shards
    payload = run_shard_bench(**config)

    correctness = payload["correctness"]
    print(
        f"correctness: {correctness['statements_verified']} statement(s) "
        f"byte-identical to single-process execution"
    )
    for index, round_ in enumerate(payload["rounds"]):
        print(
            f"round {index}: baseline {round_['baseline_qps']:,.1f} qps, "
            f"sharded {round_['sharded_qps']:,.1f} qps "
            f"(speedup {round_['speedup']:.2f}x)"
        )
    base, shard = payload["baseline"], payload["sharded"]
    print(
        f"best: {payload['speedup']:.2f}x at "
        f"{payload['config']['shards']} shards "
        f"(baseline p99 {base['latency_p99_seconds'] * 1e3:.1f} ms, "
        f"sharded p99 {shard['latency_p99_seconds'] * 1e3:.1f} ms)"
    )
    routed = payload["metrics"].get("shard.routed", 0)
    scattered = payload["metrics"].get("shard.scattered", 0)
    print(
        f"routing: {routed} partition-pruned invocation(s), "
        f"{scattered} scatter/gather invocation(s)"
    )
    for sql, stat in payload["decision_divergence"].items():
        if stat["diverged_invocations"]:
            print(
                f"divergence: {stat['diverged_shards']} shard decision(s) "
                f"across {stat['diverged_invocations']}/"
                f"{stat['invocations']} invocation(s) for {sql!r}"
            )
    ok = True
    if not args.smoke and not payload["speedup_ok"]:
        print(
            f"FAIL: speedup {payload['speedup']:.2f}x below the "
            f"{SPEEDUP_TARGET:.0f}x acceptance bar"
        )
        ok = False
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


def _cmd_exec_bench(args: argparse.Namespace) -> int:
    from repro.executor.bench import SMOKE_CONFIG, run_exec_bench

    payload = run_exec_bench(**(SMOKE_CONFIG if args.smoke else {}))
    row = payload["row"]
    print(f"row mode: {row['seconds'] * 1e3:.1f}ms ({row['rows']} rows)")
    at_default = None
    for run in payload["batch_runs"]:
        print(
            f"batch: batch_size={run['batch_size']}: "
            f"{run['seconds'] * 1e3:.1f}ms (speedup {run['speedup']:.2f}x)"
        )
        if run["batch_size"] == 1024:
            at_default = run["speedup"]
    fused_vs_batch = 0.0
    for run in payload["fused_runs"]:
        print(
            f"fused: batch_size={run['batch_size']}: "
            f"{run['seconds'] * 1e3:.1f}ms (speedup {run['speedup']:.2f}x, "
            f"vs batch {run['speedup_vs_batch']:.2f}x)"
        )
        fused_vs_batch = max(fused_vs_batch, run["speedup_vs_batch"])
    sort = payload["partial_sort_scenario"]
    print(
        f"near-sorted ORDER BY: partial sort "
        f"{sort['partial_sort']['wall_seconds'] * 1e3:.1f}ms / "
        f"{sort['partial_sort']['writes']} spill writes vs full sort "
        f"{sort['full_sort']['wall_seconds'] * 1e3:.1f}ms / "
        f"{sort['full_sort']['writes']} writes "
        f"(wall {sort['wall_speedup']:.2f}x, "
        f"io saved {sort['io_seconds_saved']:.3f}s)"
    )
    ok = True
    # The smoke workload is too small to amortize batching or codegen
    # fully; the acceptance bars apply to the full configuration only.
    if not args.smoke:
        if at_default is None or at_default < 3.0:
            print(
                f"FAIL: batch_size=1024 speedup "
                f"{at_default if at_default is not None else 'missing'} "
                "below the 3x acceptance bar"
            )
            ok = False
        if fused_vs_batch < 2.0:
            print(
                f"FAIL: fused-over-batch speedup {fused_vs_batch:.2f} "
                "below the 2x acceptance bar"
            )
            ok = False
        if sort["writes_saved"] <= 0 or sort["io_seconds_saved"] <= 0:
            print("FAIL: partial sort shows no I/O win over the full sort")
            ok = False
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


def _cmd_adaptive_bench(args: argparse.Namespace) -> int:
    from repro.adaptive.bench import SMOKE_CONFIG, run_adaptive_bench

    payload = run_adaptive_bench(**(SMOKE_CONFIG if args.smoke else {}))
    for config in ("skewed", "uniform"):
        for label in ("static", "adaptive"):
            run = payload[config][label]
            print(
                f"{config}/{label}: {run['rows']} rows, "
                f"simulated I/O {run['io_seconds']:.2f}s, "
                f"wall {run['wall_seconds']:.2f}s, "
                f"{run['replans']} replan(s)"
            )
    print(
        f"skewed: io speedup {payload['io_speedup']:.2f}x, "
        f"wall speedup {payload['wall_speedup']:.2f}x; "
        f"uniform: wall overhead "
        f"{payload['uniform_wall_overhead'] * 100:+.1f}%"
    )
    for name, passed in payload["checks"].items():
        if not passed:
            print(f"FAIL: acceptance check {name}")
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if payload["ok"] else 1


# The smoke configuration is pinned so CI runs are reproducible: any
# violation at this seed is a regression, not fuzzing luck.
SMOKE_SEED = "smoke-v1"
SMOKE_CASES = 150


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.qa import load_baseline, run_fuzz

    seed = args.seed
    cases = args.cases
    artifact_dir = args.artifact_dir
    if args.smoke:
        seed, cases = SMOKE_SEED, SMOKE_CASES
        if artifact_dir is None:
            # CI must always get a replayable artifact path on failure.
            artifact_dir = Path("fuzz-artifacts")
    if cases < 1:
        raise ValueError("--cases must be at least 1")
    coverage = bool(
        args.coverage
        or args.coverage_report is not None
        or args.coverage_baseline is not None
    )
    report = run_fuzz(
        seed,
        cases,
        shrink=args.shrink,
        artifact_dir=artifact_dir,
        check_service_every=args.service_every,
        check_parallel_every=args.parallel_every,
        check_batch_every=args.batch_every,
        check_ledger_every=args.ledger_every,
        check_adaptive_every=args.adaptive_every,
        shards=args.shards,
        check_sharded_every=args.sharded_every,
        check_fused_every=args.fused_every,
        coverage=coverage,
        log=print,
    )
    print(report.summary())
    failed = not report.ok
    if coverage:
        payload = report.coverage_json()
        for dimension, count in payload["by_dimension"].items():
            print(f"  shapes[{dimension}] = {count}")
        if args.coverage_report is not None:
            args.coverage_report.parent.mkdir(parents=True, exist_ok=True)
            args.coverage_report.write_text(
                json.dumps(payload, indent=2) + "\n"
            )
            print(f"coverage report: {args.coverage_report}")
        if args.coverage_baseline is not None:
            floor = load_baseline(args.coverage_baseline)
            assert report.coverage is not None
            found = report.coverage.distinct_shapes
            if found < floor:
                print(
                    f"coverage REGRESSION: {found} distinct plan shapes "
                    f"< baseline {floor} ({args.coverage_baseline})"
                )
                failed = True
            else:
                print(
                    f"coverage ok: {found} distinct plan shapes "
                    f">= baseline {floor}"
                )
    if not report.ok:
        for failure in report.failures:
            case = failure.minimal_case
            print(f"\ncase {failure.index} ({failure.case.seed}):")
            print(f"  sql: {case.query.to_sql()}")
            if failure.artifact_path is not None:
                print(f"  artifact: {failure.artifact_path}")
            for violation in (
                failure.shrunk_violations
                if failure.shrunk_violations is not None
                else failure.violations
            ):
                print(f"  {violation.check}: {violation.detail}")
    return 1 if failed else 0


def _cmd_demo(args: argparse.Namespace) -> int:
    del args
    catalog = make_experiment_catalog(1)
    parsed = parse_query("SELECT * FROM R1 WHERE R1.a < :v", catalog)
    dynamic = optimize_query(
        parsed.graph, catalog, CostModel(), mode=OptimizationMode.DYNAMIC
    )
    print("dynamic plan for  SELECT * FROM R1 WHERE R1.a < :v\n")
    print(explain(dynamic.plan))
    for selectivity in (0.01, 0.9):
        env = parsed.graph.parameters.bind({"sel:v": selectivity})
        decision = resolve_plan(dynamic.plan, dynamic.ctx.with_env(env))
        chosen = decision.choices[id(dynamic.plan)]
        print(
            f"\nselectivity {selectivity:4.2f} -> {chosen.label} "
            f"(cost {decision.execution_cost:.3f} s)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
