"""Command-line interface: ``python -m repro <command>``.

Commands:

``explain``
    Parse a SQL query against a catalog and print the optimized plan
    (static or dynamic), optionally as Graphviz DOT.
``choose``
    Optimize dynamically, bind the supplied parameter values, and show
    which alternative every choose-plan operator activates.
``experiments``
    Regenerate the paper's Section 6 evaluation tables.
``demo``
    The motivating example (Figure 1) in one command.

Catalogs are JSON files (see ``Catalog.to_json``); ``--demo-catalog`` uses
the built-in experiment catalog instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.experiments.catalogs import make_experiment_catalog
from repro.optimizer.optimizer import OptimizationMode, optimize_query
from repro.physical.explain import explain, to_dot
from repro.query.parser import parse_query
from repro.runtime.chooser import effective_plan_nodes, resolve_plan


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except Exception as error:  # surfaced as a clean CLI message
        print(f"error: {error}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Dynamic query evaluation plans (SIGMOD 1994)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    explain_cmd = commands.add_parser(
        "explain", help="optimize a SQL query and print the plan"
    )
    _add_catalog_options(explain_cmd)
    explain_cmd.add_argument("sql", help="query text, e.g. 'SELECT * FROM R1 ...'")
    explain_cmd.add_argument(
        "--mode",
        choices=[m.value for m in OptimizationMode],
        default=OptimizationMode.DYNAMIC.value,
    )
    explain_cmd.add_argument(
        "--dot", action="store_true", help="emit Graphviz DOT instead of text"
    )
    explain_cmd.set_defaults(handler=_cmd_explain)

    choose_cmd = commands.add_parser(
        "choose", help="show start-up-time decisions for given bindings"
    )
    _add_catalog_options(choose_cmd)
    choose_cmd.add_argument("sql")
    choose_cmd.add_argument(
        "--bind",
        action="append",
        default=[],
        metavar="PARAM=VALUE",
        help="parameter binding, e.g. --bind sel:v=0.3 (repeatable)",
    )
    choose_cmd.set_defaults(handler=_cmd_choose)

    experiments_cmd = commands.add_parser(
        "experiments", help="regenerate the paper's Section 6 tables"
    )
    experiments_cmd.add_argument("--n", type=int, default=100)
    experiments_cmd.add_argument("--memory", action="store_true")
    experiments_cmd.set_defaults(handler=_cmd_experiments)

    demo_cmd = commands.add_parser("demo", help="the Figure 1 motivating example")
    demo_cmd.set_defaults(handler=_cmd_demo)
    return parser


def _add_catalog_options(command: argparse.ArgumentParser) -> None:
    group = command.add_mutually_exclusive_group()
    group.add_argument(
        "--catalog", type=Path, help="catalog JSON file (Catalog.to_json format)"
    )
    group.add_argument(
        "--demo-catalog",
        action="store_true",
        help="use the built-in 10-relation experiment catalog (R1..R10)",
    )


def _load_catalog(args: argparse.Namespace) -> Catalog:
    if getattr(args, "catalog", None):
        return Catalog.from_json(args.catalog.read_text())
    return make_experiment_catalog()


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------
def _cmd_explain(args: argparse.Namespace) -> int:
    catalog = _load_catalog(args)
    parsed = parse_query(args.sql, catalog)
    result = optimize_query(
        parsed.graph,
        catalog,
        CostModel(),
        mode=OptimizationMode(args.mode),
        required_order=parsed.order_by,
    )
    if args.dot:
        print(to_dot(result.plan, title=args.sql.strip()))
    else:
        print(explain(result.plan))
        print(
            f"\n{result.plan_node_count} operator nodes, "
            f"{result.choose_plan_count} choose-plan operators, "
            f"optimized in {result.optimization_seconds * 1000:.2f} ms "
            f"({result.stats.candidates_considered} candidates costed)"
        )
    return 0


def _cmd_choose(args: argparse.Namespace) -> int:
    catalog = _load_catalog(args)
    parsed = parse_query(args.sql, catalog)
    result = optimize_query(
        parsed.graph, catalog, CostModel(), mode=OptimizationMode.DYNAMIC
    )
    values: dict[str, float] = {}
    for item in args.bind:
        name, _, raw = item.partition("=")
        if not raw:
            raise ValueError(f"--bind expects PARAM=VALUE, got {item!r}")
        values[name] = float(raw)
    env = parsed.graph.parameters.bind(values)
    decision = resolve_plan(result.plan, result.ctx.with_env(env))
    used = {id(node) for node in effective_plan_nodes(result.plan, decision.choices)}
    print(explain(result.plan))
    print(f"\ndecisions under {values}:")
    for choose_id, chosen in decision.choices.items():
        marker = "active" if choose_id in used else "unreached"
        print(f"  choose-plan -> {chosen.label}  [{marker}]")
    print(f"predicted execution cost: {decision.execution_cost:.4f} s")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import (
        figures,
        generate_bindings,
        paper_queries,
        report,
        run_experiment,
    )

    model = CostModel()
    catalog = make_experiment_catalog()
    records = []
    for query in paper_queries(catalog, with_memory=args.memory):
        bindings = generate_bindings(query.graph.parameters, n=args.n)
        print(f"running {query.label} ...", file=sys.stderr)
        records.append(run_experiment(query, catalog, bindings, model))
    print(report.render_figure4(figures.figure4_rows(records)), end="\n\n")
    print(report.render_figure5(figures.figure5_rows(records)), end="\n\n")
    print(report.render_figure6(figures.figure6_rows(records)), end="\n\n")
    print(report.render_figure7(figures.figure7_rows(records, model)), end="\n\n")
    print(report.render_figure8(figures.figure8_rows(records, model)), end="\n\n")
    print(report.render_break_even(figures.break_even_rows(records, model)))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    del args
    catalog = make_experiment_catalog(1)
    parsed = parse_query("SELECT * FROM R1 WHERE R1.a < :v", catalog)
    dynamic = optimize_query(
        parsed.graph, catalog, CostModel(), mode=OptimizationMode.DYNAMIC
    )
    print("dynamic plan for  SELECT * FROM R1 WHERE R1.a < :v\n")
    print(explain(dynamic.plan))
    for selectivity in (0.01, 0.9):
        env = parsed.graph.parameters.bind({"sel:v": selectivity})
        decision = resolve_plan(dynamic.plan, dynamic.ctx.with_env(env))
        chosen = decision.choices[id(dynamic.plan)]
        print(
            f"\nselectivity {selectivity:4.2f} -> {chosen.label} "
            f"(cost {decision.execution_cost:.3f} s)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
