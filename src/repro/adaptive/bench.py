"""Adaptive re-optimization benchmark: mis-estimated skewed join.

The workload is a three-relation chain ``R ⋈ S ⋈ T`` whose selection on
``R`` is a literal equality the optimizer estimates from uniform
statistics — and the loaded data is deliberately skewed so the true
match count is ~20x the estimate.  The compile-time plan therefore
believes the filtered ``R`` (and everything joined above it) is tiny and
picks an index-nested-loops join into ``T``; in reality the intermediate
is large and the index join pays one random probe per row.  The adaptive
controller observes the blow-up at the first hash-join build
(a pipeline breaker that materializes the filtered ``R`` anyway), pins
the rows, re-optimizes the remainder with exact statistics, and the
spliced plan scans ``T`` once instead of probing it tens of thousands of
times.

``SimulatedDisk.latency_scale`` turns charged I/O into real sleeps, so
the ratio shows up in wall-clock time the same way it does in simulated
I/O seconds.  A second configuration loads ``R`` uniformly — estimates
are then honest, the guard never fires, and the bench asserts the
adaptive run is byte-identical in simulated I/O with bounded wall-clock
overhead: adaptivity is free until it is needed.
"""

from __future__ import annotations

import random
from time import perf_counter

from repro.adaptive.controller import execute_adaptive_plan
from repro.adaptive.policy import AdaptivePolicy
from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.executor.database import Database
from repro.executor.executor import execute_plan
from repro.logical.predicates import (
    CompareOp,
    HostVariable,
    JoinPredicate,
    Literal,
    SelectionPredicate,
)
from repro.logical.query import QueryGraph
from repro.optimizer.optimizer import OptimizationMode, optimize_query
from repro.runtime.chooser import resolve_plan

RECORD_BYTES = 512
SKEW_VALUE = 7  # the literal the hot rows share

SMOKE_CONFIG = {
    "r_rows": 800,
    "s_rows": 3_000,
    "t_rows": 8_000,
    "latency_scale": 0.0,
    "assert_wall": False,
}


def make_bench_catalog(r_rows: int, s_rows: int, t_rows: int) -> Catalog:
    """Chain-join catalog; only ``T`` is indexed and carries no
    selection, so an index-nested-loops join into ``T`` is the estimated
    winner when the outer looks tiny — the mis-estimated plan's trap."""
    catalog = Catalog()
    catalog.add_relation(
        "R",
        [("a", 40), ("k", max(2, s_rows // 10))],
        cardinality=r_rows,
        record_bytes=RECORD_BYTES,
    )
    catalog.add_relation(
        "S",
        [
            ("j", max(2, s_rows // 10)),
            ("m", max(2, t_rows // 4)),
            ("b", 100),
        ],
        cardinality=s_rows,
        record_bytes=RECORD_BYTES,
    )
    catalog.add_relation(
        "T",
        [("c", max(2, t_rows // 4)), ("d", 1000)],
        cardinality=t_rows,
        record_bytes=RECORD_BYTES,
    )
    catalog.create_index("T_c", "T", "c")
    return catalog


def make_bench_query(catalog: Catalog) -> QueryGraph:
    """``R.a = SKEW_VALUE`` (literal, point estimate) joined down the
    chain, plus an unbound predicate on ``S`` so the plan is genuinely
    dynamic (choose-plan operators survive to run time)."""
    from repro.params.parameter import ParameterSpace

    space = ParameterSpace()
    space.add_selectivity("sel_s", expected=0.5)
    selections = {
        "R": (
            SelectionPredicate(
                attribute=catalog.attribute("R.a"),
                op=CompareOp.EQ,
                operand=Literal(SKEW_VALUE),
            ),
        ),
        "S": (
            SelectionPredicate(
                attribute=catalog.attribute("S.b"),
                op=CompareOp.LT,
                operand=HostVariable("v", "sel_s"),
            ),
        ),
    }
    joins = (
        JoinPredicate(catalog.attribute("R.k"), catalog.attribute("S.j")),
        JoinPredicate(catalog.attribute("S.m"), catalog.attribute("T.c")),
    )
    return QueryGraph(
        relations=("R", "S", "T"),
        selections=selections,
        joins=joins,
        parameters=space,
    )


def load_bench_data(
    catalog: Catalog,
    *,
    r_rows: int,
    s_rows: int,
    t_rows: int,
    skewed: bool,
    seed: int,
) -> Database:
    """A fresh database per measured run, so buffer-pool state never
    leaks between timings.  ``skewed=True`` gives half of ``R`` the hot
    literal (~20x the uniform estimate); ``skewed=False`` loads ``R``
    uniformly, making the compile-time estimate honest."""
    rng = random.Random(seed)
    db = Database(catalog)
    a_domain = catalog.attribute("R.a").domain_size
    k_domain = catalog.attribute("R.k").domain_size
    db.load_relation(
        "R",
        [
            (
                SKEW_VALUE
                if skewed and rng.random() < 0.5
                else rng.randrange(a_domain),
                rng.randrange(k_domain),
            )
            for _ in range(r_rows)
        ],
    )
    j_domain = catalog.attribute("S.j").domain_size
    m_domain = catalog.attribute("S.m").domain_size
    b_domain = catalog.attribute("S.b").domain_size
    db.load_relation(
        "S",
        [
            (
                rng.randrange(j_domain),
                rng.randrange(m_domain),
                rng.randrange(b_domain),
            )
            for _ in range(s_rows)
        ],
    )
    c_domain = catalog.attribute("T.c").domain_size
    d_domain = catalog.attribute("T.d").domain_size
    db.load_relation(
        "T",
        [
            (rng.randrange(c_domain), rng.randrange(d_domain))
            for _ in range(t_rows)
        ],
    )
    return db


def _run_config(
    graph: QueryGraph,
    catalog: Catalog,
    model: CostModel,
    *,
    skewed: bool,
    sizes: dict,
    latency_scale: float,
    seed: int,
    max_reopts: int,
    repeats: int = 1,
) -> dict:
    """Execute the dynamic plan statically and adaptively on fresh,
    identically-loaded databases; returns both measurements.

    ``repeats`` re-runs each measurement and keeps the minimum wall
    time (simulated I/O is deterministic and identical across runs) —
    the uniform configuration's runs are short enough that scheduler
    noise would otherwise dominate a percent-level overhead bar."""
    dynamic = optimize_query(graph, catalog, model, mode=OptimizationMode.DYNAMIC)
    bindings = {"v": catalog.attribute("S.b").domain_size // 2}
    runs = {}
    for label in ("static", "adaptive"):
        record = None
        best_wall = None
        for _ in range(max(1, repeats)):
            db = load_bench_data(catalog, skewed=skewed, seed=seed, **sizes)
            values = {
                "sel_s": db.implied_selectivity(
                    graph.selections_on("S")[0], bindings
                )
            }
            decision = resolve_plan(
                dynamic.plan,
                dynamic.ctx.with_env(dynamic.ctx.env.space.bind(values)),
            )
            db.disk.latency_scale = latency_scale
            try:
                started = perf_counter()
                if label == "static":
                    result = execute_plan(
                        dynamic.plan,
                        db,
                        bindings=bindings,
                        choices=decision.choices,
                    )
                    record = {
                        "rows": len(result.rows),
                        "io_seconds": result.metrics.io_seconds,
                        "replans": 0,
                        "triggered": 0,
                    }
                else:
                    adaptive = execute_adaptive_plan(
                        dynamic.plan,
                        graph,
                        db,
                        dynamic.ctx,
                        policy=AdaptivePolicy(max_reopts=max_reopts),
                        bindings=bindings,
                        parameter_values=values,
                        choices=decision.choices,
                    )
                    record = {
                        "rows": len(adaptive.rows),
                        "io_seconds": adaptive.result.metrics.io_seconds,
                        "replans": len(adaptive.replans),
                        "triggered": adaptive.triggered,
                        "events": [
                            event.as_dict() for event in adaptive.replans
                        ],
                    }
                wall = perf_counter() - started
            finally:
                db.disk.latency_scale = 0.0
            best_wall = wall if best_wall is None else min(best_wall, wall)
        record["wall_seconds"] = best_wall
        runs[label] = record
    return runs


def run_adaptive_bench(
    *,
    r_rows: int = 2_000,
    s_rows: int = 8_000,
    t_rows: int = 20_000,
    latency_scale: float = 0.02,
    seed: int = 13,
    max_reopts: int = 2,
    assert_wall: bool = True,
) -> dict:
    """The full benchmark payload: skewed (mis-estimated) and uniform
    (honest-estimate) configurations, each static vs adaptive.

    ``assert_wall=False`` (the smoke configuration) skips the wall-clock
    based pass/fail fields — simulated I/O seconds are deterministic and
    carry the acceptance decision there.
    """
    catalog = make_bench_catalog(r_rows, s_rows, t_rows)
    graph = make_bench_query(catalog)
    model = CostModel()
    sizes = {"r_rows": r_rows, "s_rows": s_rows, "t_rows": t_rows}

    skewed = _run_config(
        graph,
        catalog,
        model,
        skewed=True,
        sizes=sizes,
        latency_scale=latency_scale,
        seed=seed,
        max_reopts=max_reopts,
    )
    uniform = _run_config(
        graph,
        catalog,
        model,
        skewed=False,
        sizes=sizes,
        latency_scale=latency_scale,
        seed=seed,
        max_reopts=max_reopts,
        # Uniform runs are short (~0.4 s at the default latency scale);
        # best-of-3 keeps the ≤5% overhead bar meaningful under noise.
        repeats=3 if assert_wall else 1,
    )

    io_speedup = (
        skewed["static"]["io_seconds"] / skewed["adaptive"]["io_seconds"]
        if skewed["adaptive"]["io_seconds"]
        else 0.0
    )
    wall_speedup = (
        skewed["static"]["wall_seconds"] / skewed["adaptive"]["wall_seconds"]
        if skewed["adaptive"]["wall_seconds"]
        else 0.0
    )
    overhead = (
        uniform["adaptive"]["wall_seconds"] / uniform["static"]["wall_seconds"]
        - 1.0
        if uniform["static"]["wall_seconds"]
        else 0.0
    )
    payload = {
        "config": {
            **sizes,
            "latency_scale": latency_scale,
            "seed": seed,
            "max_reopts": max_reopts,
            "skew_value": SKEW_VALUE,
        },
        "skewed": skewed,
        "uniform": uniform,
        "io_speedup": io_speedup,
        "wall_speedup": wall_speedup,
        "uniform_wall_overhead": overhead,
        "checks": _acceptance(
            skewed, uniform, io_speedup, wall_speedup, overhead, assert_wall
        ),
    }
    payload["ok"] = all(payload["checks"].values())
    return payload


def _acceptance(
    skewed, uniform, io_speedup, wall_speedup, overhead, assert_wall
) -> dict:
    """The acceptance bars, individually reported so a failing run says
    which bar broke."""
    checks = {
        # The mis-estimated configuration must actually replan mid-query
        # and the spliced plan must return the same result.
        "skewed_replanned": skewed["adaptive"]["replans"] >= 1,
        "skewed_rows_match": skewed["adaptive"]["rows"]
        == skewed["static"]["rows"],
        # ... and win by at least 1.5x in (deterministic) simulated I/O.
        "io_speedup_1_5x": io_speedup >= 1.5,
        # Honest estimates: the guard must never fire, and the adaptive
        # run must charge exactly the same simulated I/O as the static
        # one — the off-trigger path adds no I/O at all.
        "uniform_never_triggered": uniform["adaptive"]["triggered"] == 0,
        "uniform_rows_match": uniform["adaptive"]["rows"]
        == uniform["static"]["rows"],
        "uniform_io_identical": uniform["adaptive"]["io_seconds"]
        == uniform["static"]["io_seconds"],
    }
    if assert_wall:
        checks["wall_speedup_1_5x"] = wall_speedup >= 1.5
        checks["uniform_overhead_5pct"] = overhead <= 0.05
    return checks
