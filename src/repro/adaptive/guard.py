"""Checkpoint collection and the mid-query replan trigger.

The executor wraps eligible pipeline breakers (sort, hash-join build) in
checkpoint iterators; each one drains its input, hands the buffered rows
to the :class:`AdaptiveGuard`, and replays them.  The guard compares the
observed cardinality against the breaker node's compile-time interval.
When the observation misses the interval by at least the policy
threshold, it raises :class:`ReplanSignal` — unwinding the execution —
with the triggering :class:`Checkpoint` attached, so the controller can
pin the materialized rows as a synthetic base relation and re-enter the
optimizer for the remaining subplan.

Eligibility (:meth:`AdaptiveGuard.wants`) is decided at iterator-build
time, so ineligible breakers pay nothing: a breaker is checkpointable
only when its resolved subtree covers a *strict, non-empty* subset of
the query's relations through plain scan/filter/join operators.
Aggregation, projection, Top-N, and exchange subtrees are excluded —
their outputs are not expressible as a base relation joined against the
remaining query — as is any subtree whose signature a previous failed
replan suppressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.adaptive.policy import AdaptivePolicy
from repro.executor.tuples import Row, RowSchema
from repro.obs.metrics import get_metrics
from repro.obs.telemetry import error_ratio, plan_signature
from repro.obs.trace import get_tracer
from repro.parallel.plan import ExchangeNode
from repro.physical.plan import (
    BtreeScanNode,
    ChoosePlanNode,
    FileScanNode,
    HashAggregateNode,
    IndexJoinNode,
    PlanNode,
    ProjectNode,
    SortedAggregateNode,
    TopNNode,
)

#: Subtree operators that make a breaker ineligible for checkpointing:
#: their output cannot be modeled as a synthetic base relation whose join
#: with the remaining relations reproduces the original query.
_INELIGIBLE_NODES = (
    HashAggregateNode,
    SortedAggregateNode,
    TopNNode,
    ProjectNode,
    ExchangeNode,
)


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """One materialized pipeline-breaker output.

    ``covered`` is the set of base relations the breaker's subtree has
    fully joined and filtered — the relations the checkpoint *replaces*
    when its rows are pinned as a synthetic base relation.
    """

    signature: str
    node: PlanNode
    schema: RowSchema
    rows: tuple[Row, ...]
    covered: frozenset[str]
    observed: int
    estimate_low: float
    estimate_high: float
    error_ratio: float
    label: str

    @property
    def out_of_interval(self) -> bool:
        return self.error_ratio > 1.0


class ReplanSignal(Exception):
    """Raised out of a checkpoint iterator to abandon the current plan.

    Deliberately *not* an :class:`~repro.errors.ExecutionError`: it is a
    control-flow signal for the adaptive controller, not a failure, and
    must never be swallowed by error handlers that treat execution
    errors as terminal.
    """

    def __init__(self, checkpoint: Checkpoint) -> None:
        super().__init__(
            f"observed {checkpoint.observed} rows at {checkpoint.label} "
            f"vs interval [{checkpoint.estimate_low:g}, "
            f"{checkpoint.estimate_high:g}] "
            f"(error ratio {checkpoint.error_ratio:.2f})"
        )
        self.checkpoint = checkpoint


class AdaptiveGuard:
    """Per-execution-attempt checkpoint collector and trigger.

    One guard serves one ``execute_plan`` attempt.  The executor calls
    :meth:`wants` while building the iterator tree (eligible breakers
    get a checkpoint wrapper, everything else runs untouched) and
    :meth:`on_breaker` when a checkpointed breaker finishes draining.
    ``checkpoints`` accumulates every completed breaker — including
    in-interval ones — so the controller can pin *all* disjoint
    completed units when one of them triggers, wasting none of the work
    already performed.
    """

    def __init__(
        self,
        policy: AdaptivePolicy,
        *,
        query_relations: Iterable[str],
        choices: Mapping[int, PlanNode] | None = None,
        suppressed: Iterable[str] = (),
    ) -> None:
        self.policy = policy
        self.query_relations = frozenset(query_relations)
        self.choices = dict(choices or {})
        self.suppressed = frozenset(suppressed)
        self.checkpoints: dict[str, Checkpoint] = {}
        self.kept = 0

    # ------------------------------------------------------------------
    # Build-time eligibility
    # ------------------------------------------------------------------
    def wants(self, node: PlanNode) -> bool:
        """Should the executor checkpoint this breaker's output?"""
        if plan_signature(node) in self.suppressed:
            return False
        covered = self._covered_relations(node)
        if not covered:
            return False
        # A strict subset only: a breaker covering every relation (e.g.
        # the root ORDER BY sort) leaves nothing to re-optimize.
        return covered < self.query_relations

    def _covered_relations(self, node: PlanNode) -> frozenset[str] | None:
        """Base relations fully handled by ``node``'s resolved subtree,
        or None when the subtree contains an ineligible operator."""
        covered: set[str] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ChoosePlanNode):
                chosen = self.choices.get(id(current))
                if chosen is None:
                    return None
                stack.append(chosen)
                continue
            if isinstance(current, _INELIGIBLE_NODES):
                return None
            if isinstance(current, (FileScanNode, BtreeScanNode)):
                covered.add(current.relation)
            elif isinstance(current, IndexJoinNode):
                covered.add(current.inner_relation)
            stack.extend(current.inputs)
        return frozenset(covered)

    # ------------------------------------------------------------------
    # Run-time observation
    # ------------------------------------------------------------------
    def on_breaker(
        self, node: PlanNode, schema: RowSchema, rows: list[Row]
    ) -> None:
        """Record a drained breaker; raise :class:`ReplanSignal` when the
        observation misses the interval by at least the policy threshold."""
        interval = node.cardinality
        observed = len(rows)
        ratio = error_ratio(interval.low, interval.high, observed)
        checkpoint = Checkpoint(
            signature=plan_signature(node),
            node=node,
            schema=schema,
            rows=tuple(rows),
            covered=self._covered_relations(node) or frozenset(),
            observed=observed,
            estimate_low=interval.low,
            estimate_high=interval.high,
            error_ratio=ratio,
            label=node.label,
        )
        self.checkpoints[checkpoint.signature] = checkpoint
        if ratio <= 1.0:
            return
        if ratio >= self.policy.min_error_ratio:
            raise ReplanSignal(checkpoint)
        # Out of interval but under the trigger threshold: keep the plan.
        self.kept += 1
        get_metrics().counter("adaptive.kept").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "adaptive.kept",
                signature=checkpoint.signature,
                label=checkpoint.label,
                observed=observed,
                estimate_low=interval.low,
                estimate_high=interval.high,
                error_ratio=ratio,
            )
