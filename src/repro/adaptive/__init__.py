"""Mid-query re-optimization at pipeline breakers.

The adaptive subsystem consumes out-of-interval cardinality
observations *during* execution: every pipeline breaker (sort, hash
aggregation, hash-join build, with exchange boundaries excluded)
materializes its output anyway, so when the observed row count falls
outside the compile-time interval the runtime can pin those rows as a
synthetic base relation with exact statistics, re-enter the optimizer
for the remaining subplan, re-run the choose-plan start-up decision
over the narrowed intervals, and splice the winner into the running
query — without repeating finished work.  See DESIGN.md, "Adaptive
re-optimization".
"""

from repro.adaptive.controller import (
    AdaptiveExecution,
    ReplanEvent,
    execute_adaptive_plan,
    execute_adaptive_statement,
)
from repro.adaptive.guard import AdaptiveGuard, Checkpoint, ReplanSignal
from repro.adaptive.policy import AdaptivePolicy
from repro.adaptive.replan import ReplanOutcome, replan_remaining

__all__ = [
    "AdaptiveExecution",
    "AdaptiveGuard",
    "AdaptivePolicy",
    "Checkpoint",
    "ReplanEvent",
    "ReplanOutcome",
    "ReplanSignal",
    "execute_adaptive_plan",
    "execute_adaptive_statement",
    "replan_remaining",
]
