"""Optimizer re-entry for the remaining subplan after a mid-query trigger.

The splice contract: when a checkpoint triggers, every completed,
relation-disjoint checkpoint (the trigger first) becomes a *pinned unit*
— its buffered rows are registered as a synthetic base relation in a
derived catalog with **exact** statistics (cardinality = observed row
count), and the query graph is rewritten so those units replace the
relations their subtrees had already joined and filtered.  The optimizer
then runs over the rewritten graph exactly as it would at compile time:

* every derived cardinality interval is recomputed from the synthetic
  relation's point statistics, so downstream estimates are clamped
  consistently with the observation — not just at the breaker — and the
  ``∀i gᵢ = dᵢ`` invariant holds for the re-entered search the same way
  it holds for the original one (satellite: interval-clamping fix);
* selectivity parameters referenced only by pinned relations disappear
  (their predicates are already applied inside the pinned rows), while
  parameters of the remaining relations keep their original domains —
  that uncertainty is still real, so choose-plan operators regenerate
  and the start-up decision re-runs with the narrowed intervals.

Join predicates fully inside one pinned unit are dropped (the unit's
subtree applied them exactly once — the memo only joins with the
predicates connecting its operands); predicates crossing a pinned
boundary are remapped onto the synthetic relation's attributes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Mapping

from repro.adaptive.guard import Checkpoint
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute
from repro.cost.model import CostModel
from repro.executor.iterators import MaterializedIterator
from repro.executor.tuples import RowSchema
from repro.logical.aggregates import AggregateExpr, AggregateSpec
from repro.logical.predicates import JoinPredicate
from repro.logical.query import QueryGraph
from repro.optimizer.optimizer import (
    OptimizationMode,
    OptimizationResult,
    optimize_query,
)
from repro.params.parameter import ParameterKind, ParameterSpace


@dataclass(frozen=True)
class ReplanOutcome:
    """One successful optimizer re-entry, ready to splice."""

    #: Optimizer output over the rewritten graph (plan, ctx with the
    #: derived catalog, interval environment, search stats).
    result: OptimizationResult
    #: Rewritten query over synthetic + remaining base relations.
    graph: QueryGraph
    #: Old attribute → synthetic-relation attribute, for every attribute
    #: produced by a pinned unit (plus remapped aggregate outputs).
    attr_map: dict[Attribute, Attribute] = field(repr=False)
    #: Materialized-substitution map for the executor: synthetic leaf
    #: identity → the pinned rows.
    pinned: dict[tuple[str, frozenset], MaterializedIterator] = field(repr=False)
    #: The checkpoints that became synthetic relations (trigger first).
    units: tuple[Checkpoint, ...]
    #: ``required_order`` remapped through ``attr_map``.
    required_order: Attribute | tuple[Attribute, ...] | None

    @property
    def pinned_rows(self) -> int:
        return sum(len(unit.rows) for unit in self.units)

    @property
    def pinned_relations(self) -> tuple[str, ...]:
        """Original base relations replaced by synthetic temporaries."""
        covered: set[str] = set()
        for unit in self.units:
            covered |= unit.covered
        return tuple(sorted(covered))


def replan_remaining(
    *,
    graph: QueryGraph,
    catalog: Catalog,
    model: CostModel,
    mode: OptimizationMode,
    trigger: Checkpoint,
    completed: Mapping[str, Checkpoint],
    round_no: int,
    parameter_values: Mapping[str, float],
    required_order: Attribute | tuple[Attribute, ...] | None = None,
) -> ReplanOutcome:
    """Rewrite ``graph`` around the pinned units and re-optimize.

    ``completed`` is the guard's checkpoint map for the aborted attempt;
    every completed checkpoint disjoint from the trigger (and from units
    already chosen, larger covered sets first) is pinned alongside it,
    so work the old plan finished is never re-executed.  ``mode`` is the
    original compilation mode: RUN_TIME re-entry binds the remaining
    parameters to ``parameter_values``; DYNAMIC re-entry keeps them as
    intervals so choose-plan start-up decisions regenerate.
    """
    units: list[Checkpoint] = [trigger]
    pinned_relations: set[str] = set(trigger.covered)
    for checkpoint in sorted(
        completed.values(), key=lambda c: (-len(c.covered), c.signature)
    ):
        if checkpoint.signature == trigger.signature or not checkpoint.covered:
            continue
        if checkpoint.covered & pinned_relations:
            continue
        units.append(checkpoint)
        pinned_relations |= checkpoint.covered

    # Synthetic base relations with exact statistics, in a derived
    # catalog (a deep copy: the live catalog must not see phantom DDL —
    # its version, listeners, and cache invalidation stay untouched).
    derived = copy.deepcopy(catalog)
    attr_map: dict[Attribute, Attribute] = {}
    pinned: dict[tuple[str, frozenset], MaterializedIterator] = {}
    temp_names: list[str] = []
    for index, unit in enumerate(units):
        name = f"__adaptive{round_no}_{index}"
        temp_names.append(name)
        columns = [
            (f"{a.relation}__{a.name}", a.domain_size)
            for a in unit.schema.attributes
        ]
        derived.add_relation(name, columns, cardinality=len(unit.rows))
        relation = derived.relation(name)
        for old, new in zip(unit.schema.attributes, relation.schema.attributes):
            attr_map[old] = new
        pinned[(name, frozenset())] = MaterializedIterator(
            RowSchema.from_schema(relation.schema), unit.rows
        )

    def remap(attribute: Attribute) -> Attribute:
        return attr_map.get(attribute, attribute)

    remaining_base = tuple(
        r for r in graph.relations if r not in pinned_relations
    )
    selections = {
        r: graph.selections[r]
        for r in remaining_base
        if graph.selections.get(r)
    }
    # A join fully inside one pinned unit was applied exactly once by
    # that unit's subtree; everything else survives, remapped onto the
    # synthetic attributes where an endpoint was pinned.
    joins = tuple(
        JoinPredicate(left=remap(j.left), right=remap(j.right))
        for j in graph.joins
        if not any(j.relations <= unit.covered for unit in units)
    )

    # Selectivity parameters referenced only by pinned predicates are
    # gone (the rows are already filtered); every other parameter —
    # remaining selectivities, memory, DOP — keeps its original domain.
    needed = {
        predicate.operand.selectivity_parameter
        for r in remaining_base
        for predicate in graph.selections_on(r)
        if predicate.is_unbound
    }
    space = ParameterSpace()
    for parameter in graph.parameters:
        if (
            parameter.kind is ParameterKind.SELECTIVITY
            and parameter.name not in needed
        ):
            continue
        space.add(parameter)

    projection = (
        tuple(remap(a) for a in graph.projection)
        if graph.projection is not None
        else None
    )
    aggregate = None
    if graph.aggregate is not None:
        spec = graph.aggregate
        new_exprs = tuple(
            AggregateExpr(
                function=expr.function,
                attribute=(
                    None if expr.attribute is None else remap(expr.attribute)
                ),
            )
            for expr in spec.aggregates
        )
        aggregate = AggregateSpec(
            group_by=tuple(remap(a) for a in spec.group_by),
            aggregates=new_exprs,
        )
        # Remapped inputs rename the synthetic output columns; record
        # that so the controller's restore map composes through them.
        for old_expr, new_expr in zip(spec.aggregates, new_exprs):
            attr_map[old_expr.output_attribute()] = new_expr.output_attribute()

    remaining = QueryGraph(
        relations=tuple(temp_names) + remaining_base,
        selections=selections,
        joins=joins,
        parameters=space,
        projection=projection,
        aggregate=aggregate,
    )
    if required_order is None:
        mapped_order = None
    elif isinstance(required_order, tuple):
        mapped_order = tuple(remap(key) for key in required_order)
    else:
        mapped_order = remap(required_order)
    binding = None
    if mode is OptimizationMode.RUN_TIME:
        binding = {p.name: float(parameter_values[p.name]) for p in space}
    result = optimize_query(
        remaining,
        derived,
        model,
        mode=mode,
        binding=binding,
        required_order=mapped_order,
    )
    return ReplanOutcome(
        result=result,
        graph=remaining,
        attr_map=attr_map,
        pinned=pinned,
        units=tuple(units),
        required_order=mapped_order,
    )
