"""Trigger policy for mid-query re-optimization.

The paper's dynamic plans spend their uncertainty budget at start-up
time: choose-plan binds the run-time parameters once, before the first
tuple flows.  The adaptive subsystem extends that decision into run time
(Pavlopoulou & Carey, PAPERS.md), and this policy bounds how eagerly it
does so: a re-optimization is only considered when a pipeline breaker's
observed cardinality misses its compile-time interval by at least
``min_error_ratio``, and at most ``max_reopts`` re-optimizations are
spent per query.  Both bounds keep adaptive overhead predictable — a
query can never pay more than ``max_reopts`` optimizer invocations, and
near-miss observations (ratio below the threshold) are recorded as
``adaptive.kept`` instead of triggering.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class AdaptivePolicy:
    """Bounds on mid-query re-optimization.

    ``max_reopts`` is the per-query re-optimization budget (K in the
    ROADMAP item); ``min_error_ratio`` is the symmetric estimation-error
    ratio (see :func:`repro.obs.telemetry.error_ratio`, always ≥ 1) an
    out-of-interval observation must reach before the plan is abandoned
    mid-flight.  A ratio of exactly 1.0 means the observation landed
    inside the compile-time interval and never triggers.
    """

    max_reopts: int = 2
    min_error_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.max_reopts < 0:
            raise ValueError("max_reopts must be non-negative")
        if self.min_error_ratio < 1.0:
            raise ValueError(
                "min_error_ratio is a symmetric >=1 ratio; values below "
                "1.0 are unsatisfiable"
            )
