"""The adaptive execution loop: execute → trigger → replan → splice.

:func:`execute_adaptive_plan` drives one query to completion under an
:class:`~repro.adaptive.policy.AdaptivePolicy`.  Each attempt runs the
current plan through the ordinary executor with an
:class:`~repro.adaptive.guard.AdaptiveGuard` installed; when a
checkpoint raises :class:`~repro.adaptive.guard.ReplanSignal`, the loop
pins the materialized units, re-enters the optimizer for the remaining
subplan (:mod:`repro.adaptive.replan`), re-runs the choose-plan start-up
decision against the narrowed intervals, and executes the spliced plan —
the pinned rows feed it through the executor's materialized-substitution
path, so no finished work is repeated.  The loop is bounded by
``policy.max_reopts``; a failed re-entry suppresses the offending
breaker's signature and re-executes the current plan unchanged.

Determinism: every decision here is a pure function of the plan, the
observed row counts, and the parameter values — no clocks or randomness
— so a given (catalog, data, query, bindings, policy) tuple always
triggers and replans identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.adaptive.guard import AdaptiveGuard, ReplanSignal
from repro.adaptive.policy import AdaptivePolicy
from repro.adaptive.replan import ReplanOutcome, replan_remaining
from repro.catalog.schema import Attribute
from repro.cost.context import CostContext
from repro.errors import BindingError, OptimizationError, PlanError
from repro.executor.database import Database
from repro.executor.executor import (
    ExecutionMetrics,
    ExecutionResult,
    _snapshot,
    execute_plan,
)
from repro.executor.iterators import MaterializedIterator
from repro.executor.tuples import Row, RowSchema
from repro.logical.query import QueryGraph
from repro.obs.log import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.optimizer.optimizer import OptimizationMode
from repro.physical.plan import (
    BtreeScanNode,
    ChoosePlanNode,
    FileScanNode,
    HashAggregateNode,
    HashJoinNode,
    IndexJoinNode,
    MergeJoinNode,
    NestedLoopsJoinNode,
    PlanNode,
    ProjectNode,
    SortedAggregateNode,
)
from repro.runtime.chooser import ActivationDecision, resolve_plan

_LOG = get_logger(__name__)


def plan_output_schema(
    node: PlanNode, catalog, choices: Mapping[int, PlanNode]
) -> RowSchema:
    """The row schema ``node`` produces, derived without executing.

    Mirrors the executor's per-iterator schema rules.  Needed because a
    spliced plan may join in a different order than the original, so the
    adaptive controller permutes its final columns back into the layout
    the aborted plan (under the same start-up ``choices``) would have
    produced — callers must not see a layout that depends on whether a
    replan happened.
    """
    if isinstance(node, ChoosePlanNode):
        return plan_output_schema(choices[id(node)], catalog, choices)
    if isinstance(node, (FileScanNode, BtreeScanNode)):
        return RowSchema.from_schema(catalog.relation(node.relation).schema)
    if isinstance(node, (HashJoinNode, MergeJoinNode, NestedLoopsJoinNode)):
        left = plan_output_schema(node.inputs[0], catalog, choices)
        right = plan_output_schema(node.inputs[1], catalog, choices)
        return left.concat(right)
    if isinstance(node, IndexJoinNode):
        outer = plan_output_schema(node.inputs[0], catalog, choices)
        inner = RowSchema.from_schema(
            catalog.relation(node.inner_relation).schema
        )
        return outer.concat(inner)
    if isinstance(node, (HashAggregateNode, SortedAggregateNode)):
        return RowSchema(tuple(node.spec.output_attributes()))
    if isinstance(node, ProjectNode):
        return RowSchema(tuple(node.attributes))
    # Filter, Sort, TopN, Exchange: schema passes through unchanged.
    return plan_output_schema(node.inputs[0], catalog, choices)


@dataclass(frozen=True)
class ReplanEvent:
    """One successful mid-query re-optimization."""

    signature: str
    label: str
    observed: int
    estimate_low: float
    estimate_high: float
    error_ratio: float
    pinned_relations: tuple[str, ...]
    pinned_rows: int
    reopt_seconds: float
    outcome: ReplanOutcome = field(repr=False)
    decision: ActivationDecision = field(repr=False)
    parameter_values: dict[str, float] = field(repr=False)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary (CLI ``analyze`` / bench artifacts)."""
        cost = self.outcome.result.plan.cost
        return {
            "signature": self.signature,
            "label": self.label,
            "observed": self.observed,
            "estimate_low": self.estimate_low,
            "estimate_high": self.estimate_high,
            "error_ratio": self.error_ratio,
            "pinned_relations": list(self.pinned_relations),
            "pinned_rows": self.pinned_rows,
            "reopt_seconds": self.reopt_seconds,
            "new_cost_low": cost.low,
            "new_cost_high": cost.high,
            "resolved_cost": self.decision.execution_cost,
        }


@dataclass(frozen=True)
class AdaptiveExecution:
    """Outcome of one adaptive invocation.

    ``result`` is the final :class:`ExecutionResult` with *combined*
    metrics — simulated I/O and wall time cover every attempt plus the
    re-optimizations, so adaptive overhead (including abandoned work) is
    never hidden.  The schema is restored to the original query's
    attributes, so callers see the same layout as non-adaptive
    execution regardless of how many splices happened.
    """

    result: ExecutionResult
    replans: tuple[ReplanEvent, ...]
    kept: int
    triggered: int
    attempts: int

    @property
    def rows(self) -> list[Row]:
        return self.result.rows

    @property
    def schema(self) -> RowSchema:
        return self.result.schema

    def as_dict(self) -> dict[str, Any]:
        return {
            "attempts": self.attempts,
            "triggered": self.triggered,
            "replanned": len(self.replans),
            "kept": self.kept,
            "replans": [event.as_dict() for event in self.replans],
            "metrics": self.result.metrics.as_dict(),
        }


def execute_adaptive_plan(
    plan: PlanNode,
    graph: QueryGraph,
    db: Database,
    ctx: CostContext,
    *,
    policy: AdaptivePolicy | None = None,
    bindings: Mapping[str, object] | None = None,
    parameter_values: Mapping[str, float] | None = None,
    choices: Mapping[int, PlanNode] | None = None,
    memory_pages: int | None = None,
    dop: int | None = None,
    execution_mode: str = "fused",
    batch_size: int | None = None,
    analyze: bool = False,
    required_order: Attribute | tuple[Attribute, ...] | None = None,
    mode: OptimizationMode = OptimizationMode.DYNAMIC,
) -> AdaptiveExecution:
    """Execute ``plan`` with mid-query re-optimization enabled.

    ``plan``/``ctx`` are the compiled plan and its compile-time cost
    context (``module.plan`` / ``module.ctx`` of a prepared query);
    ``graph`` is the logical query the plan implements — the replanner
    rewrites it around pinned units.  ``choices`` is the already-made
    start-up decision when the caller activated the module itself;
    omitted, the controller resolves it from ``parameter_values``.
    ``mode`` is the original optimization mode and governs re-entry:
    DYNAMIC re-enters with intervals (choose-plans regenerate), RUN_TIME
    re-enters fully bound.

    With ``policy.max_reopts == 0`` no guard is ever installed and the
    execution path is byte-for-byte the non-adaptive one.
    """
    policy = policy if policy is not None else AdaptivePolicy()
    metrics = get_metrics()
    tracer = get_tracer()
    supplied = dict(parameter_values or {})
    current_values = {
        p.name: float(supplied.get(p.name, p.expected))
        for p in ctx.env.space
    }
    current_plan = plan
    current_graph = graph
    current_ctx = ctx
    current_order = required_order
    if choices is None:
        current_choices = resolve_plan(
            current_plan,
            current_ctx.with_env(current_ctx.env.space.bind(current_values)),
        ).choices
    else:
        current_choices = dict(choices)

    replans: list[ReplanEvent] = []
    suppressed: set[str] = set()
    pinned: dict[tuple[str, frozenset], MaterializedIterator] = {}
    # Current-plan attribute → original-query attribute, composed across
    # rounds; applied to the final schema so callers never see synthetic
    # relation names.
    restore: dict[Attribute, Attribute] = {}
    kept = 0
    triggered = 0
    attempts = 0
    target_schema = plan_output_schema(plan, db.catalog, current_choices)
    before = _snapshot(db)
    started = time.perf_counter()
    while True:
        attempts += 1
        budget = policy.max_reopts - len(replans)
        guard = (
            AdaptiveGuard(
                policy,
                query_relations=current_graph.relation_set,
                choices=current_choices,
                suppressed=suppressed,
            )
            if budget > 0
            else None
        )
        try:
            result = execute_plan(
                current_plan,
                db,
                bindings=bindings,
                choices=current_choices,
                memory_pages=memory_pages,
                materialized=pinned,
                analyze=analyze,
                dop=dop,
                execution_mode=execution_mode,
                batch_size=batch_size,
                guard=guard,
            )
        except ReplanSignal as signal:
            kept += guard.kept
            triggered += 1
            checkpoint = signal.checkpoint
            metrics.counter("adaptive.triggered").inc()
            if tracer.enabled:
                tracer.event(
                    "adaptive.triggered",
                    signature=checkpoint.signature,
                    label=checkpoint.label,
                    observed=checkpoint.observed,
                    estimate_low=checkpoint.estimate_low,
                    estimate_high=checkpoint.estimate_high,
                    error_ratio=checkpoint.error_ratio,
                )
            reopt_started = time.perf_counter()
            try:
                outcome = replan_remaining(
                    graph=current_graph,
                    catalog=current_ctx.catalog,
                    model=current_ctx.model,
                    mode=mode,
                    trigger=checkpoint,
                    completed=guard.checkpoints,
                    round_no=len(replans),
                    parameter_values=current_values,
                    required_order=current_order,
                )
                new_ctx = outcome.result.ctx
                new_values = {
                    p.name: float(current_values.get(p.name, p.expected))
                    for p in new_ctx.env.space
                }
                # The start-up decision, re-run over the narrowed
                # intervals — the paper's choose-plan machinery applied
                # mid-query.
                decision = resolve_plan(
                    outcome.result.plan,
                    new_ctx.with_env(new_ctx.env.space.bind(new_values)),
                )
            except (OptimizationError, PlanError, BindingError) as error:
                # Re-entry failed (unsupported shape, infeasible graph):
                # suppress this breaker so it cannot re-trigger and run
                # the current plan to completion unchanged.
                suppressed.add(checkpoint.signature)
                kept += 1
                metrics.counter("adaptive.kept").inc()
                _LOG.warning(
                    "adaptive replan at %s failed; keeping plan: %s",
                    checkpoint.label,
                    error,
                )
                continue
            reopt_seconds = time.perf_counter() - reopt_started
            metrics.counter("adaptive.replanned").inc()
            metrics.histogram("adaptive.reopt_seconds").observe(reopt_seconds)
            if tracer.enabled:
                tracer.event(
                    "adaptive.replanned",
                    signature=checkpoint.signature,
                    label=checkpoint.label,
                    pinned_relations=list(outcome.pinned_relations),
                    pinned_rows=outcome.pinned_rows,
                    reopt_seconds=reopt_seconds,
                    new_cost_low=outcome.result.plan.cost.low,
                    new_cost_high=outcome.result.plan.cost.high,
                    resolved_cost=decision.execution_cost,
                )
            replans.append(
                ReplanEvent(
                    signature=checkpoint.signature,
                    label=checkpoint.label,
                    observed=checkpoint.observed,
                    estimate_low=checkpoint.estimate_low,
                    estimate_high=checkpoint.estimate_high,
                    error_ratio=checkpoint.error_ratio,
                    pinned_relations=outcome.pinned_relations,
                    pinned_rows=outcome.pinned_rows,
                    reopt_seconds=reopt_seconds,
                    outcome=outcome,
                    decision=decision,
                    parameter_values=dict(new_values),
                )
            )
            # Compose the restore map through this round's renames.
            new_restore: dict[Attribute, Attribute] = {}
            for old, new in outcome.attr_map.items():
                new_restore[new] = restore.get(old, old)
            for attr, original in restore.items():
                if attr not in outcome.attr_map:
                    new_restore[attr] = original
            restore = new_restore
            pinned = dict(pinned)
            pinned.update(outcome.pinned)
            current_plan = outcome.result.plan
            current_graph = outcome.graph
            current_ctx = new_ctx
            current_choices = decision.choices
            current_values = new_values
            current_order = outcome.required_order
            # Suppressed signatures belong to abandoned plans; the new
            # plan's nodes hash differently, so carrying them is
            # harmless — and still guards against a byte-identical
            # resurrected subtree re-triggering.
            continue
        if guard is not None:
            kept += guard.kept
        break

    elapsed = time.perf_counter() - started
    after = _snapshot(db)
    combined = ExecutionMetrics(
        rows=len(result.rows),
        io_seconds=after[0] - before[0],
        sequential_reads=after[1] - before[1],
        random_reads=after[2] - before[2],
        writes=after[3] - before[3],
        buffer_hits=after[4] - before[4],
        buffer_misses=after[5] - before[5],
        wall_seconds=elapsed,
    )
    max_error = result.max_estimate_error
    for event in replans:
        max_error = max(max_error, event.error_ratio)
    schema = result.schema
    rows = result.rows
    if restore:
        schema = RowSchema(
            tuple(restore.get(a, a) for a in schema.attributes)
        )
    if replans and schema != target_schema:
        # The spliced plan joined in a different order; permute columns
        # back into the layout the original plan would have produced.
        positions = [schema.attributes.index(a) for a in target_schema.attributes]
        rows = [tuple(row[p] for p in positions) for row in rows]
        schema = target_schema
    final = ExecutionResult(
        rows=rows,
        schema=schema,
        metrics=combined,
        operator_stats=result.operator_stats,
        max_estimate_error=max_error,
    )
    return AdaptiveExecution(
        result=final,
        replans=tuple(replans),
        kept=kept,
        triggered=triggered,
        attempts=attempts,
    )


def execute_adaptive_statement(
    statement_result,
    db: Database,
    *,
    policy: AdaptivePolicy | None = None,
    bindings: Mapping[str, object] | None = None,
    parameter_values: Mapping[str, float] | None = None,
    memory_pages: int | None = None,
    dop: int | None = None,
    execution_mode: str = "fused",
    batch_size: int | None = None,
    mode: OptimizationMode = OptimizationMode.DYNAMIC,
) -> AdaptiveExecution:
    """Adaptive execution for a full statement (SPJU / outer / semi-join).

    ``statement_result`` is an
    :class:`~repro.optimizer.statement.StatementResult`.  Simple
    statements delegate to :func:`execute_adaptive_plan` unchanged.
    Compound statements run each branch *core* adaptively (all pipeline
    breakers live inside the cores — the composed superstructure above
    them is fixed and breaker-free), execute the single-relation
    extension inputs directly, then execute the composed plan with every
    component root substituted by its computed rows through the
    executor's ``pinned_nodes`` path — so replans inside one branch never
    disturb another branch or the composition.
    """
    statement = statement_result.statement
    policy = policy if policy is not None else AdaptivePolicy()
    if statement.is_simple:
        branch_plan = statement_result.branch_plans[0]
        return execute_adaptive_plan(
            branch_plan.core.plan,
            branch_plan.branch.graph,
            db,
            branch_plan.core.ctx,
            policy=policy,
            bindings=bindings,
            parameter_values=parameter_values,
            memory_pages=memory_pages,
            dop=dop,
            execution_mode=execution_mode,
            batch_size=batch_size,
            required_order=statement.order_by_keys or None,
            mode=mode,
        )

    supplied = dict(parameter_values or {})
    values = {
        p.name: float(supplied.get(p.name, p.expected))
        for p in statement_result.ctx.env.space
    }
    pinned_nodes: dict[int, tuple[RowSchema, tuple[Row, ...]]] = {}
    replans: list[ReplanEvent] = []
    kept = 0
    triggered = 0
    attempts = 0
    before = _snapshot(db)
    started = time.perf_counter()
    for branch_plan in statement_result.branch_plans:
        run = execute_adaptive_plan(
            branch_plan.core.plan,
            branch_plan.branch.graph,
            db,
            branch_plan.core.ctx,
            policy=policy,
            bindings=bindings,
            parameter_values=values,
            memory_pages=memory_pages,
            dop=dop,
            execution_mode=execution_mode,
            batch_size=batch_size,
            mode=mode,
        )
        replans.extend(run.replans)
        kept += run.kept
        triggered += run.triggered
        attempts += run.attempts
        pinned_nodes[id(branch_plan.core.plan)] = (
            run.result.schema,
            tuple(run.result.rows),
        )
        extensions = list(branch_plan.semi_inners)
        if branch_plan.outer_right is not None:
            extensions.append(branch_plan.outer_right)
        for extension in extensions:
            # Single-relation access plans: no pipeline breakers, so the
            # adaptive loop would never trigger — plain execution with
            # the access-path choice resolved at the bound values.
            result = execute_plan(
                extension.plan,
                db,
                bindings=bindings,
                ctx=extension.ctx,
                parameter_values=values,
                memory_pages=memory_pages,
                execution_mode=execution_mode,
                batch_size=batch_size,
            )
            pinned_nodes[id(extension.plan)] = (
                result.schema,
                tuple(result.rows),
            )
    # The composed superstructure: every choose-plan sits at or below a
    # pinned root, so an empty decision map suffices.
    final = execute_plan(
        statement_result.plan,
        db,
        bindings=bindings,
        choices={},
        memory_pages=memory_pages,
        execution_mode=execution_mode,
        batch_size=batch_size,
        pinned_nodes=pinned_nodes,
    )
    attempts += 1
    elapsed = time.perf_counter() - started
    after = _snapshot(db)
    combined = ExecutionMetrics(
        rows=len(final.rows),
        io_seconds=after[0] - before[0],
        sequential_reads=after[1] - before[1],
        random_reads=after[2] - before[2],
        writes=after[3] - before[3],
        buffer_hits=after[4] - before[4],
        buffer_misses=after[5] - before[5],
        wall_seconds=elapsed,
    )
    max_error = final.max_estimate_error
    for event in replans:
        max_error = max(max_error, event.error_ratio)
    return AdaptiveExecution(
        result=ExecutionResult(
            rows=final.rows,
            schema=final.schema,
            metrics=combined,
            operator_stats=final.operator_stats,
            max_estimate_error=max_error,
        ),
        replans=tuple(replans),
        kept=kept,
        triggered=triggered,
        attempts=attempts,
    )
