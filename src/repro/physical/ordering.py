"""Sort-order physical property: attribute-tuple (prefix) orderings.

An *ordering* is a tuple of attributes ``(a1, a2, ...)`` meaning the
stream is sorted lexicographically on ``a1``, then ``a2`` within equal
``a1`` runs, and so on (always ascending, NULLs last — the engine's only
collation).  The empty tuple means "no known order".

Orderings form a prefix lattice: an available ordering *satisfies* a
required one exactly when the required tuple is a prefix of the available
tuple — sorting on ``(a, b)`` delivers every query interested in ``(a,)``
or ``(a, b)`` but not ``(b,)`` or ``(a, c)``.  When satisfaction fails but
a non-empty shared prefix exists, a *partial sort* can finish the job:
the input already arrives in runs of equal prefix values, so each run can
be sorted independently without a full external sort (Guravannavar &
Sudarshan's order-enforcement reduction).

These helpers are deliberately free of plan-node imports so both the
optimizer and the executor can use them.
"""

from __future__ import annotations

from repro.catalog.schema import Attribute

Ordering = tuple[Attribute, ...]


def as_ordering(keys) -> Ordering:
    """Normalize ``None`` / a single attribute / an iterable to a tuple."""
    if keys is None:
        return ()
    if isinstance(keys, Attribute):
        return (keys,)
    return tuple(keys)


def ordering_satisfies(available: Ordering, required: Ordering) -> bool:
    """True when ``available`` delivers ``required``: required is a prefix."""
    if len(required) > len(available):
        return False
    return available[: len(required)] == required


def shared_prefix_len(available: Ordering, required: Ordering) -> int:
    """Length of the common prefix of the two orderings.

    This is the number of leading sort keys a partial sort can exploit:
    the input arrives grouped into runs of equal values on that prefix,
    and only the runs — never the whole stream — need sorting.
    """
    n = 0
    for have, want in zip(available, required):
        if have != want:
            break
        n += 1
    return n


def common_prefix(orderings: list[Ordering]) -> Ordering:
    """Longest ordering that is a prefix of every input ordering.

    The meet of the prefix lattice — what a choose-plan node can promise
    when its alternatives deliver different orderings.
    """
    if not orderings:
        return ()
    shortest = min(orderings, key=len)
    n = len(shortest)
    for ordering in orderings:
        n = min(n, shared_prefix_len(ordering, shortest))
    return shortest[:n]
