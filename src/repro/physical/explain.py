"""Plan rendering: indented text trees and Graphviz DOT.

Shared subplans are printed once and referenced afterwards, making the
DAG structure of dynamic plans visible — the sharing is what keeps access
modules small relative to the exponential number of alternative plans.
"""

from __future__ import annotations

from repro.physical.plan import ChoosePlanNode, PlanNode, iter_plan_nodes


def explain(root: PlanNode, show_cost: bool = True) -> str:
    """Render a plan DAG as an indented text tree.

    The first occurrence of a shared subplan gets a ``#n`` tag; later
    occurrences print as ``-> #n`` back-references instead of repeating the
    subtree.
    """
    tags: dict[int, int] = {}
    multiply_referenced = _shared_nodes(root)
    lines: list[str] = []

    def annotate(node: PlanNode) -> str:
        parts = [node.label]
        if show_cost:
            parts.append(f"cost={node.cost}")
            parts.append(f"rows={node.cardinality}")
        if node.order is not None:
            parts.append(f"order={node.order.qualified_name}")
        return "  ".join(parts)

    def walk(node: PlanNode, depth: int) -> None:
        indent = "  " * depth
        if id(node) in tags:
            lines.append(f"{indent}-> #{tags[id(node)]}")
            return
        tag = ""
        if id(node) in multiply_referenced:
            tags[id(node)] = len(tags) + 1
            tag = f"#{tags[id(node)]} "
        lines.append(f"{indent}{tag}{annotate(node)}")
        for child in node.inputs:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def explain_analyze(
    root: PlanNode,
    operator_stats,
    choices: dict[int, PlanNode] | None = None,
    show_cost: bool = False,
) -> str:
    """Render a plan tree with observed per-operator runtime counters.

    ``operator_stats`` maps plan-node identity to
    :class:`~repro.executor.iterators.OperatorStats` as collected by
    ``execute_plan(..., analyze=True)``.  Counters are inclusive of each
    operator's inputs (PostgreSQL-style ``actual`` numbers).  Operators
    without counters — the unchosen alternatives of a dynamic plan —
    are marked ``[not executed]``; with ``choices`` given, each
    choose-plan line names the alternative it activated.
    """
    tags: dict[int, int] = {}
    multiply_referenced = _shared_nodes(root)
    lines: list[str] = []

    def annotate(node: PlanNode) -> str:
        parts = [node.label]
        if show_cost:
            parts.append(f"cost={node.cost}")
        if isinstance(node, ChoosePlanNode):
            if choices is not None and id(node) in choices:
                chosen = choices[id(node)]
                parts.append(
                    f"(chose alternative {node.alternatives.index(chosen) + 1}: "
                    f"{chosen.label})"
                )
            return "  ".join(parts)
        stats = operator_stats.get(id(node))
        if stats is None:
            parts.append("[not executed]")
        else:
            parts.append(
                f"(actual rows={stats.rows} "
                f"time={stats.seconds * 1000:.2f}ms "
                f"pages={stats.pages_read})"
            )
        return "  ".join(parts)

    def walk(node: PlanNode, depth: int) -> None:
        indent = "  " * depth
        if id(node) in tags:
            lines.append(f"{indent}-> #{tags[id(node)]}")
            return
        tag = ""
        if id(node) in multiply_referenced:
            tags[id(node)] = len(tags) + 1
            tag = f"#{tags[id(node)]} "
        lines.append(f"{indent}{tag}{annotate(node)}")
        for child in node.inputs:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def to_dot(root: PlanNode, title: str = "plan") -> str:
    """Render a plan DAG in Graphviz DOT syntax."""
    ids: dict[int, str] = {}
    lines = [f'digraph "{title}" {{', "  node [shape=box, fontname=monospace];"]
    for node in iter_plan_nodes(root):
        name = f"n{len(ids)}"
        ids[id(node)] = name
        shape = ', style=rounded, peripheries=2' if isinstance(node, ChoosePlanNode) else ""
        label = node.label.replace('"', r"\"")
        lines.append(f'  {name} [label="{label}\\ncost={node.cost}"{shape}];')
    for node in iter_plan_nodes(root):
        for child in node.inputs:
            lines.append(f"  {ids[id(node)]} -> {ids[id(child)]};")
    lines.append("}")
    return "\n".join(lines)


def _shared_nodes(root: PlanNode) -> set[int]:
    """Identities of nodes referenced by more than one parent."""
    counts: dict[int, int] = {}
    for node in iter_plan_nodes(root):
        for child in node.inputs:
            counts[id(child)] = counts.get(id(child), 0) + 1
    return {node_id for node_id, count in counts.items() if count > 1}
