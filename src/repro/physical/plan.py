"""Physical plan nodes.

Every node knows how to compute, from a :class:`~repro.cost.context.CostContext`
and its inputs' output cardinalities, its own *output cardinality* and
*operator cost* (the work it adds on top of its inputs).  The same
``_compute`` method serves two callers:

* the **optimizer**, which constructs nodes under the compile-time
  environment and stores the resulting annotations (``cost`` is the total
  subtree cost including inputs), and
* the **choose-plan decision procedure** (:mod:`repro.runtime.chooser`),
  which re-evaluates the very same cost functions bottom-up over the DAG
  under the start-up-time environment — the paper's Section 4 decision
  procedure ("re-evaluate the cost functions associated with the
  participating alternative plans").

Nodes are immutable after construction and compared by identity; the memo
guarantees shared subplans are shared objects, so DAG-size accounting is a
simple identity traversal.
"""

from __future__ import annotations

from typing import Iterator

from repro.catalog.schema import Attribute
from repro.cost import formulas
from repro.cost.context import CostContext
from repro.errors import PlanError
from repro.logical.estimation import estimate_selectivity
from repro.logical.predicates import JoinPredicate, SelectionPredicate
from repro.physical.ordering import (
    Ordering,
    as_ordering,
    common_prefix,
    ordering_satisfies,
    shared_prefix_len,
)
from repro.util.interval import Interval


class PlanNode:
    """Base class of physical plan operators.

    Attributes set at construction (compile-time annotations):

    ``inputs``
        Child plan nodes (empty for scans).
    ``cardinality``
        Interval estimate of the number of output records.
    ``cost``
        Interval estimate of the *total* cost of this subtree, inputs
        included, in seconds.  Includes the start-up decision overhead of
        any embedded choose-plan operators (Section 5's dynamic-plan cost).
    ``execution_cost``
        Like ``cost`` but *excluding* choose-plan decision overhead: the
        cost of actually running whichever alternatives get chosen.  This
        is the quantity the start-up decision procedure minimizes and that
        run-time optimization reproduces (the paper's gᵢ = dᵢ), so it is
        also the quantity winner-set dominance must compare — pruning on
        overhead-inflated totals can discard the run-time optimum.
    ``order``
        The attribute the output is sorted on, or None.  This is the
        *leading* sort key — the quantity the memo's group keys and the
        chooser's bottom-up tables track.
    ``ordering``
        The full prefix ordering of the output as an attribute tuple
        (:mod:`repro.physical.ordering`): ``ordering[0] == order`` when
        non-empty, ``()`` exactly when ``order`` is None.  The richer
        property exists so enforcers can be downgraded to partial sorts;
        the memo continues to key groups on the leading attribute alone.
    """

    __slots__ = (
        "inputs", "cardinality", "cost", "execution_cost", "order", "ordering"
    )

    inputs: tuple["PlanNode", ...]
    cardinality: Interval
    cost: Interval
    execution_cost: Interval
    order: Attribute | None
    ordering: Ordering

    def __init__(self, ctx: CostContext, inputs: tuple["PlanNode", ...]) -> None:
        self.inputs = inputs
        input_cards = [child.cardinality for child in inputs]
        input_orders = [child.order for child in inputs]
        cardinality, self_cost, order = self._compute(ctx, input_cards, input_orders)
        self.cardinality = cardinality
        self.order = order
        self.ordering = self._derive_ordering(
            [child.ordering for child in inputs]
        )
        total = self_cost
        execution = self_cost
        for child in inputs:
            total = total + child.cost
            execution = execution + child.execution_cost
        self.cost = total
        self.execution_cost = execution

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    def _compute(
        self,
        ctx: CostContext,
        input_cards: list[Interval],
        input_orders: list[Attribute | None],
    ) -> tuple[Interval, Interval, Attribute | None]:
        """Return (output cardinality, operator cost, output sort order)."""
        raise NotImplementedError

    def _derive_ordering(self, input_orderings: list[Ordering]) -> Ordering:
        """Refine the single-attribute ``order`` into a prefix ordering.

        The default is the conservative singleton ``(order,)`` — correct
        for every operator because ``order`` is already a sound leading
        key.  Order-preserving operators override this to carry their
        input's full prefix through.
        """
        return (self.order,) if self.order is not None else ()

    @property
    def label(self) -> str:
        """Short human-readable operator description."""
        raise NotImplementedError

    def recompute(
        self,
        ctx: CostContext,
        input_cards: list[Interval],
        input_orders: list[Attribute | None],
    ) -> tuple[Interval, Interval, Attribute | None]:
        """Re-evaluate the node's cost function under a new context.

        Used at start-up time with a fully bound environment; does not
        mutate the stored compile-time annotations.
        """
        return self._compute(ctx, input_cards, input_orders)

    def __repr__(self) -> str:
        return f"<{self.label} card={self.cardinality} cost={self.cost}>"


# ----------------------------------------------------------------------
# Data retrieval
# ----------------------------------------------------------------------
class FileScanNode(PlanNode):
    """Sequential scan of a heap file (physical Get-Set)."""

    __slots__ = ("relation",)

    def __init__(self, ctx: CostContext, relation: str) -> None:
        self.relation = relation
        super().__init__(ctx, ())

    def _compute(self, ctx, input_cards, input_orders):
        stats = ctx.catalog.relation(self.relation).stats
        cardinality = Interval.point(float(stats.cardinality))
        cost = formulas.file_scan_cost(ctx.model, stats)
        return cardinality, cost, None

    @property
    def label(self) -> str:
        return f"File-Scan {self.relation}"


class BtreeScanNode(PlanNode):
    """B-tree scan of a relation.

    With ``predicate`` set, this is the paper's *Filter-B-tree-Scan*: the
    predicate is applied through the index, retrieving only the qualifying
    fraction.  Without a predicate it is a full *B-tree-Scan* whose value is
    the sort order it delivers.
    """

    __slots__ = ("relation", "index_name", "key", "predicate")

    def __init__(
        self,
        ctx: CostContext,
        relation: str,
        key: Attribute,
        predicate: SelectionPredicate | None = None,
    ) -> None:
        index = ctx.catalog.index_on(key)
        if index is None:
            raise PlanError(f"no index on {key.qualified_name} for B-tree scan")
        if predicate is not None and predicate.attribute != key:
            raise PlanError(
                f"B-tree scan on {key.qualified_name} cannot apply predicate "
                f"on {predicate.attribute.qualified_name}"
            )
        self.relation = relation
        self.index_name = index.name
        self.key = key
        self.predicate = predicate
        super().__init__(ctx, ())

    def _compute(self, ctx, input_cards, input_orders):
        info = ctx.catalog.relation(self.relation)
        index = ctx.catalog.index_on(self.key)
        if index is None:
            raise PlanError(
                f"index on {self.key.qualified_name} dropped since optimization"
            )
        if self.predicate is None:
            selectivity = Interval.point(1.0)
        else:
            selectivity = estimate_selectivity(self.predicate, ctx.env, ctx.catalog)
        cardinality = Interval.point(float(info.stats.cardinality)) * selectivity
        cost = formulas.btree_scan_cost(
            ctx.model, info.stats, selectivity, clustered=index.clustered
        )
        return cardinality, cost, self.key

    @property
    def label(self) -> str:
        if self.predicate is None:
            return f"B-tree-Scan {self.relation}.{self.key.name}"
        return f"Filter-B-tree-Scan {self.relation}.{self.key.name} [{self.predicate}]"


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
class FilterNode(PlanNode):
    """Apply one selection predicate to the input stream."""

    __slots__ = ("predicate",)

    def __init__(
        self, ctx: CostContext, input_plan: PlanNode, predicate: SelectionPredicate
    ) -> None:
        self.predicate = predicate
        super().__init__(ctx, (input_plan,))

    def _compute(self, ctx, input_cards, input_orders):
        (input_card,) = input_cards
        selectivity = estimate_selectivity(self.predicate, ctx.env, ctx.catalog)
        cardinality = input_card * selectivity
        cost = formulas.filter_cost(ctx.model, input_card, selectivity)
        return cardinality, cost, input_orders[0]

    def _derive_ordering(self, input_orderings):
        # Filtering drops rows but never reorders them.
        return input_orderings[0]

    @property
    def label(self) -> str:
        return f"Filter [{self.predicate}]"


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
def _join_cardinality(
    left_card: Interval, right_card: Interval, predicates: tuple[JoinPredicate, ...]
) -> Interval:
    """Cross product scaled by every connecting predicate's selectivity."""
    cardinality = left_card * right_card
    for predicate in predicates:
        cardinality = cardinality * predicate.selectivity()
    return cardinality


class HashJoinNode(PlanNode):
    """Hybrid hash join; the first input is the build side."""

    __slots__ = ("predicates",)

    def __init__(
        self,
        ctx: CostContext,
        build: PlanNode,
        probe: PlanNode,
        predicates: tuple[JoinPredicate, ...],
    ) -> None:
        if not predicates:
            raise PlanError("hash join requires at least one equijoin predicate")
        self.predicates = predicates
        super().__init__(ctx, (build, probe))

    def _compute(self, ctx, input_cards, input_orders):
        build_card, probe_card = input_cards
        cardinality = _join_cardinality(build_card, probe_card, self.predicates)
        cost = formulas.hash_join_cost(
            ctx.model,
            build_card,
            probe_card,
            cardinality,
            record_bytes=_intermediate_record_bytes(ctx),
            memory_pages=ctx.memory_pages,
        )
        return cardinality, cost, None

    @property
    def label(self) -> str:
        return f"Hash-Join [{', '.join(map(str, self.predicates))}]"


class NestedLoopsJoinNode(PlanNode):
    """Block nested-loops join (extension beyond Table 1).

    Handles arbitrary (possibly empty) equijoin predicate sets, which makes
    it the engine's only way to evaluate cross products — required for
    queries whose join graph is disconnected.
    """

    __slots__ = ("predicates",)

    def __init__(
        self,
        ctx: CostContext,
        outer: PlanNode,
        inner: PlanNode,
        predicates: tuple[JoinPredicate, ...],
    ) -> None:
        self.predicates = predicates
        super().__init__(ctx, (outer, inner))

    def _compute(self, ctx, input_cards, input_orders):
        outer_card, inner_card = input_cards
        cardinality = _join_cardinality(outer_card, inner_card, self.predicates)
        cost = formulas.nested_loops_join_cost(
            ctx.model,
            outer_card,
            inner_card,
            cardinality,
            record_bytes=_intermediate_record_bytes(ctx),
            memory_pages=ctx.memory_pages,
        )
        return cardinality, cost, None

    @property
    def label(self) -> str:
        if not self.predicates:
            return "Nested-Loops-Join [cross product]"
        return f"Nested-Loops-Join [{', '.join(map(str, self.predicates))}]"


class MergeJoinNode(PlanNode):
    """Merge join of two inputs sorted on the join attributes."""

    __slots__ = ("predicates",)

    def __init__(
        self,
        ctx: CostContext,
        left: PlanNode,
        right: PlanNode,
        predicates: tuple[JoinPredicate, ...],
    ) -> None:
        if not predicates:
            raise PlanError("merge join requires at least one equijoin predicate")
        self.predicates = predicates
        super().__init__(ctx, (left, right))

    def _compute(self, ctx, input_cards, input_orders):
        left_card, right_card = input_cards
        cardinality = _join_cardinality(left_card, right_card, self.predicates)
        cost = formulas.merge_join_cost(ctx.model, left_card, right_card, cardinality)
        # Output inherits the left input's order on the merge attribute.
        return cardinality, cost, input_orders[0]

    def _derive_ordering(self, input_orderings):
        # Each left row's matches are emitted contiguously, so the output
        # stays sorted by the left input's full prefix ordering.
        return input_orderings[0]

    @property
    def label(self) -> str:
        return f"Merge-Join [{', '.join(map(str, self.predicates))}]"


class IndexJoinNode(PlanNode):
    """Index nested-loops join: probe a B-tree on the inner relation."""

    __slots__ = ("predicates", "inner_relation", "inner_key", "index_name")

    def __init__(
        self,
        ctx: CostContext,
        outer: PlanNode,
        inner_relation: str,
        inner_key: Attribute,
        predicates: tuple[JoinPredicate, ...],
    ) -> None:
        index = ctx.catalog.index_on(inner_key)
        if index is None:
            raise PlanError(
                f"no index on {inner_key.qualified_name} for index join"
            )
        if not predicates:
            raise PlanError("index join requires at least one equijoin predicate")
        self.predicates = predicates
        self.inner_relation = inner_relation
        self.inner_key = inner_key
        self.index_name = index.name
        super().__init__(ctx, (outer,))

    def _compute(self, ctx, input_cards, input_orders):
        (outer_card,) = input_cards
        inner_info = ctx.catalog.relation(self.inner_relation)
        index = ctx.catalog.index_on(self.inner_key)
        if index is None:
            raise PlanError(
                f"index on {self.inner_key.qualified_name} dropped since "
                "optimization"
            )
        inner_card = Interval.point(float(inner_info.stats.cardinality))
        cardinality = _join_cardinality(outer_card, inner_card, self.predicates)
        cost = formulas.index_join_cost(
            ctx.model,
            outer_card,
            inner_info.stats,
            cardinality,
            clustered=index.clustered,
        )
        return cardinality, cost, input_orders[0]

    def _derive_ordering(self, input_orderings):
        # Probes happen per outer row, in outer order; matches per outer
        # row are contiguous, preserving the outer prefix ordering.
        return input_orderings[0]

    @property
    def label(self) -> str:
        return (
            f"Index-Join {self.inner_relation}.{self.inner_key.name} "
            f"[{', '.join(map(str, self.predicates))}]"
        )


def _group_cardinality(
    ctx: CostContext, input_card: Interval, spec
) -> Interval:
    """Estimated number of groups: bounded by input size and key domains."""
    if not spec.group_by:
        return Interval.point(1.0)
    domains = 1.0
    for attribute in spec.group_by:
        domains = min(domains * attribute.domain_size, 1e15)
    return input_card.min_with(Interval.point(domains))


class HashAggregateNode(PlanNode):
    """Hash aggregation: one table entry per group, unordered output."""

    __slots__ = ("spec",)

    def __init__(self, ctx: CostContext, input_plan: PlanNode, spec) -> None:
        self.spec = spec
        super().__init__(ctx, (input_plan,))

    def _compute(self, ctx, input_cards, input_orders):
        (input_card,) = input_cards
        groups = _group_cardinality(ctx, input_card, self.spec)
        cost = formulas.hash_aggregate_cost(
            ctx.model,
            input_card,
            groups,
            record_bytes=_intermediate_record_bytes(ctx),
            memory_pages=ctx.memory_pages,
        )
        return groups, cost, None

    @property
    def label(self) -> str:
        return f"Hash-Aggregate [{self.spec}]"


class SortedAggregateNode(PlanNode):
    """Streaming aggregation over an input sorted on the first group key.

    Preserves (and requires) the grouping order — the aggregate analogue of
    merge join, and the reason interesting orders reach aggregation.
    """

    __slots__ = ("spec",)

    def __init__(self, ctx: CostContext, input_plan: PlanNode, spec) -> None:
        if not spec.group_by:
            raise PlanError("sorted aggregation requires grouping attributes")
        self.spec = spec
        super().__init__(ctx, (input_plan,))

    def _compute(self, ctx, input_cards, input_orders):
        (input_card,) = input_cards
        groups = _group_cardinality(ctx, input_card, self.spec)
        cost = formulas.sorted_aggregate_cost(ctx.model, input_card, groups)
        return groups, cost, self.spec.group_by[0]

    @property
    def label(self) -> str:
        return f"Sorted-Aggregate [{self.spec}]"


class ProjectNode(PlanNode):
    """Restrict output columns (Table 1's Project, SQL multiset semantics)."""

    __slots__ = ("attributes",)

    def __init__(
        self, ctx: CostContext, input_plan: PlanNode, attributes: tuple[Attribute, ...]
    ) -> None:
        if not attributes:
            raise PlanError("projection must keep at least one attribute")
        self.attributes = attributes
        super().__init__(ctx, (input_plan,))

    def _compute(self, ctx, input_cards, input_orders):
        (input_card,) = input_cards
        cost = formulas.filter_cost(
            ctx.model, input_card, Interval.point(1.0)
        )
        # Order survives only when the ordering attribute is kept.
        order = input_orders[0] if input_orders[0] in self.attributes else None
        return input_card, cost, order

    def _derive_ordering(self, input_orderings):
        # The longest leading prefix whose attributes all survive the
        # projection; a dropped attribute cuts everything after it too.
        kept = []
        for attribute in input_orderings[0]:
            if attribute not in self.attributes:
                break
            kept.append(attribute)
        return tuple(kept)

    @property
    def label(self) -> str:
        names = ", ".join(a.qualified_name for a in self.attributes)
        return f"Project [{names}]"


# ----------------------------------------------------------------------
# Enforcers
# ----------------------------------------------------------------------
class SortNode(PlanNode):
    """Sort enforcer: delivers the sort-order physical property.

    ``keys`` is a lexicographic key tuple; a bare attribute is accepted
    for the (overwhelmingly common) single-key case and ``key`` exposes
    the leading attribute for callers that only track that much.
    """

    __slots__ = ("keys",)

    def __init__(
        self,
        ctx: CostContext,
        input_plan: PlanNode,
        keys: Attribute | tuple[Attribute, ...],
    ) -> None:
        self.keys = as_ordering(keys)
        if not self.keys:
            raise PlanError("sort requires at least one key")
        super().__init__(ctx, (input_plan,))

    @property
    def key(self) -> Attribute:
        return self.keys[0]

    def _compute(self, ctx, input_cards, input_orders):
        (input_card,) = input_cards
        cost = formulas.sort_cost(
            ctx.model,
            input_card,
            record_bytes=_intermediate_record_bytes(ctx),
            memory_pages=ctx.memory_pages,
        )
        return input_card, cost, self.keys[0]

    def _derive_ordering(self, input_orderings):
        # The sort is stable, so rows tied on the full key tuple keep
        # their input order — the input's ordering survives as a suffix.
        return self.keys + tuple(
            a for a in input_orderings[0] if a not in self.keys
        )

    @property
    def label(self) -> str:
        names = ", ".join(k.qualified_name for k in self.keys)
        return f"Sort {names}"


class PartialSortNode(PlanNode):
    """Segmented sort: finish ordering an input already sorted on a prefix.

    The input arrives sorted on ``keys[:prefix_len]``, so it decomposes
    into runs of equal prefix values.  Each run is sorted independently
    (stably, by the full key tuple) and emitted as soon as its last row
    arrives — the result is byte-identical to a full stable sort on
    ``keys``, but the memory footprint and I/O are bounded by the largest
    *run*, not the whole input (Guravannavar & Sudarshan's partial sort).

    Unlike :class:`SortNode` this is *not* a pipeline breaker in the
    blocking sense the telemetry ledger cares about — it still buffers at
    most one run at a time — so it is deliberately kept out of the
    executor's breaker-node set.
    """

    __slots__ = ("keys", "prefix_len")

    def __init__(
        self,
        ctx: CostContext,
        input_plan: PlanNode,
        keys: Attribute | tuple[Attribute, ...],
        prefix_len: int,
    ) -> None:
        self.keys = as_ordering(keys)
        if not self.keys:
            raise PlanError("partial sort requires at least one key")
        if not 1 <= prefix_len <= len(self.keys):
            raise PlanError(
                f"partial-sort prefix length {prefix_len} out of range for "
                f"{len(self.keys)} keys"
            )
        if not ordering_satisfies(input_plan.ordering, self.keys[:prefix_len]):
            raise PlanError(
                "partial sort requires the input ordered on the key prefix"
            )
        self.prefix_len = prefix_len
        super().__init__(ctx, (input_plan,))

    @property
    def key(self) -> Attribute:
        return self.keys[0]

    def _compute(self, ctx, input_cards, input_orders):
        (input_card,) = input_cards
        domains = 1.0
        for attribute in self.keys[: self.prefix_len]:
            domains = min(domains * attribute.domain_size, 1e15)
        runs = input_card.min_with(Interval.point(domains))
        cost = formulas.partial_sort_cost(
            ctx.model,
            input_card,
            runs,
            record_bytes=_intermediate_record_bytes(ctx),
            memory_pages=ctx.memory_pages,
        )
        return input_card, cost, self.keys[0]

    def _derive_ordering(self, input_orderings):
        return self.keys + tuple(
            a for a in input_orderings[0] if a not in self.keys
        )

    @property
    def label(self) -> str:
        names = ", ".join(k.qualified_name for k in self.keys)
        return f"Partial-Sort {names} [prefix {self.prefix_len}]"


class TopNNode(PlanNode):
    """Top-N: the smallest ``limit`` rows by ``key``, delivered sorted.

    An executor-level operator (``ORDER BY ... LIMIT n`` shape): the
    optimizer's rule set never generates it, so the paper's plan spaces
    and figures are unaffected; plans containing it are built by hand or
    by callers that know their result budget.
    """

    __slots__ = ("key", "limit")

    def __init__(
        self, ctx: CostContext, input_plan: PlanNode, key: Attribute, limit: int
    ) -> None:
        if limit <= 0:
            raise PlanError("top-n limit must be positive")
        self.key = key
        self.limit = limit
        super().__init__(ctx, (input_plan,))

    def _compute(self, ctx, input_cards, input_orders):
        (input_card,) = input_cards
        # One pass over the input with a bounded heap: per-row CPU work,
        # no I/O of its own.
        cost = formulas.filter_cost(ctx.model, input_card, Interval.point(1.0))
        return input_card.min_with(Interval.point(float(self.limit))), cost, self.key

    @property
    def label(self) -> str:
        return f"Top-{self.limit} {self.key.qualified_name}"


# ----------------------------------------------------------------------
# Statement-composition operators (SPJU / outer join / semi-join)
# ----------------------------------------------------------------------
def semi_join_cardinality(outer_card: Interval) -> Interval:
    """Hard bounds for a semi-join: at most one output per outer row.

    The unary-key property holds by construction (each outer row appears
    at most once regardless of inner duplicates), so the upper bound is
    the outer cardinality exactly — Chen & Schneider's tightest SPJ bound
    for this shape.  The lower bound is zero: the inner may match nothing.
    """
    return Interval(0.0, outer_card.high)


def left_outer_cardinality(
    left_card: Interval, right_card: Interval, right_unique: bool
) -> Interval:
    """Hard bounds for a left outer join on ``left = right``.

    Every left row survives (padded when unmatched), so the lower bound
    is the left cardinality.  With a unary key on the right join
    attribute each left row matches at most once, collapsing the interval
    to the left cardinality exactly; otherwise a left row may match every
    right row.
    """
    if right_unique:
        return Interval(left_card.low, left_card.high)
    return Interval(left_card.low, left_card.high * max(1.0, right_card.high))


def union_all_cardinality(input_cards: tuple[Interval, ...]) -> Interval:
    """UNION ALL concatenates: output bounds are the sums of the inputs."""
    low = sum(card.low for card in input_cards)
    high = sum(card.high for card in input_cards)
    return Interval(low, high)


def distinct_cardinality(
    input_card: Interval, attributes: tuple[Attribute, ...]
) -> Interval:
    """Duplicate elimination: bounded by input size and the key domain."""
    domains = 1.0
    for attribute in attributes:
        domains = min(domains * attribute.domain_size, 1e15)
    low = min(input_card.low, 1.0) if input_card.low > 0 else input_card.low
    return Interval(low, min(input_card.high, domains))


class SemiJoinNode(PlanNode):
    """Hash semi-join: outer rows with at least one inner match.

    The IN/EXISTS subquery rewrite.  Built above the branch core by
    statement composition (:mod:`repro.optimizer.statement`) — the
    Volcano rule set never generates it, so existing plan spaces are
    unaffected.  Inner is the build side; output preserves the outer
    input's order and schema.
    """

    __slots__ = ("outer_attr", "inner_attr")

    def __init__(
        self,
        ctx: CostContext,
        outer: PlanNode,
        inner: PlanNode,
        outer_attr: Attribute,
        inner_attr: Attribute,
    ) -> None:
        self.outer_attr = outer_attr
        self.inner_attr = inner_attr
        super().__init__(ctx, (outer, inner))

    def _compute(self, ctx, input_cards, input_orders):
        outer_card, inner_card = input_cards
        cardinality = semi_join_cardinality(outer_card)
        cost = formulas.hash_join_cost(
            ctx.model,
            inner_card,
            outer_card,
            cardinality,
            record_bytes=_intermediate_record_bytes(ctx),
            memory_pages=ctx.memory_pages,
        )
        return cardinality, cost, input_orders[0]

    def _derive_ordering(self, input_orderings):
        # A semi-join only filters the outer stream.
        return input_orderings[0]

    @property
    def label(self) -> str:
        return (
            f"Semi-Join [{self.outer_attr.qualified_name} = "
            f"{self.inner_attr.qualified_name}]"
        )


class LeftOuterJoinNode(PlanNode):
    """Hash left outer join: every left row, padded with NULLs on a miss.

    The right side is the build input.  ``right_unique`` records a
    declared unary key on the right join attribute, which collapses the
    cardinality interval to the left input's (at most one match per left
    row).
    """

    __slots__ = ("left_attr", "right_attr", "right_unique")

    def __init__(
        self,
        ctx: CostContext,
        left: PlanNode,
        right: PlanNode,
        left_attr: Attribute,
        right_attr: Attribute,
        right_unique: bool = False,
    ) -> None:
        self.left_attr = left_attr
        self.right_attr = right_attr
        self.right_unique = right_unique
        super().__init__(ctx, (left, right))

    def _compute(self, ctx, input_cards, input_orders):
        left_card, right_card = input_cards
        cardinality = left_outer_cardinality(
            left_card, right_card, self.right_unique
        )
        cost = formulas.hash_join_cost(
            ctx.model,
            right_card,
            left_card,
            cardinality,
            record_bytes=_intermediate_record_bytes(ctx),
            memory_pages=ctx.memory_pages,
        )
        return cardinality, cost, None

    @property
    def label(self) -> str:
        suffix = " unique" if self.right_unique else ""
        return (
            f"Left-Outer-Join [{self.left_attr.qualified_name} = "
            f"{self.right_attr.qualified_name}{suffix}]"
        )


class UnionAllNode(PlanNode):
    """Concatenate two or more inputs of identical arity (UNION ALL)."""

    __slots__ = ()

    def __init__(self, ctx: CostContext, inputs: tuple[PlanNode, ...]) -> None:
        if len(inputs) < 2:
            raise PlanError("union needs at least two inputs")
        super().__init__(ctx, inputs)

    def _compute(self, ctx, input_cards, input_orders):
        cardinality = union_all_cardinality(tuple(input_cards))
        # Pure pass-through: per-row CPU work, no I/O of its own.
        cost = formulas.filter_cost(ctx.model, cardinality, Interval.point(1.0))
        return cardinality, cost, None

    @property
    def label(self) -> str:
        return f"Union-All [{len(self.inputs)} inputs]"


class DistinctNode(PlanNode):
    """Hash-based duplicate elimination (UNION's distinct step)."""

    __slots__ = ("attributes",)

    def __init__(
        self,
        ctx: CostContext,
        input_plan: PlanNode,
        attributes: tuple[Attribute, ...],
    ) -> None:
        if not attributes:
            raise PlanError("distinct needs at least one attribute")
        self.attributes = attributes
        super().__init__(ctx, (input_plan,))

    def _compute(self, ctx, input_cards, input_orders):
        (input_card,) = input_cards
        cardinality = distinct_cardinality(input_card, self.attributes)
        cost = formulas.hash_aggregate_cost(
            ctx.model,
            input_card,
            cardinality,
            record_bytes=_intermediate_record_bytes(ctx),
            memory_pages=ctx.memory_pages,
        )
        return cardinality, cost, None

    @property
    def label(self) -> str:
        names = ", ".join(a.qualified_name for a in self.attributes)
        return f"Distinct [{names}]"


class ChoosePlanNode(PlanNode):
    """Choose-Plan enforcer: the plan-robustness property (Table 1).

    Links two or more equivalent alternative plans whose compile-time costs
    are incomparable.  Its compile-time cost is the pointwise minimum of the
    alternatives' cost intervals plus the decision overhead (Section 5); at
    start-up time the decision procedure picks the alternative whose
    re-evaluated cost is minimal.
    """

    __slots__ = ()

    def __init__(self, ctx: CostContext, alternatives: tuple[PlanNode, ...]) -> None:
        if len(alternatives) < 2:
            raise PlanError("choose-plan requires at least two alternatives")
        super().__init__(ctx, alternatives)
        # Total cost is NOT the sum of the inputs: only one alternative
        # runs.  Override the default accumulation from PlanNode.__init__.
        combined = alternatives[0].cost
        combined_execution = alternatives[0].execution_cost
        for alternative in alternatives[1:]:
            combined = combined.min_with(alternative.cost)
            combined_execution = combined_execution.min_with(
                alternative.execution_cost
            )
        overhead = formulas.choose_plan_cost(ctx.model, len(alternatives))
        self.cost = combined + overhead
        # The decision overhead is charged at start-up, not during
        # execution; the chooser minimizes (and g = d compares) pure
        # execution cost, so that is what dominance pruning must see.
        self.execution_cost = combined_execution

    def _compute(self, ctx, input_cards, input_orders):
        cardinality = Interval.hull(input_cards)
        overhead = formulas.choose_plan_cost(ctx.model, len(input_cards))
        first_order = input_orders[0]
        common = first_order if all(o == first_order for o in input_orders) else None
        return cardinality, overhead, common

    def _derive_ordering(self, input_orderings):
        # Whichever alternative runs, the output is sorted at least on
        # the alternatives' common leading prefix.
        return common_prefix(list(input_orderings))

    @property
    def alternatives(self) -> tuple[PlanNode, ...]:
        """The equivalent alternative subplans."""
        return self.inputs

    @property
    def label(self) -> str:
        return f"Choose-Plan ({len(self.inputs)} alternatives)"


# ----------------------------------------------------------------------
# Order enforcement
# ----------------------------------------------------------------------
def enforce_ordering(
    ctx: CostContext,
    plan: PlanNode,
    keys: Attribute | tuple[Attribute, ...] | None,
) -> PlanNode:
    """Deliver ``keys`` order on top of ``plan`` as cheaply as possible.

    Three rungs, per the order-property lattice: the plan's own ordering
    already satisfies the requirement (no operator at all); a non-empty
    shared prefix exists (a :class:`PartialSortNode` finishes the job run
    by run); no usable prefix (a full :class:`SortNode`).  Callers must
    apply this *per alternative* — below any choose-plan — so each
    alternative is credited for the ordering it actually delivers and
    g = d is preserved.
    """
    required = as_ordering(keys)
    if not required or ordering_satisfies(plan.ordering, required):
        return plan
    prefix = shared_prefix_len(plan.ordering, required)
    if prefix > 0:
        return PartialSortNode(ctx, plan, required, prefix)
    return SortNode(ctx, plan, required)


# ----------------------------------------------------------------------
# DAG traversal helpers
# ----------------------------------------------------------------------
def iter_plan_nodes(root: PlanNode) -> Iterator[PlanNode]:
    """Yield every distinct node of the plan DAG exactly once (post-order).

    Shared subplans are visited once; identity, not structure, defines
    distinctness — matching the paper's access-module node counts.
    """
    seen: set[int] = set()

    def walk(node: PlanNode) -> Iterator[PlanNode]:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.inputs:
            yield from walk(child)
        yield node

    yield from walk(root)


def count_plan_nodes(root: PlanNode) -> int:
    """Number of distinct operator nodes in the plan DAG (Figure 6)."""
    return sum(1 for _ in iter_plan_nodes(root))


def count_choose_plan_nodes(root: PlanNode) -> int:
    """Number of choose-plan operators in the DAG."""
    return sum(1 for node in iter_plan_nodes(root) if isinstance(node, ChoosePlanNode))


def leaf_access_info(
    node: PlanNode,
) -> tuple[str, frozenset[SelectionPredicate]] | None:
    """Identify a pure single-relation access subtree.

    Returns ``(relation, predicates applied)`` when ``node`` is a stack of
    Filter operators over one scan of a base relation — the shape of every
    leaf-group plan — or None otherwise.  Two access plans with equal info
    produce identical row sets, so a materialized temporary for one can
    substitute for any of them (run-time adaptation, Section 7).
    """
    predicates: set[SelectionPredicate] = set()
    current = node
    while isinstance(current, FilterNode):
        predicates.add(current.predicate)
        current = current.inputs[0]
    if isinstance(current, FileScanNode):
        return current.relation, frozenset(predicates)
    if isinstance(current, BtreeScanNode):
        if current.predicate is not None:
            predicates.add(current.predicate)
        return current.relation, frozenset(predicates)
    return None


def _intermediate_record_bytes(ctx: CostContext) -> int:
    """Record width assumed for intermediate results.

    The paper's experiments use a uniform 512-byte record; intermediate
    results inherit it.  A finer model would track projected widths.
    """
    return 512
