"""Physical algebra: executable plan operators and plan DAGs.

The physical algebra implements Table 1 of the paper: File-Scan,
B-tree-Scan, Filter, Filter-B-tree-Scan, Hash-Join, Merge-Join, Index-Join,
the Sort enforcer, and the Choose-Plan enforcer that realizes dynamic
plans.  Plans are immutable DAGs — shared subplans are literally shared
Python objects, which is what keeps dynamic plan size and start-up effort
sub-exponential (Sections 3 and 4).
"""

from repro.physical.plan import (
    BtreeScanNode,
    ChoosePlanNode,
    FileScanNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexJoinNode,
    MergeJoinNode,
    NestedLoopsJoinNode,
    PlanNode,
    ProjectNode,
    SortedAggregateNode,
    SortNode,
    count_plan_nodes,
    iter_plan_nodes,
    count_choose_plan_nodes,
)
from repro.physical.explain import explain, explain_analyze, to_dot

__all__ = [
    "BtreeScanNode",
    "ChoosePlanNode",
    "FileScanNode",
    "FilterNode",
    "HashAggregateNode",
    "HashJoinNode",
    "IndexJoinNode",
    "MergeJoinNode",
    "NestedLoopsJoinNode",
    "PlanNode",
    "ProjectNode",
    "SortedAggregateNode",
    "SortNode",
    "count_plan_nodes",
    "iter_plan_nodes",
    "count_choose_plan_nodes",
    "explain",
    "explain_analyze",
    "to_dot",
]
