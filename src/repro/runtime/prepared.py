"""Prepared queries: the embedded-SQL lifecycle as one object.

A :class:`PreparedQuery` bundles what a production system keeps per
embedded statement: the compiled (dynamic) plan in its access module, the
parameter space, and the re-optimization fallback for invalidated modules
([CAK81]; the paper's Section 1 and 4 discuss exactly this lineage).

Typical use::

    prepared = PreparedQuery.prepare(
        "SELECT * FROM R WHERE R.a < :v", catalog)
    result = prepared.execute(db, {"v": 120})     # each invocation

``execute`` binds the host variables, derives the selectivity parameters
from the database's statistics (uniform-data bridge or histograms), lets
the choose-plan operators decide, and runs the chosen plan.  If DDL
invalidated the module since compilation, the query is transparently
re-optimized first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.cost.context import DOP_PARAMETER
from repro.cost.model import CostModel
from repro.errors import BindingError
from repro.executor.database import Database
from repro.executor.executor import ExecutionResult, execute_plan
from repro.logical.query import QueryGraph
from repro.optimizer.optimizer import OptimizationMode, optimize_query
from repro.params.parameter import ParameterKind
from repro.runtime.access_module import AccessModule, Activation


@dataclass
class PreparedQuery:
    """A compiled embedded query, ready for repeated invocation."""

    graph: QueryGraph
    catalog: Catalog
    model: CostModel
    mode: OptimizationMode
    module: AccessModule
    shrink_after: int | None = None
    # Relative cardinality drift of a referenced relation that triggers
    # recompilation (0.0 = any change; the AS/400-style policy [CAB93]).
    stale_threshold: float = 0.0
    reoptimizations: int = 0
    _host_to_parameter: dict[str, str] = field(default_factory=dict)

    @classmethod
    def prepare(
        cls,
        query: "str | QueryGraph",
        catalog: Catalog,
        model: CostModel | None = None,
        mode: OptimizationMode = OptimizationMode.DYNAMIC,
        shrink_after: int | None = None,
        max_dop: int | None = None,
    ) -> "PreparedQuery":
        """Compile SQL text or a query graph into a prepared query.

        ``max_dop`` > 1 declares the degree-of-parallelism run-time
        parameter (interval ``[1, max_dop]``, expected 1): the optimizer
        then retains parallel alternatives alongside serial ones, and the
        start-up decision activates one when :meth:`execute` binds the
        actual DOP.  The default leaves the query entirely serial.
        """
        model = model if model is not None else CostModel()
        if isinstance(query, str):
            from repro.query.parser import parse_query

            graph = parse_query(query, catalog).graph
        else:
            graph = query
        if max_dop is not None and max_dop > 1 and DOP_PARAMETER not in graph.parameters:
            graph.parameters.add_dop(name=DOP_PARAMETER, high=max_dop)
        result = optimize_query(graph, catalog, model, mode=mode)
        module = AccessModule.compile(result.plan, result.ctx, shrink_after)
        prepared = cls(
            graph=graph,
            catalog=catalog,
            model=model,
            mode=mode,
            module=module,
            shrink_after=shrink_after,
        )
        prepared._index_host_variables()
        return prepared

    def _index_host_variables(self) -> None:
        self._host_to_parameter.clear()
        for relation in self.graph.relations:
            for predicate in self.graph.selections_on(relation):
                if predicate.is_unbound:
                    operand = predicate.operand
                    self._host_to_parameter[operand.name] = (
                        operand.selectivity_parameter
                    )

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def derive_parameters(
        self,
        db: Database,
        value_bindings: Mapping[str, object],
        overrides: Mapping[str, float] | None = None,
        memory_pages: int | None = None,
        dop: int | None = None,
    ) -> dict[str, float]:
        """Parameter values for one invocation.

        Selectivity parameters are derived from the bound host-variable
        values against the database's statistics (``implied_selectivity``);
        memory parameters take ``memory_pages`` when given, falling back to
        the model's expected pages; degree-of-parallelism parameters take
        ``dop`` (clamped to the declared domain), falling back to the
        expected value (serial).  ``overrides`` wins for any parameter it
        names; naming a parameter the query does not declare raises
        :class:`BindingError`.
        """
        values: dict[str, float] = {}
        overrides = dict(overrides or {})
        unknown = sorted(
            set(overrides) - {p.name for p in self.graph.parameters}
        )
        if unknown:
            raise BindingError(
                "overrides name unknown parameter(s): " + ", ".join(unknown)
            )
        for parameter in self.graph.parameters:
            if parameter.name in overrides:
                values[parameter.name] = overrides[parameter.name]
                continue
            if parameter.kind is ParameterKind.MEMORY_PAGES:
                pages = (
                    memory_pages
                    if memory_pages is not None
                    else self.model.default_memory_pages
                )
                values[parameter.name] = float(pages)
                continue
            if parameter.kind is ParameterKind.DEGREE_OF_PARALLELISM:
                if dop is None:
                    values[parameter.name] = parameter.expected
                else:
                    domain = parameter.domain
                    values[parameter.name] = float(
                        min(max(float(dop), domain.low), domain.high)
                    )
                continue
            predicate = self._predicate_of(parameter.name)
            if predicate is None:
                raise BindingError(
                    f"cannot derive a value for parameter {parameter.name}; "
                    "pass it via overrides"
                )
            values[parameter.name] = db.implied_selectivity(
                predicate, value_bindings
            )
        return values

    def _predicate_of(self, parameter_name: str):
        for relation in self.graph.relations:
            for predicate in self.graph.selections_on(relation):
                if (
                    predicate.is_unbound
                    and predicate.operand.selectivity_parameter == parameter_name
                ):
                    return predicate
        return None

    def activate(self, parameter_values: Mapping[str, float]) -> Activation:
        """Start the module, re-optimizing transparently when it is
        invalid (infeasible after DDL) or stale (statistics drifted)."""
        if not self.module.validate(self.catalog) or self.module.is_stale(
            self.catalog, self.stale_threshold
        ):
            result = optimize_query(
                self.graph, self.catalog, self.model, mode=self.mode
            )
            self.module = AccessModule.compile(
                result.plan, result.ctx, self.shrink_after
            )
            self.reoptimizations += 1
        return self.module.activate(parameter_values)

    def execute(
        self,
        db: Database,
        value_bindings: Mapping[str, object],
        parameter_values: Mapping[str, float] | None = None,
        memory_pages: int | None = None,
        dop: int | None = None,
        execution_mode: str = "fused",
        batch_size: int | None = None,
    ) -> ExecutionResult:
        """One full invocation: derive, activate, decide, execute.

        ``memory_pages`` reaches both sides of the invocation: the derived
        memory parameter (so choose-plan decisions see the caller's actual
        memory, not the cost model's default) and the executor's memory
        bound.  ``dop`` does the same for parallelism: the decision
        procedure sees the bound degree (activating a parallel alternative
        only when it pays off) and the executor spawns that many exchange
        workers.

        ``execution_mode`` and ``batch_size`` tune the executor only: the
        activation decision is identical in either mode (the cost model
        does not depend on the iterator family).
        """
        if parameter_values is None:
            parameter_values = self.derive_parameters(
                db, value_bindings, memory_pages=memory_pages, dop=dop
            )
        elif dop is not None and DOP_PARAMETER in self.graph.parameters:
            parameter_values = {**parameter_values, DOP_PARAMETER: float(dop)}
        if dop is None:
            dop = int(parameter_values.get(DOP_PARAMETER, 1))
        activation = self.activate(parameter_values)
        return execute_plan(
            self.module.plan,
            db,
            bindings=value_bindings,
            choices=activation.decision.choices,
            memory_pages=memory_pages,
            dop=dop,
            execution_mode=execution_mode,
            batch_size=batch_size,
        )

    def execute_adaptive(
        self,
        db: Database,
        value_bindings: Mapping[str, object],
        parameter_values: Mapping[str, float] | None = None,
        memory_pages: int | None = None,
        dop: int | None = None,
        execution_mode: str = "fused",
        batch_size: int | None = None,
        policy=None,
        analyze: bool = False,
    ):
        """Like :meth:`execute`, with mid-query re-optimization enabled.

        The invocation lifecycle is identical — derive, activate, decide —
        but execution runs under the adaptive controller: pipeline
        breakers whose observed cardinality escapes the compile-time
        interval pin their rows and re-enter the optimizer for the rest
        of the query.  Returns an
        :class:`~repro.adaptive.controller.AdaptiveExecution` (its
        ``.result`` is the usual :class:`ExecutionResult`).
        """
        # Function-level import: repro.adaptive imports the executor,
        # which sits below this module; importing it lazily keeps the
        # runtime package importable without the adaptive subsystem.
        from repro.adaptive.controller import execute_adaptive_plan

        if parameter_values is None:
            parameter_values = self.derive_parameters(
                db, value_bindings, memory_pages=memory_pages, dop=dop
            )
        elif dop is not None and DOP_PARAMETER in self.graph.parameters:
            parameter_values = {**parameter_values, DOP_PARAMETER: float(dop)}
        if dop is None:
            dop = int(parameter_values.get(DOP_PARAMETER, 1))
        activation = self.activate(parameter_values)
        return execute_adaptive_plan(
            self.module.plan,
            self.graph,
            db,
            self.module.ctx,
            policy=policy,
            bindings=value_bindings,
            parameter_values=parameter_values,
            choices=activation.decision.choices,
            memory_pages=memory_pages,
            dop=dop,
            execution_mode=execution_mode,
            batch_size=batch_size,
            analyze=analyze,
            mode=self.mode,
        )
