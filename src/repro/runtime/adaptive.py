"""Run-time adaptation beyond start-up: the paper's Section 7 sketch.

The paper closes with its planned generalization: "our initial approach has
been to handle inaccurate expected values by evaluating subplans as part of
choose-plan decision procedures.  When a subplan has been evaluated into a
temporary result, its logical and physical properties (e.g., result
cardinality ...) are known and therefore may contribute to decisions with
increased confidence."

This module implements that mechanism for selectivity parameters that are
*still unknown at start-up time* (e.g. the predicate compares against a
value computed by the application, with no usable estimate):

1. For every unobserved selectivity parameter, the access plan of its base
   relation is chosen by expected value and **materialized** into a
   temporary result.
2. The observed result cardinality binds the parameter
   (selectivity = |result| / |relation|, corrected for the relation's
   other predicates).
3. With the environment now fully bound, the ordinary choose-plan decision
   procedure resolves the rest of the dynamic plan.
4. The final plan executes with the temporaries substituted for the
   corresponding access subtrees, so the observed work is never repeated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cost.context import CostContext
from repro.errors import ExecutionError
from repro.executor.database import Database
from repro.executor.executor import ExecutionResult, execute_plan
from repro.executor.iterators import MaterializedIterator
from repro.logical.estimation import estimate_selectivity
from repro.logical.predicates import SelectionPredicate
from repro.logical.query import QueryGraph
from repro.optimizer.engine import SearchEngine
from repro.optimizer.memo import GroupResult
from repro.params.parameter import ParameterKind
from repro.physical.plan import PlanNode, leaf_access_info
from repro.runtime.chooser import resolve_plan


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of one adaptive execution."""

    result: ExecutionResult
    observed_selectivities: dict[str, float]
    materialized_rows: dict[str, int]  # relation -> temporary result size
    decisions: Mapping[int, PlanNode]


def execute_adaptive(
    plan: PlanNode,
    query: QueryGraph,
    db: Database,
    ctx: CostContext,
    value_bindings: Mapping[str, object],
    known_parameters: Mapping[str, float] | None = None,
    memory_pages: int | None = None,
) -> AdaptiveResult:
    """Execute a dynamic plan when selectivities are unknown at start-up.

    ``value_bindings`` supplies host-variable *values* (needed to evaluate
    predicates); ``known_parameters`` supplies whatever parameter values
    are already known (e.g. memory, or selectivities the application can
    estimate).  Every selectivity parameter missing from
    ``known_parameters`` is observed by materializing its relation's access
    plan; non-selectivity parameters cannot be observed this way and must
    be supplied.
    """
    known = dict(known_parameters or {})
    space = query.parameters
    observed: dict[str, float] = {}
    materialized: dict[tuple, MaterializedIterator] = {}
    materialized_rows: dict[str, int] = {}

    for parameter in space:
        if parameter.name in known:
            continue
        if parameter.kind is not ParameterKind.SELECTIVITY:
            raise ExecutionError(
                f"cannot observe non-selectivity parameter {parameter.name}; "
                "supply it in known_parameters"
            )
        relation, predicate = _relation_of_parameter(query, parameter.name)
        access_plan = _expected_value_access_plan(query, ctx, relation)
        out = execute_plan(
            access_plan, db, bindings=value_bindings, memory_pages=memory_pages
        )
        base = db.catalog.relation(relation).stats.cardinality
        selectivity = _observed_selectivity(
            len(out.rows), base, predicate, query, relation, ctx, known
        )
        observed[parameter.name] = selectivity
        known[parameter.name] = selectivity
        key = (relation, frozenset(query.selections_on(relation)))
        materialized[key] = MaterializedIterator(out.schema, tuple(out.rows))
        materialized_rows[relation] = len(out.rows)

    env = space.bind(known)
    decision = resolve_plan(plan, ctx.with_env(env))
    final = execute_plan(
        plan,
        db,
        bindings=value_bindings,
        choices=decision.choices,
        memory_pages=memory_pages,
        materialized=materialized,
    )
    return AdaptiveResult(
        result=final,
        observed_selectivities=observed,
        materialized_rows=materialized_rows,
        decisions=decision.choices,
    )


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _relation_of_parameter(
    query: QueryGraph, parameter_name: str
) -> tuple[str, SelectionPredicate]:
    """The relation and predicate an unbound selectivity parameter governs."""
    for relation in query.relations:
        for predicate in query.selections_on(relation):
            if (
                predicate.is_unbound
                and predicate.operand.selectivity_parameter == parameter_name
            ):
                return relation, predicate
    raise ExecutionError(
        f"selectivity parameter {parameter_name} is not attached to any "
        "predicate of this query"
    )


def _expected_value_access_plan(
    query: QueryGraph, ctx: CostContext, relation: str
) -> PlanNode:
    """The relation's traditionally optimized access plan.

    Some plan must run to produce the observation; following the paper's
    sketch, the fallback is the expected-value (static) choice.
    """
    expected_env = ctx.env.space.static_environment()
    engine = SearchEngine(query=query, ctx=ctx.with_env(expected_env))
    group = engine.optimize_group(frozenset({relation}), None, None)
    assert isinstance(group, GroupResult)
    plan = group.plan
    assert leaf_access_info(plan) is not None
    return plan


def _observed_selectivity(
    result_rows: int,
    base_cardinality: int,
    predicate: SelectionPredicate,
    query: QueryGraph,
    relation: str,
    ctx: CostContext,
    known: Mapping[str, float],
) -> float:
    """Back out one predicate's selectivity from an observed result size.

    The materialized access plan applies *all* of the relation's
    predicates; dividing the combined observed selectivity by the other
    predicates' (estimated or already-known) selectivities isolates the
    unknown one.  With several unobserved unbound predicates on one
    relation the split is not identifiable; the combined value is
    conservatively attributed to the current parameter.
    """
    combined = result_rows / base_cardinality if base_cardinality else 0.0
    others = 1.0
    env = ctx.env.space.static_environment()
    for other in query.selections_on(relation):
        if other is predicate:
            continue
        if other.is_unbound:
            name = other.operand.selectivity_parameter
            if name in known:
                others *= known[name]
        else:
            others *= estimate_selectivity(other, env, ctx.catalog).midpoint
    if others <= 0:
        return min(max(combined, 0.0), 1.0)
    return min(max(combined / others, 0.0), 1.0)
