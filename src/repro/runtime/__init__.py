"""Start-up-time machinery: decisions, access modules, scenario accounting.

At start-up time the run-time bindings are known; the decision procedure
(:mod:`repro.runtime.chooser`) re-evaluates the cost functions of a dynamic
plan's alternatives bottom-up over the shared DAG and activates the
cheapest.  Access modules (:mod:`repro.runtime.access_module`) model the
stored form of plans — size, read time, catalog validation, and the
Section 4 shrinking heuristic.  Scenario accounting
(:mod:`repro.runtime.scenarios`) realizes Figure 3's three optimization
scenarios and the break-even analysis of Section 6.
"""

from repro.runtime.adaptive import AdaptiveResult, execute_adaptive
from repro.runtime.prepared import PreparedQuery
from repro.runtime.chooser import ActivationDecision, resolve_plan
from repro.runtime.access_module import (
    AccessModule,
    deserialize_plan,
    serialize_plan,
)
from repro.runtime.scenarios import (
    InvocationOutcome,
    ScenarioRun,
    break_even_vs_runtime,
    break_even_vs_static,
    run_dynamic_scenario,
    run_runtime_scenario,
    run_static_scenario,
)

__all__ = [
    "PreparedQuery",
    "AdaptiveResult",
    "execute_adaptive",
    "ActivationDecision",
    "resolve_plan",
    "AccessModule",
    "serialize_plan",
    "deserialize_plan",
    "InvocationOutcome",
    "ScenarioRun",
    "break_even_vs_static",
    "break_even_vs_runtime",
    "run_static_scenario",
    "run_runtime_scenario",
    "run_dynamic_scenario",
]
