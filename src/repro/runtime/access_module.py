"""Access modules: the stored, activatable form of an optimized plan.

An access module is what a production system writes to disk after
compile-time optimization and reads back at each invocation.  This module
models the paper's access-module lifecycle:

* **size and read time** — node count × 128 bytes at 2 MB/s plus a fixed
  validation/seek overhead (Section 6's start-up I/O model),
* **validation** — catalog-version and index-existence checks before
  activation (System R-style, [CAK81]),
* **activation** — read, validate, and resolve all choose-plan decisions,
* **usage statistics and the shrinking heuristic** (Section 4) — after a
  configurable number of invocations the module replaces itself with one
  containing only the components that were actually chosen,
* **serialization** — a JSON-compatible DAG encoding with explicit subplan
  sharing, so modules survive a round trip to disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.cost.context import CostContext
from repro.errors import PlanError
from repro.logical.predicates import (
    CompareOp,
    HostVariable,
    JoinPredicate,
    Literal,
    SelectionPredicate,
)
from repro.obs.log import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.parallel.plan import ExchangeMode, ExchangeNode
from repro.params.parameter import ParameterSpace
from repro.physical.plan import (
    BtreeScanNode,
    ChoosePlanNode,
    DistinctNode,
    FileScanNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexJoinNode,
    LeftOuterJoinNode,
    MergeJoinNode,
    NestedLoopsJoinNode,
    PartialSortNode,
    PlanNode,
    ProjectNode,
    SemiJoinNode,
    SortedAggregateNode,
    SortNode,
    TopNNode,
    UnionAllNode,
    count_plan_nodes,
    iter_plan_nodes,
)
from repro.runtime.chooser import ActivationDecision, resolve_plan

_LOG = get_logger(__name__)

#: Version of the serialized access-module wire format.  The serialized
#: module is the cross-process plan contract (coordinator -> shard), so the
#: format is versioned explicitly: readers accept payloads without a
#: ``wire_version`` field as version 1 (pre-versioning emitters) and reject
#: anything newer than what they understand.
WIRE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Activation:
    """One start-up of an access module: timings plus the decision outcome.

    ``read_seconds`` is modeled I/O (module transfer + validation seek);
    ``decision`` carries the measured decision CPU time and the predicted
    execution cost of the chosen plan.
    """

    read_seconds: float
    decision: ActivationDecision

    @property
    def startup_seconds(self) -> float:
        """Total start-up effort: modeled I/O plus measured decision CPU."""
        return self.read_seconds + self.decision.cpu_seconds


@dataclass
class AccessModule:
    """A compiled plan with usage tracking and self-shrinking."""

    plan: PlanNode
    ctx: CostContext  # compile-time context the plan was built under
    catalog_version: int
    shrink_after: int | None = None  # invocations between shrink attempts
    invocations: int = 0
    compiled_cardinalities: dict[str, int] = field(default_factory=dict)
    _usage: dict[int, set[int]] = field(default_factory=dict)
    # Memoized choose-plan resolutions, keyed by binding vector.  Under a
    # given binding the decision procedure is deterministic, so repeated
    # activations with the same parameter values can reuse the resolved
    # decision instead of re-walking the shared plan DAG.  Invalidation:
    # cleared whenever the catalog version moves or the plan is replaced
    # by :meth:`shrink` (cached choices reference plan nodes by identity).
    _decision_cache: dict[tuple, ActivationDecision] = field(default_factory=dict)
    _decision_cache_version: int | None = None

    @classmethod
    def compile(
        cls,
        plan: PlanNode,
        ctx: CostContext,
        shrink_after: int | None = None,
    ) -> "AccessModule":
        """Package an optimized plan into an access module."""
        return cls(
            plan=plan,
            ctx=ctx,
            catalog_version=ctx.catalog.version,
            shrink_after=shrink_after,
            compiled_cardinalities={
                relation: ctx.catalog.relation(relation).stats.cardinality
                for relation in _referenced_relations(plan)
            },
        )

    # ------------------------------------------------------------------
    # Size / read-time model
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Operator nodes in the stored DAG."""
        return count_plan_nodes(self.plan)

    @property
    def size_bytes(self) -> int:
        """Stored size at the model's bytes-per-node."""
        return self.node_count * self.ctx.model.plan_node_bytes

    @property
    def read_seconds(self) -> float:
        """Modeled time to read and validate the module (Section 6)."""
        return self.ctx.model.activation_time(self.node_count)

    # ------------------------------------------------------------------
    # Validation and activation
    # ------------------------------------------------------------------
    def validate(self, catalog: Catalog) -> bool:
        """True when the module is still usable against ``catalog``.

        The cheap check is the catalog version; when it moved, the module is
        still valid if every index it references survives (creating an
        unrelated index must not invalidate plans).
        """
        if catalog.version == self.catalog_version:
            return True
        for node in iter_plan_nodes(self.plan):
            index_name = getattr(node, "index_name", None)
            if index_name is None:
                continue
            relation = getattr(node, "relation", None) or getattr(
                node, "inner_relation"
            )
            try:
                info = catalog.relation(relation)
            except Exception:
                return False
            if not any(ix.name == index_name for ix in info.indexes):
                return False
        return True

    def is_stale(self, catalog: Catalog, relative_threshold: float = 0.0) -> bool:
        """True when a referenced relation's statistics drifted since compile.

        Stale modules are still *valid* (they execute correctly) but their
        compile-time cost comparisons were made against outdated numbers —
        the AS/400-style suboptimality trigger the paper contrasts with
        ([CAB93]).  ``relative_threshold`` tolerates small drift.
        """
        for relation, compiled in self.compiled_cardinalities.items():
            try:
                current = catalog.relation(relation).stats.cardinality
            except Exception:
                return True
            baseline = max(compiled, 1)
            if abs(current - compiled) / baseline > relative_threshold:
                return True
        return False

    def activate(self, binding: Mapping[str, float]) -> Activation:
        """Start the module: modeled read + choose-plan resolution.

        Raises :class:`PlanError` when validation fails (a production system
        would re-optimize, cf. [CAK81]).
        """
        if not self.validate(self.ctx.catalog):
            raise PlanError(
                "access module invalidated by catalog changes; re-optimize"
            )
        metrics = get_metrics()
        if self._decision_cache_version != self.ctx.catalog.version:
            self._decision_cache.clear()
            self._decision_cache_version = self.ctx.catalog.version
        cache_key = tuple(sorted(binding.items()))
        decision = self._decision_cache.get(cache_key)
        if decision is None:
            env = self.ctx.env.space.bind(binding)
            decision = resolve_plan(self.plan, self.ctx.with_env(env))
            self._decision_cache[cache_key] = decision
        else:
            metrics.counter("access_module.decision_cache_hits").inc()
        self.invocations += 1
        metrics.counter("access_module.activations").inc()
        metrics.timer("access_module.read_io").observe(self.read_seconds)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "access_module.activated",
                node_count=self.node_count,
                read_seconds=self.read_seconds,
                invocation=self.invocations,
                **decision.as_dict(),
            )
        for choose_id, chosen in decision.choices.items():
            node = self._node_by_id(choose_id)
            index = node.alternatives.index(chosen)
            self._usage.setdefault(choose_id, set()).add(index)
        if self.shrink_after is not None and self.invocations % self.shrink_after == 0:
            self.shrink()
        return Activation(read_seconds=self.read_seconds, decision=decision)

    def _node_by_id(self, node_id: int) -> ChoosePlanNode:
        for node in iter_plan_nodes(self.plan):
            if id(node) == node_id and isinstance(node, ChoosePlanNode):
                return node
        raise PlanError("stale choose-plan reference in usage statistics")

    # ------------------------------------------------------------------
    # Shrinking heuristic (Section 4)
    # ------------------------------------------------------------------
    def shrink(self) -> bool:
        """Replace the plan with one containing only used alternatives.

        Returns True when the plan changed.  Choose-plan operators whose
        decisions always fell on the same alternative are removed entirely;
        others keep only the alternatives chosen at least once.  This is a
        heuristic: an alternative never used so far might have been optimal
        for a future binding (the paper accepts this trade-off).
        """
        if not self._usage:
            return False
        rebuilt: dict[int, PlanNode] = {}

        def walk(node: PlanNode) -> PlanNode:
            cached = rebuilt.get(id(node))
            if cached is not None:
                return cached
            if isinstance(node, ChoosePlanNode):
                used = sorted(self._usage.get(id(node), set()))
                if not used:
                    # Never decided (unreached branch): keep everything.
                    kept = [walk(a) for a in node.alternatives]
                else:
                    kept = [walk(node.alternatives[i]) for i in used]
                if len(kept) == 1:
                    result: PlanNode = kept[0]
                else:
                    result = ChoosePlanNode(self.ctx, tuple(kept))
            else:
                new_inputs = tuple(walk(child) for child in node.inputs)
                if all(a is b for a, b in zip(new_inputs, node.inputs)):
                    result = node
                else:
                    result = rebuild_node(self.ctx, node, new_inputs)
            rebuilt[id(node)] = result
            return result

        nodes_before = self.node_count
        new_plan = walk(self.plan)
        changed = new_plan is not self.plan or count_plan_nodes(
            new_plan
        ) != nodes_before
        self.plan = new_plan
        self._usage.clear()
        if changed:
            # Cached decisions reference the old plan's nodes by identity.
            self._decision_cache.clear()
            _LOG.info(
                "access module shrunk: %d -> %d nodes after %d invocations",
                nodes_before,
                self.node_count,
                self.invocations,
            )
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "access_module.shrunk",
                    nodes_before=nodes_before,
                    nodes_after=self.node_count,
                    invocations=self.invocations,
                )
        return changed

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the module (plan DAG + version) to JSON."""
        payload = {
            "wire_version": WIRE_FORMAT_VERSION,
            "catalog_version": self.catalog_version,
            "plan": serialize_plan(self.plan),
        }
        return json.dumps(payload)

    @classmethod
    def from_json(
        cls, text: str, ctx: CostContext, parameters: ParameterSpace
    ) -> "AccessModule":
        """Reconstruct a module from :meth:`to_json` output."""
        payload = json.loads(text)
        wire_version = payload.get("wire_version", 1)
        if wire_version > WIRE_FORMAT_VERSION:
            raise PlanError(
                f"unsupported access-module wire version {wire_version} "
                f"(this reader understands <= {WIRE_FORMAT_VERSION})"
            )
        plan = deserialize_plan(payload["plan"], ctx, parameters)
        return cls(
            plan=plan,
            ctx=ctx,
            catalog_version=payload["catalog_version"],
        )


def _referenced_relations(plan: PlanNode) -> set[str]:
    """Base relations the plan reads (scans and index-join inners)."""
    relations: set[str] = set()
    for node in iter_plan_nodes(plan):
        relation = getattr(node, "relation", None)
        if relation is not None:
            relations.add(relation)
        inner = getattr(node, "inner_relation", None)
        if inner is not None:
            relations.add(inner)
    return relations


# ----------------------------------------------------------------------
# Node reconstruction
# ----------------------------------------------------------------------
def rebuild_node(
    ctx: CostContext, node: PlanNode, inputs: tuple[PlanNode, ...]
) -> PlanNode:
    """Construct a copy of ``node`` over new input plans."""
    if isinstance(node, FileScanNode):
        return FileScanNode(ctx, node.relation)
    if isinstance(node, BtreeScanNode):
        return BtreeScanNode(ctx, node.relation, node.key, node.predicate)
    if isinstance(node, FilterNode):
        return FilterNode(ctx, inputs[0], node.predicate)
    if isinstance(node, HashJoinNode):
        return HashJoinNode(ctx, inputs[0], inputs[1], node.predicates)
    if isinstance(node, MergeJoinNode):
        return MergeJoinNode(ctx, inputs[0], inputs[1], node.predicates)
    if isinstance(node, NestedLoopsJoinNode):
        return NestedLoopsJoinNode(ctx, inputs[0], inputs[1], node.predicates)
    if isinstance(node, IndexJoinNode):
        return IndexJoinNode(
            ctx, inputs[0], node.inner_relation, node.inner_key, node.predicates
        )
    if isinstance(node, SemiJoinNode):
        return SemiJoinNode(
            ctx, inputs[0], inputs[1], node.outer_attr, node.inner_attr
        )
    if isinstance(node, LeftOuterJoinNode):
        return LeftOuterJoinNode(
            ctx,
            inputs[0],
            inputs[1],
            node.left_attr,
            node.right_attr,
            right_unique=node.right_unique,
        )
    if isinstance(node, UnionAllNode):
        return UnionAllNode(ctx, inputs)
    if isinstance(node, DistinctNode):
        return DistinctNode(ctx, inputs[0], node.attributes)
    if isinstance(node, SortNode):
        return SortNode(ctx, inputs[0], node.keys)
    if isinstance(node, PartialSortNode):
        return PartialSortNode(ctx, inputs[0], node.keys, node.prefix_len)
    if isinstance(node, TopNNode):
        return TopNNode(ctx, inputs[0], node.key, node.limit)
    if isinstance(node, ProjectNode):
        return ProjectNode(ctx, inputs[0], node.attributes)
    if isinstance(node, HashAggregateNode):
        return HashAggregateNode(ctx, inputs[0], node.spec)
    if isinstance(node, SortedAggregateNode):
        return SortedAggregateNode(ctx, inputs[0], node.spec)
    if isinstance(node, ChoosePlanNode):
        return ChoosePlanNode(ctx, inputs)
    if isinstance(node, ExchangeNode):
        return ExchangeNode(
            ctx,
            inputs[0],
            node.mode,
            driver=node.driver,
            merge_key=node.merge_key,
            partition_keys=node.partition_keys,
        )
    raise PlanError(f"cannot rebuild unknown node type {type(node).__name__}")


# ----------------------------------------------------------------------
# Plan (de)serialization
# ----------------------------------------------------------------------
def serialize_plan(plan: PlanNode) -> dict:
    """Encode a plan DAG as a JSON-compatible node table.

    Nodes appear children-first; sharing is preserved through node indices,
    so the encoded size is proportional to the DAG, not the tree.
    """
    index: dict[int, int] = {}
    nodes: list[dict] = []
    for node in iter_plan_nodes(plan):
        entry = _encode_node(node)
        entry["inputs"] = [index[id(child)] for child in node.inputs]
        index[id(node)] = len(nodes)
        nodes.append(entry)
    return {"root": index[id(plan)], "nodes": nodes}


def deserialize_plan(
    data: dict, ctx: CostContext, parameters: ParameterSpace
) -> PlanNode:
    """Rebuild a plan DAG from :func:`serialize_plan` output.

    Costs and cardinalities are recomputed under ``ctx`` during
    reconstruction, so a module deserialized under the compile-time
    environment reproduces its original annotations.
    """
    built: list[PlanNode] = []
    for entry in data["nodes"]:
        inputs = tuple(built[i] for i in entry["inputs"])
        built.append(_decode_node(entry, inputs, ctx, parameters))
    return built[data["root"]]


def _encode_node(node: PlanNode) -> dict:
    if isinstance(node, FileScanNode):
        return {"kind": "file-scan", "relation": node.relation}
    if isinstance(node, BtreeScanNode):
        return {
            "kind": "btree-scan",
            "relation": node.relation,
            "key": node.key.qualified_name,
            "predicate": _encode_selection(node.predicate),
        }
    if isinstance(node, FilterNode):
        return {"kind": "filter", "predicate": _encode_selection(node.predicate)}
    if isinstance(node, HashJoinNode):
        return {"kind": "hash-join", "predicates": _encode_joins(node.predicates)}
    if isinstance(node, MergeJoinNode):
        return {"kind": "merge-join", "predicates": _encode_joins(node.predicates)}
    if isinstance(node, NestedLoopsJoinNode):
        return {
            "kind": "nested-loops-join",
            "predicates": _encode_joins(node.predicates),
        }
    if isinstance(node, IndexJoinNode):
        return {
            "kind": "index-join",
            "inner_relation": node.inner_relation,
            "inner_key": node.inner_key.qualified_name,
            "predicates": _encode_joins(node.predicates),
        }
    if isinstance(node, SemiJoinNode):
        return {
            "kind": "semi-join",
            "outer_attr": node.outer_attr.qualified_name,
            "inner_attr": node.inner_attr.qualified_name,
        }
    if isinstance(node, LeftOuterJoinNode):
        return {
            "kind": "left-outer-join",
            "left_attr": node.left_attr.qualified_name,
            "right_attr": node.right_attr.qualified_name,
            "right_unique": node.right_unique,
        }
    if isinstance(node, UnionAllNode):
        return {"kind": "union-all"}
    if isinstance(node, DistinctNode):
        return {
            "kind": "distinct",
            "attributes": [a.qualified_name for a in node.attributes],
        }
    if isinstance(node, SortNode):
        # "key" (the leading attribute) is kept alongside "keys" so
        # modules written by this version decode under readers that
        # predate multi-key sorts; "keys" wins when present.
        return {
            "kind": "sort",
            "key": node.keys[0].qualified_name,
            "keys": [k.qualified_name for k in node.keys],
        }
    if isinstance(node, PartialSortNode):
        return {
            "kind": "partial-sort",
            "keys": [k.qualified_name for k in node.keys],
            "prefix_len": node.prefix_len,
        }
    if isinstance(node, TopNNode):
        return {
            "kind": "top-n",
            "key": node.key.qualified_name,
            "limit": node.limit,
        }
    if isinstance(node, ProjectNode):
        return {
            "kind": "project",
            "attributes": [a.qualified_name for a in node.attributes],
        }
    if isinstance(node, (HashAggregateNode, SortedAggregateNode)):
        return {
            "kind": (
                "hash-aggregate"
                if isinstance(node, HashAggregateNode)
                else "sorted-aggregate"
            ),
            "group_by": [a.qualified_name for a in node.spec.group_by],
            "aggregates": [
                {
                    "function": e.function.value,
                    "attribute": (
                        e.attribute.qualified_name if e.attribute else None
                    ),
                }
                for e in node.spec.aggregates
            ],
        }
    if isinstance(node, ChoosePlanNode):
        return {"kind": "choose-plan"}
    if isinstance(node, ExchangeNode):
        return {
            "kind": "exchange",
            "mode": node.mode.value,
            "driver": node.driver,
            "merge_key": (
                node.merge_key.qualified_name if node.merge_key is not None else None
            ),
            "partition_keys": [
                {"relation": relation, "attribute": attribute.qualified_name}
                for relation, attribute in node.partition_keys
            ],
        }
    raise PlanError(f"cannot serialize unknown node type {type(node).__name__}")


def _decode_node(
    entry: dict,
    inputs: tuple[PlanNode, ...],
    ctx: CostContext,
    parameters: ParameterSpace,
) -> PlanNode:
    kind = entry["kind"]
    if kind == "file-scan":
        return FileScanNode(ctx, entry["relation"])
    if kind == "btree-scan":
        key = ctx.catalog.attribute(entry["key"])
        predicate = _decode_selection(entry["predicate"], ctx, parameters)
        return BtreeScanNode(ctx, entry["relation"], key, predicate)
    if kind == "filter":
        predicate = _decode_selection(entry["predicate"], ctx, parameters)
        assert predicate is not None
        return FilterNode(ctx, inputs[0], predicate)
    if kind == "hash-join":
        return HashJoinNode(
            ctx, inputs[0], inputs[1], _decode_joins(entry["predicates"], ctx)
        )
    if kind == "merge-join":
        return MergeJoinNode(
            ctx, inputs[0], inputs[1], _decode_joins(entry["predicates"], ctx)
        )
    if kind == "nested-loops-join":
        return NestedLoopsJoinNode(
            ctx, inputs[0], inputs[1], _decode_joins(entry["predicates"], ctx)
        )
    if kind == "index-join":
        return IndexJoinNode(
            ctx,
            inputs[0],
            entry["inner_relation"],
            ctx.catalog.attribute(entry["inner_key"]),
            _decode_joins(entry["predicates"], ctx),
        )
    if kind == "semi-join":
        return SemiJoinNode(
            ctx,
            inputs[0],
            inputs[1],
            ctx.catalog.attribute(entry["outer_attr"]),
            ctx.catalog.attribute(entry["inner_attr"]),
        )
    if kind == "left-outer-join":
        return LeftOuterJoinNode(
            ctx,
            inputs[0],
            inputs[1],
            ctx.catalog.attribute(entry["left_attr"]),
            ctx.catalog.attribute(entry["right_attr"]),
            right_unique=entry["right_unique"],
        )
    if kind == "union-all":
        return UnionAllNode(ctx, inputs)
    if kind == "distinct":
        return DistinctNode(
            ctx,
            inputs[0],
            tuple(ctx.catalog.attribute(name) for name in entry["attributes"]),
        )
    if kind == "sort":
        names = entry.get("keys") or [entry["key"]]
        return SortNode(
            ctx,
            inputs[0],
            tuple(ctx.catalog.attribute(name) for name in names),
        )
    if kind == "partial-sort":
        return PartialSortNode(
            ctx,
            inputs[0],
            tuple(ctx.catalog.attribute(name) for name in entry["keys"]),
            entry["prefix_len"],
        )
    if kind == "top-n":
        return TopNNode(
            ctx, inputs[0], ctx.catalog.attribute(entry["key"]), entry["limit"]
        )
    if kind == "project":
        return ProjectNode(
            ctx,
            inputs[0],
            tuple(ctx.catalog.attribute(name) for name in entry["attributes"]),
        )
    if kind in ("hash-aggregate", "sorted-aggregate"):
        from repro.logical.aggregates import (
            AggregateExpr,
            AggregateFunction,
            AggregateSpec,
        )

        spec = AggregateSpec(
            group_by=tuple(
                ctx.catalog.attribute(name) for name in entry["group_by"]
            ),
            aggregates=tuple(
                AggregateExpr(
                    AggregateFunction(item["function"]),
                    (
                        ctx.catalog.attribute(item["attribute"])
                        if item["attribute"]
                        else None
                    ),
                )
                for item in entry["aggregates"]
            ),
        )
        node_type = (
            HashAggregateNode if kind == "hash-aggregate" else SortedAggregateNode
        )
        return node_type(ctx, inputs[0], spec)
    if kind == "choose-plan":
        return ChoosePlanNode(ctx, inputs)
    if kind == "exchange":
        merge_key = (
            ctx.catalog.attribute(entry["merge_key"])
            if entry["merge_key"] is not None
            else None
        )
        return ExchangeNode(
            ctx,
            inputs[0],
            ExchangeMode(entry["mode"]),
            driver=entry["driver"],
            merge_key=merge_key,
            partition_keys=tuple(
                (item["relation"], ctx.catalog.attribute(item["attribute"]))
                for item in entry["partition_keys"]
            ),
        )
    raise PlanError(f"cannot deserialize unknown node kind {kind!r}")


def _encode_selection(predicate: SelectionPredicate | None) -> dict | None:
    if predicate is None:
        return None
    if isinstance(predicate.operand, HostVariable):
        operand: dict = {
            "host": predicate.operand.name,
            "parameter": predicate.operand.selectivity_parameter,
        }
    else:
        operand = {"literal": predicate.operand.value}
    return {
        "attribute": predicate.attribute.qualified_name,
        "op": predicate.op.value,
        "operand": operand,
    }


def _decode_selection(
    data: dict | None, ctx: CostContext, parameters: ParameterSpace
) -> SelectionPredicate | None:
    del parameters  # host variables carry their parameter name directly
    if data is None:
        return None
    operand_data = data["operand"]
    if "host" in operand_data:
        operand: Literal | HostVariable = HostVariable(
            name=operand_data["host"],
            selectivity_parameter=operand_data["parameter"],
        )
    else:
        operand = Literal(operand_data["literal"])
    return SelectionPredicate(
        attribute=ctx.catalog.attribute(data["attribute"]),
        op=CompareOp(data["op"]),
        operand=operand,
    )


def _encode_joins(predicates: tuple[JoinPredicate, ...]) -> list[dict]:
    return [
        {"left": p.left.qualified_name, "right": p.right.qualified_name}
        for p in predicates
    ]


def _decode_joins(data: list[dict], ctx: CostContext) -> tuple[JoinPredicate, ...]:
    return tuple(
        JoinPredicate(
            left=ctx.catalog.attribute(entry["left"]),
            right=ctx.catalog.attribute(entry["right"]),
        )
        for entry in data
    )
