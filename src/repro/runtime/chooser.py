"""The choose-plan decision procedure (Section 4).

The paper rejects inverted cost functions in favour of the simple, general
mechanism implemented here: at start-up time, with all parameters bound,
**re-evaluate the cost functions** of every subplan bottom-up over the plan
DAG — each shared subplan exactly once — and let every choose-plan operator
activate its cheapest alternative.  Under a fully bound environment all
cost intervals collapse to points, so the minima are well defined; the
incomparability that forced the choose-plan into the plan has vanished.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.catalog.schema import Attribute
from repro.cost.context import CostContext
from repro.errors import BindingError
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.parallel.plan import ExchangeNode
from repro.physical.plan import ChoosePlanNode, PlanNode, iter_plan_nodes
from repro.util.interval import Interval


@dataclass(frozen=True)
class ActivationDecision:
    """Outcome of resolving one plan under a bound environment.

    ``execution_cost`` is the predicted cost (seconds) of the chosen
    effective plan.  ``choices`` maps each choose-plan node (by identity) to
    the alternative it activated.  ``cost_evaluations`` counts cost-function
    evaluations — one per distinct DAG node, demonstrating the value of
    subplan sharing.  ``cpu_seconds`` is measured wall-clock time of the
    decision procedure itself.
    """

    execution_cost: float
    choices: dict[int, PlanNode]
    cost_evaluations: int
    cpu_seconds: float

    @property
    def decision_count(self) -> int:
        """Number of choose-plan decisions evaluated."""
        return len(self.choices)

    def as_dict(self) -> dict:
        """JSON-ready summary — the serialization path shared by harness
        reports, metrics snapshots, and trace events.

        ``choices`` becomes the list of chosen alternatives' labels in
        decision order (node identities are process-local and meaningless
        outside this run).
        """
        return {
            "execution_cost": self.execution_cost,
            "decision_count": self.decision_count,
            "cost_evaluations": self.cost_evaluations,
            "cpu_seconds": self.cpu_seconds,
            "choices": [chosen.label for chosen in self.choices.values()],
        }


def resolve_plan(plan: PlanNode, ctx: CostContext) -> ActivationDecision:
    """Resolve every choose-plan decision in ``plan`` under ``ctx``.

    ``ctx.env`` must be fully bound.  Works equally on static plans (no
    decisions; the result is simply the plan's re-estimated cost, which the
    scenario accounting uses as the static plan's per-invocation execution
    time).
    """
    if not ctx.env.fully_bound:
        raise BindingError(
            "choose-plan decisions require a fully bound environment; "
            f"unbound: {ctx.env.uncertain_names}"
        )
    tracer = get_tracer()
    started = time.perf_counter()
    # (output cardinality, total cost, order) per distinct node, bottom-up.
    table: dict[int, tuple[Interval, Interval, Attribute | None]] = {}
    choices: dict[int, PlanNode] = {}
    evaluations = 0

    for node in iter_plan_nodes(plan):
        evaluations += 1
        if isinstance(node, ChoosePlanNode):
            best: PlanNode | None = None
            best_entry: tuple[Interval, Interval, Attribute | None] | None = None
            tie = False
            # Deterministic tie-break: the strict `<` keeps the *first*
            # alternative (in the optimizer's emission order) whenever two
            # re-evaluated costs are exactly equal.  This preference is
            # documented behaviour so g_i = d_i comparisons cannot flake
            # on equal-cost plans; ties are additionally surfaced as
            # `choose.tie` trace events.
            for alternative in node.alternatives:
                entry = table[id(alternative)]
                if best_entry is None or entry[1].low < best_entry[1].low:
                    best, best_entry = alternative, entry
                elif entry[1].low == best_entry[1].low:
                    tie = True
            assert best is not None and best_entry is not None
            choices[id(node)] = best
            if tracer.enabled:
                alternatives = [
                    {
                        "plan": alternative.label,
                        "cost": table[id(alternative)][1].low,
                    }
                    for alternative in node.alternatives
                ]
                tracer.event(
                    "choose.decision",
                    chosen=best.label,
                    chosen_index=node.alternatives.index(best),
                    alternatives=alternatives,
                    tie=tie,
                )
                if tie:
                    tracer.event(
                        "choose.tie",
                        chosen=best.label,
                        cost=best_entry[1].low,
                    )
            # The decision's own effort belongs to start-up time (it is
            # measured in cpu_seconds), not to the chosen plan's execution
            # cost — keeping it out preserves the paper's g_i = d_i
            # invariant against run-time optimization.
            table[id(node)] = best_entry
        elif isinstance(node, ExchangeNode):
            # An exchange's total cost is a function of its child's *total*
            # cost (the whole subtree's work is what gets divided across
            # workers), which the generic recompute path cannot see.
            (child_entry,) = [table[id(child)] for child in node.inputs]
            table[id(node)] = node.bound_total(ctx, child_entry[0], child_entry[1])
        else:
            input_entries = [table[id(child)] for child in node.inputs]
            input_cards = [entry[0] for entry in input_entries]
            input_orders = [entry[2] for entry in input_entries]
            card, self_cost, order = node.recompute(ctx, input_cards, input_orders)
            total = self_cost
            for entry in input_entries:
                total = total + entry[1]
            table[id(node)] = (card, total, order)

    total_cost = table[id(plan)][1]
    elapsed = time.perf_counter() - started
    decision = ActivationDecision(
        execution_cost=total_cost.low,
        choices=choices,
        cost_evaluations=evaluations,
        cpu_seconds=elapsed,
    )
    metrics = get_metrics()
    metrics.counter("chooser.resolutions").inc()
    metrics.counter("chooser.decisions").inc(decision.decision_count)
    metrics.counter("chooser.cost_evaluations").inc(evaluations)
    metrics.timer("chooser.time").observe(elapsed)
    if tracer.enabled:
        tracer.event("chooser.resolved", **decision.as_dict())
    return decision


def effective_plan_nodes(plan: PlanNode, choices: dict[int, PlanNode]) -> list[PlanNode]:
    """The distinct nodes actually reachable after the given decisions.

    Choose-plan nodes are traversed only through their chosen alternative;
    this is the "components that have been used" notion of the Section 4
    shrinking heuristic.
    """
    seen: set[int] = set()
    result: list[PlanNode] = []

    def walk(node: PlanNode) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, ChoosePlanNode):
            walk(choices[id(node)])
        else:
            for child in node.inputs:
                walk(child)
        result.append(node)

    walk(plan)
    return result
