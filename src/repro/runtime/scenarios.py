"""Figure 3's optimization scenarios and the break-even analysis.

The paper compares three lifecycles over N invocations of one query:

* **static**:      a + N×b + Σcᵢ  — optimize once, activate + run each time,
* **run-time**:    N×a + Σdᵢ      — re-optimize at every invocation,
* **dynamic**:     e + N×f + Σgᵢ  — optimize once into a dynamic plan,
  decide + run each time.

Execution times (cᵢ, dᵢ, gᵢ) are the optimizer's *predicted* costs at the
true bindings (the paper's footnote 4 methodology).  Optimization and
decision CPU effort is accounted in one of two ways, selected by
``accounting``:

* ``"modeled"`` (default) — counted work × the cost model's calibration
  constants (candidates costed for optimization, cost evaluations for
  choose-plan decisions), deterministic and commensurable with the analytic
  I/O and execution model;
* ``"measured"`` — raw wall-clock seconds on this machine, matching the
  paper's "truly measured" methodology but mixing modern-CPU seconds into a
  1994-calibrated I/O model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.logical.query import QueryGraph
from repro.optimizer.optimizer import (
    OptimizationMode,
    optimize_query,
)
from repro.runtime.chooser import resolve_plan


@dataclass(frozen=True)
class InvocationOutcome:
    """Run-time effort of one query invocation, in model seconds."""

    optimization_seconds: float  # re-optimization (run-time scenario only)
    startup_seconds: float  # activation I/O + decision CPU
    execution_seconds: float  # predicted execution cost at true bindings

    @property
    def total_seconds(self) -> float:
        """Everything this invocation spent at run time."""
        return self.optimization_seconds + self.startup_seconds + self.execution_seconds


@dataclass(frozen=True)
class ScenarioRun:
    """One scenario evaluated over a shared sequence of bindings."""

    name: str
    compile_time_seconds: float  # a or e (0 for pure run-time optimization)
    plan_node_count: int
    invocations: tuple[InvocationOutcome, ...]

    @property
    def average_execution_seconds(self) -> float:
        """Mean of cᵢ / dᵢ / gᵢ over all invocations."""
        return _mean([i.execution_seconds for i in self.invocations])

    @property
    def average_startup_seconds(self) -> float:
        """Mean activation effort (b or f; 0 for run-time optimization)."""
        return _mean([i.startup_seconds for i in self.invocations])

    @property
    def average_optimization_seconds(self) -> float:
        """Mean per-invocation optimization effort (run-time scenario)."""
        return _mean([i.optimization_seconds for i in self.invocations])

    @property
    def average_runtime_seconds(self) -> float:
        """Mean total run-time effort per invocation."""
        return _mean([i.total_seconds for i in self.invocations])

    def total_effort(self, n: int | None = None) -> float:
        """Compile-time + run-time effort over the first ``n`` invocations."""
        if n is None:
            n = len(self.invocations)
        if n > len(self.invocations):
            raise ValueError(
                f"scenario recorded {len(self.invocations)} invocations, "
                f"{n} requested"
            )
        return self.compile_time_seconds + sum(
            i.total_seconds for i in self.invocations[:n]
        )


def run_static_scenario(
    query: QueryGraph,
    catalog: Catalog,
    bindings: Sequence[Mapping[str, float]],
    model: CostModel | None = None,
    accounting: str = "modeled",
) -> ScenarioRun:
    """Traditional lifecycle: one static plan, executed at every binding."""
    model = model if model is not None else CostModel()
    result = optimize_query(query, catalog, model, mode=OptimizationMode.STATIC)
    nodes = result.plan_node_count
    activation = model.activation_time(nodes)
    invocations = []
    for binding in bindings:
        env = query.parameters.bind(binding)
        decision = resolve_plan(result.plan, result.ctx.with_env(env))
        invocations.append(
            InvocationOutcome(
                optimization_seconds=0.0,
                startup_seconds=activation,
                execution_seconds=decision.execution_cost,
            )
        )
    return ScenarioRun(
        name="static",
        compile_time_seconds=_optimization_seconds(result, accounting),
        plan_node_count=nodes,
        invocations=tuple(invocations),
    )


def run_runtime_scenario(
    query: QueryGraph,
    catalog: Catalog,
    bindings: Sequence[Mapping[str, float]],
    model: CostModel | None = None,
    accounting: str = "modeled",
) -> ScenarioRun:
    """Brute-force lifecycle: re-optimize from scratch at every invocation.

    No activation I/O is charged: the paper notes the plan passes straight
    from the optimizer to the execution engine.
    """
    model = model if model is not None else CostModel()
    invocations = []
    nodes = 0
    for binding in bindings:
        result = optimize_query(
            query, catalog, model, mode=OptimizationMode.RUN_TIME, binding=binding
        )
        nodes = max(nodes, result.plan_node_count)
        invocations.append(
            InvocationOutcome(
                optimization_seconds=_optimization_seconds(result, accounting),
                startup_seconds=0.0,
                execution_seconds=result.plan.cost.low,
            )
        )
    return ScenarioRun(
        name="run-time optimization",
        compile_time_seconds=0.0,
        plan_node_count=nodes,
        invocations=tuple(invocations),
    )


def run_dynamic_scenario(
    query: QueryGraph,
    catalog: Catalog,
    bindings: Sequence[Mapping[str, float]],
    model: CostModel | None = None,
    accounting: str = "modeled",
) -> ScenarioRun:
    """Dynamic-plan lifecycle: one dynamic plan, decided at each start-up."""
    model = model if model is not None else CostModel()
    result = optimize_query(query, catalog, model, mode=OptimizationMode.DYNAMIC)
    nodes = result.plan_node_count
    activation_io = model.activation_time(nodes)
    invocations = []
    for binding in bindings:
        env = query.parameters.bind(binding)
        decision = resolve_plan(result.plan, result.ctx.with_env(env))
        if accounting == "modeled":
            decision_seconds = decision.cost_evaluations * model.startup_eval_seconds
        else:
            decision_seconds = decision.cpu_seconds
        invocations.append(
            InvocationOutcome(
                optimization_seconds=0.0,
                startup_seconds=activation_io + decision_seconds,
                execution_seconds=decision.execution_cost,
            )
        )
    return ScenarioRun(
        name="dynamic plan",
        compile_time_seconds=_optimization_seconds(result, accounting),
        plan_node_count=nodes,
        invocations=tuple(invocations),
    )


def _optimization_seconds(result, accounting: str) -> float:
    """Pick the accounting basis for one optimization run."""
    if accounting == "modeled":
        return result.modeled_optimization_seconds
    if accounting == "measured":
        return result.optimization_seconds
    raise ValueError(f"unknown accounting mode {accounting!r}")


# ----------------------------------------------------------------------
# Break-even analysis (Section 6)
# ----------------------------------------------------------------------
def break_even_vs_static(dynamic: ScenarioRun, static: ScenarioRun) -> int | None:
    """Smallest N with e + N×(f+ḡ) < a + N×(b+c̄), or None if never.

    The paper measured this break-even point to be 1 in all experiments:
    dynamic plans pay off even for a single invocation when bindings are
    unknown at compile time.
    """
    extra_compile = dynamic.compile_time_seconds - static.compile_time_seconds
    per_invocation_gain = (
        static.average_startup_seconds + static.average_execution_seconds
    ) - (dynamic.average_startup_seconds + dynamic.average_execution_seconds)
    if per_invocation_gain <= 0:
        return None
    return max(1, math.ceil(extra_compile / per_invocation_gain))


def break_even_vs_runtime(dynamic: ScenarioRun, runtime: ScenarioRun) -> int | None:
    """Smallest N with e + N×(f+ḡ) ≤ N×(ā+d̄), or None if never.

    With gᵢ = dᵢ (dynamic plans choose the same plans run-time optimization
    would), this reduces to the paper's ⌈e / (ā − f)⌉; measured break-even
    points were 2–4.
    """
    per_invocation_gain = (
        runtime.average_optimization_seconds + runtime.average_execution_seconds
    ) - (dynamic.average_startup_seconds + dynamic.average_execution_seconds)
    if per_invocation_gain <= 0:
        return None
    return max(1, math.ceil(dynamic.compile_time_seconds / per_invocation_gain))


def _mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
