"""Parameter descriptors and binding environments.

A :class:`Parameter` describes one uncertain quantity: the range of values
it may take at run time (its *domain*) and the single value a traditional
optimizer would assume (its *expected* value; the paper uses 0.05 for
selection selectivities and 64 pages for memory).

An :class:`Environment` assigns each parameter an interval.  Three
environments matter:

* **static** — every parameter at its expected point value; this makes the
  optimizer behave exactly like a traditional one,
* **dynamic** — every parameter at its full domain interval; overlapping
  plan costs then become incomparable and choose-plan operators appear,
* **bound** — every parameter at its actual run-time point value; used by
  choose-plan decision procedures at start-up and by run-time optimization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import BindingError
from repro.util.interval import Interval


class ParameterKind(enum.Enum):
    """What a parameter measures; the cost model dispatches on this."""

    SELECTIVITY = "selectivity"
    MEMORY_PAGES = "memory_pages"
    CARDINALITY = "cardinality"
    DEGREE_OF_PARALLELISM = "degree_of_parallelism"


@dataclass(frozen=True, slots=True)
class Parameter:
    """One uncertain cost-model parameter."""

    name: str
    kind: ParameterKind
    domain: Interval
    expected: float

    def __post_init__(self) -> None:
        if not self.domain.contains(self.expected):
            raise BindingError(
                f"expected value {self.expected} of parameter {self.name} "
                f"lies outside its domain {self.domain}"
            )
        if self.kind is ParameterKind.SELECTIVITY and not (
            0.0 <= self.domain.low and self.domain.high <= 1.0
        ):
            raise BindingError(
                f"selectivity parameter {self.name} has domain {self.domain} "
                "outside [0, 1]"
            )
        if (
            self.kind is ParameterKind.DEGREE_OF_PARALLELISM
            and self.domain.low < 1.0
        ):
            raise BindingError(
                f"degree-of-parallelism parameter {self.name} has domain "
                f"{self.domain} below 1"
            )


class ParameterSpace:
    """The set of parameters relevant to one query.

    The space is the compile-time contract between the query and the
    optimizer: it fixes *which* quantities may vary and over what ranges.
    """

    def __init__(self, parameters: Iterable[Parameter] = ()) -> None:
        self._parameters: dict[str, Parameter] = {}
        for parameter in parameters:
            self.add(parameter)

    def add(self, parameter: Parameter) -> Parameter:
        """Register a parameter; names must be unique."""
        if parameter.name in self._parameters:
            raise BindingError(f"parameter {parameter.name} already declared")
        self._parameters[parameter.name] = parameter
        return parameter

    def add_selectivity(
        self, name: str, low: float = 0.0, high: float = 1.0, expected: float = 0.05
    ) -> Parameter:
        """Shorthand for an unbound-predicate selectivity parameter."""
        return self.add(
            Parameter(
                name=name,
                kind=ParameterKind.SELECTIVITY,
                domain=Interval.of(low, high),
                expected=expected,
            )
        )

    def add_memory(
        self, name: str = "memory", low: int = 16, high: int = 112, expected: int = 64
    ) -> Parameter:
        """Shorthand for an uncertain available-memory parameter (pages)."""
        return self.add(
            Parameter(
                name=name,
                kind=ParameterKind.MEMORY_PAGES,
                domain=Interval.of(low, high),
                expected=float(expected),
            )
        )

    def add_dop(
        self, name: str = "dop", low: int = 1, high: int = 8, expected: int = 1
    ) -> Parameter:
        """Shorthand for an uncertain degree-of-parallelism parameter.

        The expected value defaults to 1: a traditional (static) optimizer
        assumes serial execution, and queries stay serial unless a run-time
        DOP is actually bound.
        """
        return self.add(
            Parameter(
                name=name,
                kind=ParameterKind.DEGREE_OF_PARALLELISM,
                domain=Interval.of(float(low), float(high)),
                expected=float(expected),
            )
        )

    def __contains__(self, name: str) -> bool:
        return name in self._parameters

    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self):
        return iter(self._parameters.values())

    def get(self, name: str) -> Parameter:
        """Look up a parameter by name."""
        try:
            return self._parameters[name]
        except KeyError:
            raise BindingError(f"unknown parameter {name}") from None

    @property
    def names(self) -> list[str]:
        """Parameter names in declaration order."""
        return list(self._parameters)

    # ------------------------------------------------------------------
    # Environments
    # ------------------------------------------------------------------
    def static_environment(self) -> "Environment":
        """Every parameter fixed at its expected value (traditional mode)."""
        return Environment(
            self,
            {p.name: Interval.point(p.expected) for p in self},
            fully_bound=True,
        )

    def dynamic_environment(self) -> "Environment":
        """Every parameter at its full domain (dynamic-plan mode)."""
        return Environment(
            self,
            {p.name: p.domain for p in self},
            fully_bound=all(p.domain.is_point for p in self),
        )

    def bind(self, values: Mapping[str, float]) -> "Environment":
        """Instantiate all parameters with actual run-time values.

        Raises :class:`BindingError` when a parameter is missing or a value
        falls outside its declared domain.
        """
        intervals: dict[str, Interval] = {}
        for parameter in self:
            if parameter.name not in values:
                raise BindingError(
                    f"no run-time value supplied for parameter {parameter.name}"
                )
            value = float(values[parameter.name])
            if not parameter.domain.contains(value):
                raise BindingError(
                    f"value {value} for parameter {parameter.name} outside "
                    f"domain {parameter.domain}"
                )
            intervals[parameter.name] = Interval.point(value)
        extra = set(values) - set(self.names)
        if extra:
            raise BindingError(f"values supplied for unknown parameters: {extra}")
        return Environment(self, intervals, fully_bound=True)


class Environment:
    """An assignment of intervals to every parameter of a space.

    Immutable from the caller's perspective; create new environments through
    :class:`ParameterSpace` factories.
    """

    def __init__(
        self,
        space: ParameterSpace,
        intervals: Mapping[str, Interval],
        fully_bound: bool,
    ) -> None:
        self._space = space
        self._intervals = dict(intervals)
        self._fully_bound = fully_bound

    @property
    def space(self) -> ParameterSpace:
        """The parameter space this environment instantiates."""
        return self._space

    @property
    def fully_bound(self) -> bool:
        """True when every parameter is a point (no uncertainty left)."""
        return self._fully_bound

    def interval(self, name: str) -> Interval:
        """The interval assigned to parameter ``name``."""
        try:
            return self._intervals[name]
        except KeyError:
            raise BindingError(f"parameter {name} not in environment") from None

    def value(self, name: str) -> float:
        """The point value of ``name``; requires the parameter be bound."""
        interval = self.interval(name)
        if not interval.is_point:
            raise BindingError(
                f"parameter {name} is not bound to a point value ({interval})"
            )
        return interval.low

    @property
    def uncertain_names(self) -> list[str]:
        """Names of parameters still carrying non-point intervals."""
        return [n for n, iv in self._intervals.items() if not iv.is_point]

    def __repr__(self) -> str:
        pairs = ", ".join(f"{n}={iv}" for n, iv in self._intervals.items())
        return f"Environment({pairs})"
