"""Uncertain cost-model parameters and run-time bindings.

This package models the paper's central notion: cost-model parameters whose
values are unknown at compile time (host-variable selectivities, available
memory) but become known at start-up time.  An :class:`Environment` maps
parameter names to intervals; compile-time environments carry wide
intervals, start-up-time environments carry points.
"""

from repro.params.parameter import (
    Environment,
    Parameter,
    ParameterKind,
    ParameterSpace,
)

__all__ = ["Environment", "Parameter", "ParameterKind", "ParameterSpace"]
