"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so applications
can catch everything from this package with one handler while still
distinguishing catalog, optimization, binding, parsing, and execution
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """Unknown relation/attribute/index, or inconsistent catalog metadata."""


class BindingError(ReproError):
    """A run-time binding is missing, out of range, or of the wrong kind."""


class OptimizationError(ReproError):
    """The search engine could not produce a plan (e.g. no implementation
    rule applies, or an internal invariant was violated)."""


class PlanError(ReproError):
    """A physical plan is structurally invalid (bad arity, dangling input,
    or an operation applied to the wrong node kind)."""


class ParseError(ReproError):
    """The SQL front end rejected the query text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class ExecutionError(ReproError):
    """The execution engine failed while evaluating a physical plan."""


class ServiceError(ReproError):
    """The query service could not accept or complete an invocation."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected the invocation: the queue is full.

    Backpressure signal — callers should retry later or shed load."""


class ServiceClosedError(ServiceError):
    """The query service is shut down (or shutting down) and accepts no
    new invocations."""
