"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so applications
can catch everything from this package with one handler while still
distinguishing catalog, optimization, binding, parsing, and execution
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """Unknown relation/attribute/index, or inconsistent catalog metadata."""


class BindingError(ReproError):
    """A run-time binding is missing, out of range, or of the wrong kind."""


class OptimizationError(ReproError):
    """The search engine could not produce a plan (e.g. no implementation
    rule applies, or an internal invariant was violated)."""


class PlanError(ReproError):
    """A physical plan is structurally invalid (bad arity, dangling input,
    or an operation applied to the wrong node kind)."""


class ParseError(ReproError):
    """The SQL front end rejected the query text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class ExecutionError(ReproError):
    """The execution engine failed while evaluating a physical plan."""


class ServiceError(ReproError):
    """The query service could not accept or complete an invocation."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected the invocation: the queue is full.

    Backpressure signal — callers should retry later or shed load.
    ``retry_after_hint`` is the service's machine-readable estimate (in
    seconds) of when capacity should free up — queue depth times the
    recent per-request latency, divided across the workers —
    and ``queue_depth`` is the number of requests pending at rejection
    time.  Both are carried on the exception so clients and load drivers
    can implement informed backoff instead of parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after_hint: float = 0.0,
        queue_depth: int = 0,
    ) -> None:
        super().__init__(message)
        self.retry_after_hint = retry_after_hint
        self.queue_depth = queue_depth

    def as_dict(self) -> dict[str, object]:
        """Machine-readable shed-load record (CLI and benchmark reports)."""
        return {
            "reason": str(self),
            "retry_after_hint": self.retry_after_hint,
            "queue_depth": self.queue_depth,
        }


class ServiceClosedError(ServiceError):
    """The query service is shut down (or shutting down) and accepts no
    new invocations."""


class ShardFailedError(ServiceError):
    """A shard process died or stopped responding mid-request.

    Raised by the scatter/gather coordinator after its retry-once policy
    is exhausted: the failed shard owns a horizontal partition of the
    data, so its loss can never be papered over with partial results.
    ``shard_id`` names the failed shard; ``retried`` records whether a
    restart-and-resend was already attempted for the request.
    """

    def __init__(
        self, message: str, *, shard_id: int = -1, retried: bool = False
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.retried = retried
