"""Whole-pipeline codegen fusion (``execution_mode="fused"``).

The vectorized executor still pays one generator resumption plus one
compiled-closure call per operator per batch, one intermediate row list
per operator, and one closure call per row inside joins.  Fusion
eliminates that interior dispatch: the activated plan (choose-plans
resolved) is cut at pipeline breakers — sorts, aggregations, exchanges,
merge/nested-loops joins, distinct, union, Top-N, anything that reorders
or materializes — and every maximal chain of *streaming* operators above
a cut point (filter, project, hash-join probe, semi-join outer,
left-outer-join left, index-join outer) is rendered to Python source as
ONE generated function per pipeline, ``compile()``d once per plan open.

The generated body is a **single list comprehension** per fusable run,
not one pass per operator: the row flowing through the chain is tracked
symbolically (as expressions over the scan variable and the join-match
variables), so filters inline as ``if`` clauses, projections collapse
into the comprehension's head tuple literal, join keys inline as tuple
expressions (bare values for single-column joins), and hash probes
become nested ``for`` clauses over ``get(key, _EMPTY)`` — no
intermediate lists, no per-operator tuple materialization, no closure
calls, appends at C speed.  A left-outer join (whose miss branch pads
with NULLs) splits the loop: it renders as its own batch-at-a-time pass
between two comprehensions.  When the pipeline bottoms out at a bare
heap scan, the scan fuses too: the generated loop iterates raw
buffer-pool page chunks (``for r in _chain(_pages)``) with the stock
scan's exact flush/chunk/read behavior, skipping batch assembly.
Run-time state (predicate operands, hash tables, b-tree handles) binds
through an ``env`` dict, so the generated source is a pure function of
plan structure.

Generated code is cached process-wide, keyed by the activated chain's
plan signatures (:func:`repro.obs.telemetry.plan_signature`): a serving
layer replaying a hot cached plan skips rendering and compilation
entirely.  Hits and misses are counted as ``codegen.cache_hits`` /
``codegen.cache_misses`` in the metrics registry (and therefore appear
in the OpenMetrics export).

Byte-identity: every step processes rows independently and in order, so
the single-pass loop emits exactly the row sequence the per-operator
cascade emits — same row order, same values — and the concatenated row
stream is identical to batch mode (which is itself byte-identical to
row mode).  Two cases leave the generated code path:

* A hash join whose build side exceeds the memory budget Grace-spills
  in batch mode, which groups output by partition.  The build side is
  drained at open either way, so the spill is detected before any
  probe row flows and the whole pipeline falls back to the plain batch
  operator chain, reusing the already-drained build rows (and the
  already-built semi-join sets / outer-join tables) — no re-scan, no
  double ledger observation.
* EXPLAIN ANALYZE metering and adaptive-execution guards wrap every
  operator individually; the executor falls back to plain batch
  construction for those runs (see :func:`repro.executor.executor.
  execute_plan`), keeping per-operator attribution exact.

Drain order matches batch mode: each blocking side (hash build,
semi-join inner, outer-join right) is consumed top-down, fully, before
the next side starts and before the pipeline source is pulled — the
same order the nested batch generators produce, so ledger observations
and simulated I/O totals line up.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Callable, Iterator, Mapping

from itertools import chain

from repro.errors import BindingError, ExecutionError

from repro.executor.batch import (
    BatchFileScanIterator,
    BatchHashJoinIterator,
    BatchIterator,
    MaterializedBatchIterator,
    flatten,
)
from repro.executor.compiled import (
    compile_filter,
    compile_key,
    resolve_operand,
)
from repro.executor.database import Database
from repro.executor.iterators import (
    _inner_side,
    _join_key_positions,
    _outer_side,
)
from repro.executor.tuples import Row, RowBatch, RowSchema
from repro.logical.predicates import CompareOp
from repro.obs.metrics import get_metrics
from repro.obs.telemetry import plan_signature
from repro.physical.plan import (
    FilterNode,
    HashJoinNode,
    IndexJoinNode,
    LeftOuterJoinNode,
    PlanNode,
    ProjectNode,
    SemiJoinNode,
    leaf_access_info,
)

ValueBindings = Mapping[str, object]

#: node classes fusable as streaming steps (everything else is a cut
#: point: built as a regular batch iterator and used as the pipeline
#: source).
FUSIBLE_NODES = (
    FilterNode,
    ProjectNode,
    HashJoinNode,
    SemiJoinNode,
    LeftOuterJoinNode,
    IndexJoinNode,
)

_OP_SYMBOL = {
    CompareOp.EQ: "==",
    CompareOp.NE: "!=",
    CompareOp.LT: "<",
    CompareOp.LE: "<=",
    CompareOp.GT: ">",
    CompareOp.GE: ">=",
}

#: generated-source cache: cache key → (source text, compiled function).
_CODE_CACHE: dict[str, tuple[str, Callable]] = {}


def clear_code_cache() -> None:
    """Drop all cached generated pipelines (tests / cache-metric resets)."""
    _CODE_CACHE.clear()


# ----------------------------------------------------------------------
# Symbolic row tracking inside one fused loop
# ----------------------------------------------------------------------
class _RowExpr:
    """The row flowing through a fused loop, as source expressions.

    Tracked as a list of segments: ``("var", name, width)`` — the whole
    tuple currently bound to a loop variable — or ``("exprs", [...])`` —
    individual position expressions a projection selected.  Positional
    indexing resolves through the segments, so a projection never
    materializes an intermediate tuple: its positions collapse into
    whatever expression finally appends to the output.
    """

    __slots__ = ("segments",)

    def __init__(self, segments: list[tuple]) -> None:
        self.segments = segments

    @classmethod
    def var(cls, name: str, width: int) -> "_RowExpr":
        return cls([("var", name, width)])

    def index(self, position: int) -> str:
        """Source expression for one position of the current row."""
        for segment in self.segments:
            if segment[0] == "var":
                _, name, width = segment
                if position < width:
                    return f"{name}[{position}]"
                position -= width
            else:
                exprs = segment[1]
                if position < len(exprs):
                    return exprs[position]
                position -= len(exprs)
        raise ExecutionError(f"fused row position {position} out of range")

    def key(self, positions: tuple[int, ...]) -> str:
        """Always-a-tuple key expression over the current row (the
        1-tuple contract of :func:`repro.executor.compiled.row_shape`)."""
        items = ", ".join(self.index(p) for p in positions)
        if len(positions) == 1:
            return f"({items},)"
        return f"({items})"

    def project(self, positions: tuple[int, ...]) -> "_RowExpr":
        return _RowExpr([("exprs", [self.index(p) for p in positions])])

    def prepend_var(self, name: str, width: int) -> "_RowExpr":
        return _RowExpr([("var", name, width)] + self.segments)

    def append_var(self, name: str, width: int) -> "_RowExpr":
        return _RowExpr(self.segments + [("var", name, width)])

    def materialize(self) -> str:
        """Expression producing the output tuple for one row."""
        pieces = []
        for segment in self.segments:
            if segment[0] == "var":
                pieces.append(segment[1])
            else:
                exprs = segment[1]
                body = ", ".join(exprs)
                pieces.append(f"({body},)" if len(exprs) == 1 else f"({body})")
        return " + ".join(pieces)


class _CompCtx:
    """Mutable state while rendering one fused loop group.

    The group renders as a single list comprehension — appends run at
    C speed, with no method-call dispatch per row — so each step
    contributes ``for``/``if`` clauses and mutates the symbolic row;
    the head expression is materialized once all steps have run.
    """

    __slots__ = ("clauses", "row")

    def __init__(self, row: _RowExpr) -> None:
        self.clauses: list[str] = []
        self.row = row

    def emit(self, clause: str) -> None:
        self.clauses.append(clause)


# ----------------------------------------------------------------------
# Steps
# ----------------------------------------------------------------------
class _Step:
    """One fused streaming operator: codegen + open-time binding.

    ``render_loop`` emits the step's comprehension clauses (mutating
    the context's symbolic row); ``prepare`` drains any blocking side
    input and stores the run-time state ``bind`` later copies into
    ``env``; ``fallback`` rebuilds the equivalent plain batch operator
    over an input iterator, reusing the prepared state, for the spill
    path.  ``LOOP_FUSABLE = False`` steps (the left-outer join) render
    as their own batch-at-a-time pass via ``render_pass`` instead.
    """

    __slots__ = ("node", "in_schema", "out_schema")

    LOOP_FUSABLE = True

    def cache_token(self) -> str:
        raise NotImplementedError

    def env_names(self) -> tuple[str, ...]:
        return ()

    def render_loop(self, ctx: _CompCtx) -> None:
        raise NotImplementedError

    def render_pass(self, lines: list[str]) -> None:
        raise NotImplementedError

    def prepare(self) -> None:
        """Drain blocking side inputs (called top-down, in chain order)."""

    def spills(self) -> bool:
        return False

    def bind(self, env: dict) -> None:
        """Publish prepared run-time state under :meth:`env_names`."""

    def fallback(self, child: BatchIterator) -> BatchIterator:
        return _PreparedStepIterator(self, child)

    def apply(self, rows: list) -> list:
        """Stock per-batch algorithm, for the spill-path fallback."""
        raise NotImplementedError


class _FilterStep(_Step):
    __slots__ = ("position", "op", "value", "bound", "unbound_name", "_index")

    def __init__(
        self,
        node: FilterNode,
        in_schema: RowSchema,
        bindings: ValueBindings,
        index: int,
    ) -> None:
        self.node = node
        self.in_schema = in_schema
        self.out_schema = in_schema
        self.position = in_schema.position(node.predicate.attribute)
        self.op = node.predicate.op
        self.value, self.bound = resolve_operand(node.predicate, bindings)
        # Unbound host variable: defer the BindingError to the first row
        # that actually reaches this step, exactly as the interpreted
        # paths do (an input emptied below this step never raises).
        self.unbound_name = (
            None if self.bound else node.predicate.operand.name
        )
        self._index = index

    def cache_token(self) -> str:
        bound = "b" if self.bound else "u"
        return f"filter:{self.position}:{self.op.name}:{bound}"

    def env_names(self) -> tuple[str, ...]:
        if self.bound:
            return (f"_f{self._index}_v",)
        return (f"_f{self._index}_raise",)

    def render_loop(self, ctx: _CompCtx) -> None:
        i = self._index
        expr = ctx.row.index(self.position)
        if self.bound:
            symbol = _OP_SYMBOL[self.op]
            ctx.emit(f"if {expr} {symbol} _f{i}_v")
        else:
            ctx.emit(f"if _f{i}_raise()")

    def bind(self, env: dict) -> None:
        if self.bound:
            env[f"_f{self._index}_v"] = self.value
        else:
            name = self.unbound_name

            def raise_unbound() -> None:
                raise BindingError(f"host variable :{name} is unbound")

            env[f"_f{self._index}_raise"] = raise_unbound

    def apply(self, rows: list) -> list:
        if not self.bound:
            return compile_filter(self.node.predicate, self.in_schema, {})(
                rows
            )
        p, v = self.position, self.value
        op = self.op
        if op is CompareOp.EQ:
            return [r for r in rows if r[p] == v]
        if op is CompareOp.NE:
            return [r for r in rows if r[p] != v]
        if op is CompareOp.LT:
            return [r for r in rows if r[p] < v]
        if op is CompareOp.LE:
            return [r for r in rows if r[p] <= v]
        if op is CompareOp.GT:
            return [r for r in rows if r[p] > v]
        return [r for r in rows if r[p] >= v]


class _ProjectStep(_Step):
    __slots__ = ("positions",)

    def __init__(self, node: ProjectNode, in_schema: RowSchema) -> None:
        self.node = node
        self.in_schema = in_schema
        self.out_schema = RowSchema(tuple(node.attributes))
        self.positions = tuple(
            in_schema.position(a) for a in node.attributes
        )

    def cache_token(self) -> str:
        return "project:" + ",".join(map(str, self.positions))

    def render_loop(self, ctx: _CompCtx) -> None:
        # No clause: the selected positions fold into the symbolic row
        # and surface in whatever expression finally materializes it.
        ctx.row = ctx.row.project(self.positions)

    def apply(self, rows: list) -> list:
        getter = compile_key(self.positions)
        return [getter(r) for r in rows]


class _HashProbeStep(_Step):
    """Probe side of a hash join; the build side drains at prepare().

    The fused loop covers the in-memory case only.  ``spills()`` is
    true when the drained build exceeds the memory budget, which sends
    the whole pipeline down the plain-batch fallback where
    :class:`BatchHashJoinIterator` Grace-partitions the already-drained
    rows exactly as batch mode would.
    """

    __slots__ = (
        "build_iterator",
        "predicates",
        "db",
        "memory_pages",
        "batch_size",
        "build_positions",
        "probe_positions",
        "build_rows",
        "_index",
    )

    def __init__(
        self,
        node: HashJoinNode,
        in_schema: RowSchema,
        build_iterator: BatchIterator,
        db: Database,
        memory_pages: int,
        batch_size: int,
        index: int,
    ) -> None:
        self.node = node
        self.in_schema = in_schema
        self.out_schema = build_iterator.schema.concat(in_schema)
        self.build_iterator = build_iterator
        self.predicates = node.predicates
        self.db = db
        self.memory_pages = memory_pages
        self.batch_size = batch_size
        self.build_positions = _join_key_positions(
            build_iterator.schema, node.predicates, build_iterator.schema
        )
        self.probe_positions = _join_key_positions(
            in_schema, node.predicates, in_schema
        )
        self.build_rows: list[Row] | None = None
        self._index = index

    def cache_token(self) -> str:
        return "hashprobe:" + ",".join(map(str, self.probe_positions))

    def env_names(self) -> tuple[str, ...]:
        return (f"_h{self._index}_get",)

    def render_loop(self, ctx: _CompCtx) -> None:
        i = self._index
        if len(self.probe_positions) == 1:
            # Single-column joins hash the bare value: no per-row key
            # tuple.  Scalars group exactly as their 1-tuples would.
            key = ctx.row.index(self.probe_positions[0])
        else:
            key = ctx.row.key(self.probe_positions)
        # A miss iterates the shared empty tuple: no None branch.
        ctx.emit(f"for q{i} in _h{i}_get({key}, _EMPTY)")
        width = len(self.build_iterator.schema.attributes)
        ctx.row = ctx.row.prepend_var(f"q{i}", width)

    def prepare(self) -> None:
        rows: list[Row] = []
        for batch in self.build_iterator.batches():
            rows.extend(batch.rows)
        self.build_rows = rows

    def spills(self) -> bool:
        budget = max(1, self.memory_pages) * self.db.intermediate_rows_per_page
        return len(self.build_rows or ()) > budget

    def bind(self, env: dict) -> None:
        if len(self.build_positions) == 1:
            position = self.build_positions[0]
            key_of = lambda row: row[position]  # noqa: E731 - scalar key
        else:
            key_of = compile_key(self.build_positions)
        table: dict[object, list[Row]] = {}
        for row in self.build_rows or ():
            key = key_of(row)
            bucket = table.get(key)
            if bucket is None:
                table[key] = [row]
            else:
                bucket.append(row)
        env[f"_h{self._index}_get"] = table.get

    def fallback(self, child: BatchIterator) -> BatchIterator:
        # The drained build rows replay through a materialized iterator,
        # so the batch operator partitions/builds the identical row list
        # without touching the (exhausted) build subtree again.
        build = MaterializedBatchIterator(
            self.build_iterator.schema,
            tuple(self.build_rows or ()),
            self.batch_size,
        )
        return BatchHashJoinIterator(
            build, child, self.predicates, self.db, self.memory_pages,
            self.batch_size,
        )


class _SemiStep(_Step):
    __slots__ = ("inner_iterator", "inner_attr", "position", "matches", "_index")

    def __init__(
        self,
        node: SemiJoinNode,
        in_schema: RowSchema,
        inner_iterator: BatchIterator,
        index: int,
    ) -> None:
        self.node = node
        self.in_schema = in_schema
        self.out_schema = in_schema
        self.inner_iterator = inner_iterator
        self.inner_attr = node.inner_attr
        self.position = in_schema.position(node.outer_attr)
        self.matches: set | None = None
        self._index = index

    def cache_token(self) -> str:
        return f"semi:{self.position}"

    def env_names(self) -> tuple[str, ...]:
        return (f"_s{self._index}",)

    def render_loop(self, ctx: _CompCtx) -> None:
        expr = ctx.row.index(self.position)
        ctx.emit(f"if {expr} in _s{self._index}")

    def prepare(self) -> None:
        inner_position = self.inner_iterator.schema.position(self.inner_attr)
        self.matches = {
            row[inner_position] for row in flatten(self.inner_iterator)
        }

    def bind(self, env: dict) -> None:
        env[f"_s{self._index}"] = self.matches

    def apply(self, rows: list) -> list:
        matches = self.matches
        p = self.position
        return [r for r in rows if r[p] in matches]


class _OuterStep(_Step):
    """Left-outer hash join: a pass barrier inside the fused pipeline.

    The NULL-padded miss branch would force every downstream step to
    render twice (once per branch), so the step runs batch-at-a-time
    between two fused loops instead — the same algorithm as
    :class:`~repro.executor.batch.BatchLeftOuterHashJoinIterator`.
    """

    __slots__ = ("right_iterator", "right_attr", "position", "table", "padding", "_index")

    LOOP_FUSABLE = False

    def __init__(
        self,
        node: LeftOuterJoinNode,
        in_schema: RowSchema,
        right_iterator: BatchIterator,
        index: int,
    ) -> None:
        self.node = node
        self.in_schema = in_schema
        self.out_schema = in_schema.concat(right_iterator.schema)
        self.right_iterator = right_iterator
        self.right_attr = node.right_attr
        self.position = in_schema.position(node.left_attr)
        self.table: dict | None = None
        self.padding = (None,) * len(right_iterator.schema.attributes)
        self._index = index

    def cache_token(self) -> str:
        return f"outer:{self.position}:{len(self.padding)}"

    def env_names(self) -> tuple[str, ...]:
        return (f"_o{self._index}_get", f"_o{self._index}_pad")

    def render_pass(self, lines: list[str]) -> None:
        i = self._index
        lines.append("        out = []")
        lines.append("        _ap = out.append")
        lines.append("        for r in rows:")
        lines.append(f"            _m = _o{i}_get(r[{self.position}])")
        lines.append("            if _m:")
        lines.append("                for q in _m:")
        lines.append("                    _ap(r + q)")
        lines.append("            else:")
        lines.append(f"                _ap(r + _o{i}_pad)")
        lines.append("        rows = out")

    def prepare(self) -> None:
        right_position = self.right_iterator.schema.position(self.right_attr)
        table: dict[object, list[Row]] = {}
        for row in flatten(self.right_iterator):
            table.setdefault(row[right_position], []).append(row)
        self.table = table

    def bind(self, env: dict) -> None:
        env[f"_o{self._index}_get"] = self.table.get
        env[f"_o{self._index}_pad"] = self.padding

    def apply(self, rows: list) -> list:
        get = self.table.get
        p = self.position
        padding = self.padding
        out: list[Row] = []
        append = out.append
        for r in rows:
            matches = get(r[p])
            if matches:
                for q in matches:
                    append(r + q)
            else:
                append(r + padding)
        return out


class _IndexJoinStep(_Step):
    __slots__ = (
        "db",
        "inner_relation",
        "inner_key",
        "predicates",
        "inner_schema",
        "probe_position",
        "residuals",
        "_lookup",
        "_fetch",
        "_index",
    )

    def __init__(
        self,
        node: IndexJoinNode,
        in_schema: RowSchema,
        db: Database,
        index: int,
    ) -> None:
        self.node = node
        self.in_schema = in_schema
        self.db = db
        self.inner_relation = node.inner_relation
        self.inner_key = node.inner_key
        self.predicates = node.predicates
        inner_schema = RowSchema.from_schema(
            db.catalog.relation(node.inner_relation).schema
        )
        self.inner_schema = inner_schema
        self.out_schema = in_schema.concat(inner_schema)
        probe_predicate = next(
            p for p in node.predicates if node.inner_key in (p.left, p.right)
        )
        self.probe_position = in_schema.position(
            probe_predicate.left
            if probe_predicate.right == node.inner_key
            else probe_predicate.right
        )
        self.residuals = tuple(
            (
                in_schema.position(_outer_side(p, node.inner_relation)),
                inner_schema.position(_inner_side(p, node.inner_relation)),
            )
            for p in node.predicates
            if p is not probe_predicate
        )
        self._lookup = None
        self._fetch = None
        self._index = index

    def cache_token(self) -> str:
        residuals = ";".join(f"{a}={b}" for a, b in self.residuals)
        return f"indexjoin:{self.probe_position}:{residuals}"

    def env_names(self) -> tuple[str, ...]:
        return (f"_x{self._index}_lookup", f"_x{self._index}_fetch")

    def render_loop(self, ctx: _CompCtx) -> None:
        i = self._index
        probe = ctx.row.index(self.probe_position)
        # map() keeps the fetch lazy and in record-id order, exactly as
        # the interpreted per-rid loop performs it.
        ctx.emit(f"for q{i} in map(_x{i}_fetch, _x{i}_lookup({probe}))")
        if self.residuals:
            condition = " and ".join(
                f"{ctx.row.index(a)} == q{i}[{b}]" for a, b in self.residuals
            )
            ctx.emit(f"if {condition}")
        width = len(self.inner_schema.attributes)
        ctx.row = ctx.row.append_var(f"q{i}", width)

    def prepare(self) -> None:
        self._lookup = self.db.btree_on(self.inner_key).lookup
        self._fetch = self.db.heap(self.inner_relation).fetch

    def bind(self, env: dict) -> None:
        env[f"_x{self._index}_lookup"] = self._lookup
        env[f"_x{self._index}_fetch"] = self._fetch

    def apply(self, rows: list) -> list:
        lookup = self._lookup
        fetch = self._fetch
        probe_position = self.probe_position
        residuals = self.residuals
        out: list[Row] = []
        append = out.append
        for r in rows:
            for rid in lookup(r[probe_position]):
                q = fetch(rid)
                if all(r[a] == q[b] for a, b in residuals):
                    append(r + q)
        return out


class _PreparedStepIterator(BatchIterator):
    """Spill-path adapter: applies one prepared step batch-at-a-time.

    Used for steps whose blocking side (if any) was already drained
    during prepare() — re-instantiating the stock batch operator would
    re-drain an exhausted iterator.  ``step.apply`` reproduces the stock
    operator's per-batch algorithm, so row order is unchanged; empty
    output blocks are suppressed exactly as the stock operators do
    (projections and outer joins never shrink a non-empty block).
    """

    __slots__ = ("step", "child")

    def __init__(self, step: _Step, child: BatchIterator) -> None:
        self.step = step
        self.child = child
        self.schema = step.out_schema

    def batches(self) -> Iterator[RowBatch]:
        apply = self.step.apply
        for batch in self.child.batches():
            rows = apply(batch.rows)
            if rows:
                yield RowBatch(rows)


# ----------------------------------------------------------------------
# The fused pipeline iterator
# ----------------------------------------------------------------------
def _render_source(
    steps: list[_Step], source_width: int, scan_fused: bool = False
) -> str:
    """Render the pipeline's generated function (steps root-first).

    Consecutive loop-fusable steps share one list comprehension — the
    whole chain is a single C-speed pass per batch; a pass barrier
    (left-outer join) closes the current comprehension and re-opens a
    fresh one above it.

    With ``scan_fused`` the source yields buffer-pool page-payload
    chunks instead of assembled :class:`RowBatch` blocks — the scan is
    part of the pipeline, so the first comprehension iterates
    ``chain.from_iterable`` over the raw pages and the per-batch
    assembly (extend per page, block wrapper, generator hop) disappears.
    """
    lines = ["def _fused_pipeline(source, env):"]
    names: list[str] = []
    for step in steps:
        names.extend(step.env_names())
    for name in names:
        lines.append(f'    {name} = env["{name}"]')
    if scan_fused:
        lines.append("    for _pages in source:")
    else:
        lines.append("    for _b in source:")
        lines.append("        rows = _b.rows")

    groups: list[tuple[str, object]] = []
    for step in reversed(steps):  # bottom-up: source side first
        if not step.LOOP_FUSABLE:
            groups.append(("pass", step))
        elif groups and groups[-1][0] == "loop":
            groups[-1][1].append(step)  # type: ignore[union-attr]
        else:
            groups.append(("loop", [step]))

    width = source_width
    scan_input = scan_fused
    for kind, payload in groups:
        if kind == "pass":
            if scan_input:
                lines.append("        rows = list(_chain(_pages))")
                scan_input = False
            payload.render_pass(lines)  # type: ignore[union-attr]
            width = len(payload.out_schema.attributes)  # type: ignore[union-attr]
            continue
        loop_steps: list[_Step] = payload  # type: ignore[assignment]
        ctx = _CompCtx(_RowExpr.var("r", width))
        labelled: list[tuple[str, list[str]]] = []
        for step in loop_steps:
            before = len(ctx.clauses)
            step.render_loop(ctx)
            labelled.append((step.node.label, ctx.clauses[before:]))
        lines.append("        rows = [")
        lines.append(f"            {ctx.row.materialize()}")
        if scan_input:
            lines.append("            for r in _chain(_pages)")
            scan_input = False
        else:
            lines.append("            for r in rows")
        for label, clauses in labelled:
            lines.append(f"            # {label}")
            for clause in clauses:
                lines.append(f"            {clause}")
        lines.append("        ]")
        width = len(loop_steps[-1].out_schema.attributes)
    lines.append("        if not rows:")
    lines.append("            continue")
    lines.append("        yield RowBatch(rows)")
    return "\n".join(lines) + "\n"


class FusedPipelineIterator(BatchIterator):
    """One fused pipeline: a source iterator driven through generated code.

    Construction renders (or cache-hits) and compiles the generated
    function; all I/O — draining blocking sides, pulling the source —
    happens lazily in :meth:`batches`, matching the laziness of the
    stock batch iterators.
    """

    __slots__ = (
        "steps", "source", "source_text", "cache_key", "scan_fused", "_fn",
    )

    def __init__(self, steps: list[_Step], source: BatchIterator) -> None:
        if not steps:
            raise ExecutionError("fused pipeline needs at least one step")
        self.steps = steps
        self.source = source
        self.schema = steps[0].out_schema
        # A bare heap scan (no ledger/metering wrapper) fuses into the
        # pipeline: the generated code consumes buffer-pool page chunks
        # directly instead of assembled batches.
        self.scan_fused = type(source) is BatchFileScanIterator
        self.cache_key = _pipeline_cache_key(steps, source, self.scan_fused)
        cached = _CODE_CACHE.get(self.cache_key)
        registry = get_metrics()
        if cached is not None:
            registry.counter("codegen.cache_hits").inc()
            self.source_text, self._fn = cached
        else:
            registry.counter("codegen.cache_misses").inc()
            source_text = _render_source(
                steps, len(source.schema.attributes), self.scan_fused
            )
            namespace: dict = {
                "RowBatch": RowBatch,
                "_EMPTY": (),
                "_chain": chain.from_iterable,
            }
            exec(  # noqa: S102 - source is rendered from plan structure only
                compile(source_text, f"<fused:{self.cache_key}>", "exec"),
                namespace,
            )
            self.source_text = source_text
            self._fn = namespace["_fused_pipeline"]
            _CODE_CACHE[self.cache_key] = (source_text, self._fn)

    @property
    def label(self) -> str:
        return " -> ".join(
            step.node.label for step in reversed(self.steps)
        )

    def batches(self) -> Iterator[RowBatch]:
        # Blocking sides drain top-down — the same order the nested
        # batch generators drain them — before any source batch flows.
        for step in self.steps:
            step.prepare()
        if any(step.spills() for step in self.steps):
            # A build side exceeded the memory budget: Grace-spill
            # through the stock operators (byte-identical output order),
            # reusing every already-drained side.
            iterator: BatchIterator = self.source
            for step in reversed(self.steps):
                iterator = step.fallback(iterator)
            yield from iterator.batches()
            return
        env: dict = {}
        for step in self.steps:
            step.bind(env)
        if self.scan_fused:
            yield from self._fn(self._scan_chunks(), env)
        else:
            yield from self._fn(self.source.batches(), env)

    def _scan_chunks(self) -> Iterator[list[list]]:
        """Buffer-pool page chunks of the fused heap scan.

        Mirrors :meth:`BatchFileScanIterator.batches` — same flush,
        same chunk size, same read calls, so simulated I/O and pool
        accounting are identical — but hands the raw page payloads to
        the generated code without assembling row blocks.
        """
        scan: BatchFileScanIterator = self.source  # type: ignore[assignment]
        heap = scan.db.heap(scan.relation)
        heap.flush()
        name = heap.name
        pages = scan.db.disk.page_count(name)
        chunk = max(1, -(-scan.batch_size // heap.records_per_page))
        read_range = scan.db.buffer.read_page_range
        for first in range(0, pages, chunk):
            yield read_range(name, first, min(first + chunk, pages))


def _pipeline_cache_key(
    steps: list[_Step], source: BatchIterator, scan_fused: bool = False
) -> str:
    """Cache key of the activated chain's generated source.

    Combines each step's structural plan signature with its rendered
    shape token (positions, operators, binding shape) and the source
    schema width.  Signatures make the key stable across process
    restarts for identical plan structure; shape tokens keep it sound
    when two structurally distinct plans hash near each other or when a
    host variable's boundness changes the rendered source.
    """
    parts = [
        f"{plan_signature(step.node)}:{step.cache_token()}" for step in steps
    ]
    kind = "scan" if scan_fused else "batch"
    parts.append(f"src:{kind}:{len(source.schema.attributes)}")
    digest = blake2b("|".join(parts).encode(), digest_size=8)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Chain collection
# ----------------------------------------------------------------------
def try_fuse(
    node: PlanNode,
    build_child: Callable[[PlanNode], BatchIterator],
    choices: Mapping[int, PlanNode],
    pinned: Mapping[int, tuple] | None,
    db: Database,
    bindings: ValueBindings,
    memory: int,
    batch_size: int,
    materialized: Mapping | None = None,
    wrap_build: Callable[[PlanNode, BatchIterator], BatchIterator] | None = None,
) -> FusedPipelineIterator | None:
    """Collect the maximal fusible chain rooted at ``node``.

    Returns ``None`` when ``node`` starts no chain (the caller falls
    through to the stock operator dispatch).  ``build_child`` builds
    side inputs and the pipeline source through the ordinary batch
    constructor — recursively fusing below cut points.  A node whose
    subtree has a materialized substitute is a cut point too (the
    substitute replaces the whole subtree, filter included).
    ``wrap_build`` mirrors the batch constructor's special wrapping of
    hash-join build sides (the ledger-probe "[build]" observation).
    """
    links: list[tuple[PlanNode, PlanNode | None]] = []
    current = node
    while True:
        if pinned and id(current) in pinned:
            break
        resolved = _resolve_chooses(current, choices)
        if resolved is None or not isinstance(resolved, FUSIBLE_NODES):
            break
        if materialized:
            info = leaf_access_info(resolved)
            if info is not None and info in materialized:
                break
        if isinstance(resolved, HashJoinNode):
            links.append((resolved, resolved.inputs[0]))
            current = resolved.inputs[1]
        elif isinstance(resolved, (SemiJoinNode, LeftOuterJoinNode)):
            links.append((resolved, resolved.inputs[1]))
            current = resolved.inputs[0]
        else:  # FilterNode, ProjectNode, IndexJoinNode: single input
            links.append((resolved, None))
            current = resolved.inputs[0]
    if not links:
        return None
    source = build_child(current)
    # Schemas flow bottom-up; steps are stored root-first.
    steps: list[_Step] = [None] * len(links)  # type: ignore[list-item]
    in_schema = source.schema
    for position in range(len(links) - 1, -1, -1):
        step_node, side = links[position]
        index = len(links) - 1 - position
        if isinstance(step_node, FilterNode):
            step: _Step = _FilterStep(step_node, in_schema, bindings, index)
        elif isinstance(step_node, ProjectNode):
            step = _ProjectStep(step_node, in_schema)
        elif isinstance(step_node, HashJoinNode):
            build_side = build_child(side)
            if wrap_build is not None:
                build_side = wrap_build(side, build_side)
            step = _HashProbeStep(
                step_node, in_schema, build_side, db, memory,
                batch_size, index,
            )
        elif isinstance(step_node, SemiJoinNode):
            step = _SemiStep(step_node, in_schema, build_child(side), index)
        elif isinstance(step_node, LeftOuterJoinNode):
            step = _OuterStep(step_node, in_schema, build_child(side), index)
        else:
            step = _IndexJoinStep(step_node, in_schema, db, index)
        steps[position] = step
        in_schema = step.out_schema
    return FusedPipelineIterator(steps, source)


def _resolve_chooses(
    node: PlanNode, choices: Mapping[int, PlanNode]
) -> PlanNode | None:
    """Follow choose-plan decisions; None when a decision is missing."""
    from repro.physical.plan import ChoosePlanNode

    while isinstance(node, ChoosePlanNode):
        chosen = choices.get(id(node))
        if chosen is None:
            return None
        node = chosen
    return node


def iter_fused_pipelines(
    iterator: BatchIterator,
) -> Iterator[FusedPipelineIterator]:
    """Every fused pipeline in an iterator tree (for ``--show-fused``)."""
    seen: set[int] = set()
    stack: list[BatchIterator] = [iterator]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, FusedPipelineIterator):
            yield current
            stack.append(current.source)
            for step in current.steps:
                for name in ("build_iterator", "inner_iterator", "right_iterator"):
                    side = getattr(step, name, None)
                    if isinstance(side, BatchIterator):
                        stack.append(side)
            continue
        for cls in type(current).__mro__:
            for slot in getattr(cls, "__slots__", ()):
                value = getattr(current, slot, None)
                if isinstance(value, BatchIterator):
                    stack.append(value)
                elif isinstance(value, (list, tuple)):
                    stack.extend(
                        v for v in value if isinstance(v, BatchIterator)
                    )
