"""Executor speedup benchmark: row-at-a-time vs batches vs fused codegen.

The main workload is a scan-heavy star equijoin with a residual
selection — ``SELECT D1.a, D2.a, P.a FROM D1, D2, P WHERE D1.j = P.j
AND D2.k = P.k AND P.a < :v`` — a four-operator streaming pipeline
(scan → filter → probe → probe → project) over a large probe relation
with the simulated disk left at zero latency: execution is CPU-bound,
so the wall clock measures exactly the per-row interpreter overhead
that batching amortizes and whole-pipeline codegen eliminates.

All modes run the *same* prepared query with the *same* start-up
decision; only the iterator family differs.  The buffer pool is cleared
before every timed run so no mode inherits another's cached pages.

A second scenario times the order-enforcement side of the PR: an ORDER
BY whose input already arrives sorted on a key prefix (a clustered
B-tree scan) is finished by a :class:`~repro.physical.plan.
PartialSortNode` run by run, against the full-sort twin that re-sorts
the whole input — and, at a small memory budget, spills.  The partial
sort buffers one run at a time, so it wins on simulated I/O (zero spill
writes) and on wall clock.
"""

from __future__ import annotations

from time import perf_counter

from repro.catalog.catalog import Catalog
from repro.cost.context import CostContext
from repro.cost.model import CostModel
from repro.executor.database import Database
from repro.executor.executor import execute_plan
from repro.params.parameter import ParameterSpace
from repro.physical.plan import (
    BtreeScanNode,
    PartialSortNode,
    SortNode,
    enforce_ordering,
)
from repro.runtime.prepared import PreparedQuery
from repro.util.interval import Interval

BENCH_SQL = (
    "SELECT D1.a, D2.a, P.a FROM D1, D2, P "
    "WHERE D1.j = P.j AND D2.k = P.k AND P.a < :v"
)

RECORD_BYTES = 512

#: Batch sizes swept by the full benchmark (the default is 1024).
BATCH_SIZES = (64, 256, 1024, 4096)


def make_fusion_catalog(probe_rows: int, build_rows: int) -> Catalog:
    """Two small build relations and a much larger probe relation.

    No indexes are declared, so every plan scans all three relations and
    both joins are hash-based — the maximal streaming chain the fused
    executor compiles into one generated function.
    """
    catalog = Catalog()
    for name, key in (("D1", "j"), ("D2", "k")):
        catalog.add_relation(
            name,
            [("a", max(2, build_rows // 2)), (key, max(2, build_rows))],
            cardinality=build_rows,
            record_bytes=RECORD_BYTES,
        )
    catalog.add_relation(
        "P",
        [
            ("a", max(2, probe_rows // 2)),
            ("j", max(2, build_rows)),
            ("k", max(2, build_rows)),
        ],
        cardinality=probe_rows,
        record_bytes=RECORD_BYTES,
    )
    return catalog


def _timed_run(
    prepared: PreparedQuery,
    db: Database,
    bindings: dict,
    memory_pages: int,
    repeats: int,
    **kwargs,
) -> tuple[float, int]:
    """Best-of-``repeats`` wall time and the row count of one execution."""
    best = float("inf")
    rows = 0
    for _ in range(repeats):
        db.buffer.clear()
        started = perf_counter()
        result = prepared.execute(
            db, bindings, memory_pages=memory_pages, **kwargs
        )
        best = min(best, perf_counter() - started)
        rows = len(result.rows)
    return best, rows


def _interval_micro_note(iterations: int = 50_000) -> dict:
    """Micro-benchmark of the non-negative Interval arithmetic fast path.

    Cost arithmetic multiplies/divides non-negative intervals almost
    exclusively; those now skip the 4-corner product scan.  Mixed-sign
    operands still take the general path, so timing both documents the
    saving in the bench artifact.
    """
    nonneg_a, nonneg_b = Interval.of(2.0, 3.0), Interval.of(0.5, 4.0)
    mixed = Interval.of(-3.0, -2.0)
    started = perf_counter()
    for _ in range(iterations):
        nonneg_a * nonneg_b
        nonneg_a / nonneg_b
    fast = perf_counter() - started
    started = perf_counter()
    for _ in range(iterations):
        mixed * nonneg_b
        mixed / nonneg_b
    general = perf_counter() - started
    return {
        "iterations": iterations,
        "nonnegative_seconds": fast,
        "general_seconds": general,
        "note": (
            "non-negative operands take the bound-wise fast path in "
            "Interval.__mul__/__truediv__; mixed signs fall back to the "
            "4-corner scan.  Hot executor and plan classes additionally "
            "declare __slots__, removing per-instance dicts."
        ),
    }


def run_partial_sort_bench(
    *,
    rows: int = 20_000,
    groups: int = 200,
    memory_pages: int = 32,
    repeats: int = 3,
    seed: int = 11,
) -> dict:
    """Near-sorted ORDER BY: partial sort vs the full-sort twin.

    A clustered B-tree scan of ``S`` delivers ``k`` order for free;
    ``ORDER BY k, a`` therefore needs only the ``a`` order *within* each
    equal-``k`` run.  :func:`~repro.physical.plan.enforce_ordering`
    credits that prefix with a :class:`PartialSortNode`; the twin plan
    ignores the prefix and full-sorts the same scan.  At a small memory
    budget the full sort spills to external runs while the partial sort
    never buffers more than one group, so both the simulated I/O and the
    wall clock separate.  Outputs are asserted byte-identical.
    """
    catalog = Catalog()
    catalog.add_relation(
        "S",
        [("k", max(2, groups)), ("a", max(2, rows // 2))],
        cardinality=rows,
        record_bytes=256,
    )
    catalog.create_index("S_k", "S", "k", clustered=True)
    model = CostModel()
    db = Database(catalog, model)
    db.load_synthetic(seed)
    ctx = CostContext(
        catalog=catalog,
        model=model,
        env=ParameterSpace().dynamic_environment(),
    )
    k = catalog.attribute("S.k")
    a = catalog.attribute("S.a")
    ordering = (k, a)
    partial_plan = enforce_ordering(ctx, BtreeScanNode(ctx, "S", k), ordering)
    assert isinstance(partial_plan, PartialSortNode), (
        "clustered-scan prefix must be credited with a partial sort"
    )
    full_plan = SortNode(ctx, BtreeScanNode(ctx, "S", k), ordering)
    # One untimed warm-up run flushes the loaded heap and index to the
    # simulated disk, so neither timed plan is charged the one-time
    # load-side writes.
    execute_plan(partial_plan, db, memory_pages=memory_pages)

    def timed(plan) -> dict:
        best_wall = float("inf")
        metrics = None
        result_rows = None
        for _ in range(repeats):
            db.buffer.clear()
            result = execute_plan(plan, db, memory_pages=memory_pages)
            if result.metrics.wall_seconds < best_wall:
                best_wall = result.metrics.wall_seconds
                metrics = result.metrics
            result_rows = result.rows
        return {
            "rows": len(result_rows),
            "wall_seconds": best_wall,
            "io_seconds": metrics.io_seconds,
            "writes": metrics.writes,
            "predicted_cost": [float(plan.cost.low), float(plan.cost.high)],
            "_result": result_rows,
        }

    partial = timed(partial_plan)
    full = timed(full_plan)
    if partial.pop("_result") != full.pop("_result"):
        raise AssertionError(
            "partial sort and full sort disagree on the output stream"
        )
    return {
        "rows": rows,
        "groups": groups,
        "memory_pages": memory_pages,
        "order_by": [k.qualified_name, a.qualified_name],
        "partial_sort": partial,
        "full_sort": full,
        "io_seconds_saved": full["io_seconds"] - partial["io_seconds"],
        "writes_saved": full["writes"] - partial["writes"],
        "wall_speedup": (
            full["wall_seconds"] / partial["wall_seconds"]
            if partial["wall_seconds"]
            else 0.0
        ),
    }


def run_exec_bench(
    *,
    probe_rows: int = 40_000,
    build_rows: int = 300,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    memory_pages: int = 512,
    repeats: int = 3,
    seed: int = 11,
    sort_rows: int = 20_000,
    sort_groups: int = 200,
    sort_memory_pages: int = 32,
) -> dict:
    """Time the star join row-at-a-time, then batched and fused per size.

    Returns a self-describing JSON payload: configuration, the row-mode
    baseline, one record per batch size for plain batch execution and
    for fused codegen (each with its speedup over the row baseline, the
    fused records additionally over same-size batch execution), and the
    near-sorted ORDER BY scenario.  Row counts are asserted equal across
    all runs — a benchmark that changes the answer measures nothing.
    """
    catalog = make_fusion_catalog(probe_rows, build_rows)
    model = CostModel()
    db = Database(catalog, model)
    db.load_synthetic(seed)
    prepared = PreparedQuery.prepare(BENCH_SQL, catalog, model)
    # ~90% selectivity on the probe's residual predicate: the joins and
    # the projection dominate, which is the work fusion removes.
    bindings = {"v": int(max(2, probe_rows // 2) * 0.9)}

    row_seconds, row_count = _timed_run(
        prepared, db, bindings, memory_pages, repeats, execution_mode="row"
    )
    batch_runs = []
    fused_runs = []
    for batch_size in batch_sizes:
        batch_seconds, batch_count = _timed_run(
            prepared,
            db,
            bindings,
            memory_pages,
            repeats,
            execution_mode="batch",
            batch_size=batch_size,
        )
        fused_seconds, fused_count = _timed_run(
            prepared,
            db,
            bindings,
            memory_pages,
            repeats,
            execution_mode="fused",
            batch_size=batch_size,
        )
        for label, count in (("batch", batch_count), ("fused", fused_count)):
            if count != row_count:
                raise AssertionError(
                    f"{label} batch_size={batch_size} returned {count} "
                    f"rows, row mode returned {row_count}"
                )
        batch_runs.append(
            {
                "batch_size": batch_size,
                "seconds": batch_seconds,
                "speedup": row_seconds / batch_seconds if batch_seconds else 0.0,
                "rows": batch_count,
            }
        )
        fused_runs.append(
            {
                "batch_size": batch_size,
                "seconds": fused_seconds,
                "speedup": row_seconds / fused_seconds if fused_seconds else 0.0,
                "speedup_vs_batch": (
                    batch_seconds / fused_seconds if fused_seconds else 0.0
                ),
                "rows": fused_count,
            }
        )
    return {
        "benchmark": "exec_speedup",
        "sql": BENCH_SQL,
        "config": {
            "probe_rows": probe_rows,
            "build_rows": build_rows,
            "batch_sizes": list(batch_sizes),
            "memory_pages": memory_pages,
            "repeats": repeats,
            "seed": seed,
        },
        "row": {"seconds": row_seconds, "rows": row_count},
        "batch_runs": batch_runs,
        "fused_runs": fused_runs,
        "partial_sort_scenario": run_partial_sort_bench(
            rows=sort_rows,
            groups=sort_groups,
            memory_pages=sort_memory_pages,
            repeats=repeats,
            seed=seed,
        ),
        "micro_notes": _interval_micro_note(),
    }


SMOKE_CONFIG = dict(
    probe_rows=4_000,
    build_rows=120,
    batch_sizes=(256, 1024),
    repeats=1,
    sort_rows=3_000,
    sort_groups=60,
)
