"""Executor speedup benchmark: row-at-a-time vs vectorized batches.

The workload is a scan-heavy equijoin with a residual selection —
``SELECT * FROM B, P WHERE B.j = P.j AND P.a < :v`` — over the same
build/probe catalog shape the parallel benchmark uses, but with the
simulated disk left at zero latency: execution is CPU-bound, so the wall
clock measures exactly the per-row interpreter overhead that batching
and compiled predicates amortize.

Both modes run the *same* prepared query with the *same* start-up
decision; only the iterator family differs.  The buffer pool is cleared
before every timed run so neither mode inherits the other's cached
pages.
"""

from __future__ import annotations

from time import perf_counter

from repro.cost.model import CostModel
from repro.executor.database import Database
from repro.parallel.bench import make_speedup_catalog
from repro.runtime.prepared import PreparedQuery
from repro.util.interval import Interval

BENCH_SQL = "SELECT * FROM B, P WHERE B.j = P.j AND P.a < :v"

#: Batch sizes swept by the full benchmark (the default is 1024).
BATCH_SIZES = (64, 256, 1024, 4096)


def _timed_run(
    prepared: PreparedQuery,
    db: Database,
    bindings: dict,
    memory_pages: int,
    repeats: int,
    **kwargs,
) -> tuple[float, int]:
    """Best-of-``repeats`` wall time and the row count of one execution."""
    best = float("inf")
    rows = 0
    for _ in range(repeats):
        db.buffer.clear()
        started = perf_counter()
        result = prepared.execute(
            db, bindings, memory_pages=memory_pages, **kwargs
        )
        best = min(best, perf_counter() - started)
        rows = len(result.rows)
    return best, rows


def _interval_micro_note(iterations: int = 50_000) -> dict:
    """Micro-benchmark of the non-negative Interval arithmetic fast path.

    Cost arithmetic multiplies/divides non-negative intervals almost
    exclusively; those now skip the 4-corner product scan.  Mixed-sign
    operands still take the general path, so timing both documents the
    saving in the bench artifact.
    """
    nonneg_a, nonneg_b = Interval.of(2.0, 3.0), Interval.of(0.5, 4.0)
    mixed = Interval.of(-3.0, -2.0)
    started = perf_counter()
    for _ in range(iterations):
        nonneg_a * nonneg_b
        nonneg_a / nonneg_b
    fast = perf_counter() - started
    started = perf_counter()
    for _ in range(iterations):
        mixed * nonneg_b
        mixed / nonneg_b
    general = perf_counter() - started
    return {
        "iterations": iterations,
        "nonnegative_seconds": fast,
        "general_seconds": general,
        "note": (
            "non-negative operands take the bound-wise fast path in "
            "Interval.__mul__/__truediv__; mixed signs fall back to the "
            "4-corner scan.  Hot executor and plan classes additionally "
            "declare __slots__, removing per-instance dicts."
        ),
    }


def run_exec_bench(
    *,
    probe_rows: int = 40_000,
    build_rows: int = 300,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    memory_pages: int = 512,
    repeats: int = 3,
    seed: int = 11,
) -> dict:
    """Time the join row-at-a-time, then at each batch size.

    Returns a self-describing JSON payload: configuration, the row-mode
    baseline, and one record per batch size with its wall time and
    speedup over the baseline.  Row counts are asserted equal across all
    runs — a benchmark that changes the answer measures nothing.
    """
    catalog = make_speedup_catalog(probe_rows, build_rows)
    model = CostModel()
    db = Database(catalog, model)
    db.load_synthetic(seed)
    prepared = PreparedQuery.prepare(BENCH_SQL, catalog, model)
    # ~50% selectivity on the probe's residual predicate: enough survivors
    # that the join and filter both stay hot.
    bindings = {"v": max(2, probe_rows // 2) // 2}

    row_seconds, row_count = _timed_run(
        prepared, db, bindings, memory_pages, repeats, execution_mode="row"
    )
    batch_runs = []
    for batch_size in batch_sizes:
        seconds, rows = _timed_run(
            prepared,
            db,
            bindings,
            memory_pages,
            repeats,
            execution_mode="batch",
            batch_size=batch_size,
        )
        if rows != row_count:
            raise AssertionError(
                f"batch_size={batch_size} returned {rows} rows, "
                f"row mode returned {row_count}"
            )
        batch_runs.append(
            {
                "batch_size": batch_size,
                "seconds": seconds,
                "speedup": row_seconds / seconds if seconds else 0.0,
                "rows": rows,
            }
        )
    return {
        "benchmark": "exec_speedup",
        "sql": BENCH_SQL,
        "config": {
            "probe_rows": probe_rows,
            "build_rows": build_rows,
            "batch_sizes": list(batch_sizes),
            "memory_pages": memory_pages,
            "repeats": repeats,
            "seed": seed,
        },
        "row": {"seconds": row_seconds, "rows": row_count},
        "batch_runs": batch_runs,
        "micro_notes": _interval_micro_note(),
    }


SMOKE_CONFIG = dict(
    probe_rows=4_000, build_rows=120, batch_sizes=(256, 1024), repeats=1
)
