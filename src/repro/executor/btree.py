"""A paged B-tree index over the simulated disk.

Leaf pages hold sorted ``(key, rid)`` entries and are chained left to
right, so range scans read leaves sequentially after the initial descent —
exactly the access pattern :func:`repro.cost.formulas.btree_scan_cost`
charges for.  Internal pages hold separator keys and child page numbers.

The tree supports bulk loading from sorted input (used by data loading),
single inserts with page splits (used by index maintenance tests), exact
and range lookups.  All page reads go through a caller-supplied reader so
the buffer pool can cache upper levels, matching the cost model's
root-cached assumption.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator

from repro.errors import ExecutionError
from repro.executor.storage import SimulatedDisk

Rid = tuple[int, int]
Entry = tuple[object, Rid]
PageReader = Callable[[str, int], object]


def _leaf(entries: list[Entry], next_leaf: int | None) -> dict:
    return {"leaf": True, "entries": entries, "next": next_leaf}


def _internal(keys: list, children: list[int]) -> dict:
    return {"leaf": False, "keys": keys, "children": children}


class BTree:
    """One B-tree index stored in one simulated file."""

    def __init__(
        self,
        disk: SimulatedDisk,
        file_name: str,
        capacity: int | None = None,
        reader: PageReader | None = None,
    ) -> None:
        self.disk = disk
        self.file_name = file_name
        self.capacity = capacity or max(
            4, disk.model.page_bytes // disk.model.btree_key_bytes
        )
        self._read = reader if reader is not None else disk.read_page
        if not disk.file_exists(file_name):
            disk.create_file(file_name)
        self.root_page: int | None = None
        self.height = 0
        self.entry_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def bulk_build(self, entries: list[Entry]) -> None:
        """Build the tree from entries sorted by key.

        Leaves are written contiguously (so chained scans are sequential),
        then each internal level above them.
        """
        if self.root_page is not None:
            raise ExecutionError(f"B-tree {self.file_name} already built")
        if any(entries[i][0] > entries[i + 1][0] for i in range(len(entries) - 1)):
            raise ExecutionError("bulk_build requires entries sorted by key")
        self.entry_count = len(entries)
        if not entries:
            self.root_page = self.disk.append_page(self.file_name, _leaf([], None))
            self.height = 1
            return

        # Leaf level.
        fill = max(2, (self.capacity * 2) // 3)  # classic 2/3 bulk-load fill
        leaf_pages: list[int] = []
        first_keys: list = []
        chunks = [entries[i : i + fill] for i in range(0, len(entries), fill)]
        for chunk in chunks:
            page_no = self.disk.append_page(self.file_name, _leaf(list(chunk), None))
            leaf_pages.append(page_no)
            first_keys.append(chunk[0][0])
        for i in range(len(leaf_pages) - 1):
            payload = self.disk.read_page(self.file_name, leaf_pages[i])
            payload["next"] = leaf_pages[i + 1]
            self.disk.write_page(self.file_name, leaf_pages[i], payload)

        # Internal levels.
        level_pages, level_keys = leaf_pages, first_keys
        self.height = 1
        while len(level_pages) > 1:
            parent_pages: list[int] = []
            parent_keys: list = []
            for i in range(0, len(level_pages), fill):
                children = level_pages[i : i + fill]
                keys = level_keys[i + 1 : i + len(children)]
                page_no = self.disk.append_page(
                    self.file_name, _internal(list(keys), list(children))
                )
                parent_pages.append(page_no)
                parent_keys.append(level_keys[i])
            level_pages, level_keys = parent_pages, parent_keys
            self.height += 1
        self.root_page = level_pages[0]

    def insert(self, key: object, rid: Rid) -> None:
        """Insert one entry, splitting pages as needed."""
        if self.root_page is None:
            self.bulk_build([(key, rid)])
            return
        split = self._insert_into(self.root_page, key, rid)
        if split is not None:
            separator, new_child = split
            new_root = self.disk.append_page(
                self.file_name, _internal([separator], [self.root_page, new_child])
            )
            self.root_page = new_root
            self.height += 1
        self.entry_count += 1

    def _insert_into(
        self, page_no: int, key: object, rid: Rid
    ) -> tuple[object, int] | None:
        """Insert under ``page_no``; returns (separator, new page) on split."""
        node = self.disk.read_page(self.file_name, page_no)
        if node["leaf"]:
            entries: list[Entry] = node["entries"]
            bisect.insort(entries, (key, rid))
            if len(entries) <= self.capacity:
                self.disk.write_page(self.file_name, page_no, node)
                return None
            mid = len(entries) // 2
            right_entries = entries[mid:]
            node["entries"] = entries[:mid]
            right_page = self.disk.append_page(
                self.file_name, _leaf(right_entries, node["next"])
            )
            node["next"] = right_page
            self.disk.write_page(self.file_name, page_no, node)
            return right_entries[0][0], right_page

        position = bisect.bisect_right(node["keys"], key)
        split = self._insert_into(node["children"][position], key, rid)
        if split is None:
            return None
        separator, new_child = split
        node["keys"].insert(position, separator)
        node["children"].insert(position + 1, new_child)
        if len(node["children"]) <= self.capacity:
            self.disk.write_page(self.file_name, page_no, node)
            return None
        mid = len(node["keys"]) // 2
        up_key = node["keys"][mid]
        right = _internal(node["keys"][mid + 1 :], node["children"][mid + 1 :])
        node["keys"] = node["keys"][:mid]
        node["children"] = node["children"][: mid + 1]
        right_page = self.disk.append_page(self.file_name, right)
        self.disk.write_page(self.file_name, page_no, node)
        return up_key, right_page

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def range_scan(
        self,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Entry]:
        """Yield entries with keys in the given range, in key order.

        ``None`` bounds are open-ended; a full scan is
        ``range_scan(None, None)``.
        """
        if self.root_page is None:
            raise ExecutionError(f"B-tree {self.file_name} is empty/unbuilt")
        page_no = self._descend_to_leaf(low)
        while page_no is not None:
            node = self._read(self.file_name, page_no)
            for key, rid in node["entries"]:
                if low is not None:
                    if key < low or (key == low and not include_low):
                        continue
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                yield key, rid
            page_no = node["next"]

    def lookup(self, key: object) -> list[Rid]:
        """All rids with exactly ``key``."""
        return [rid for _, rid in self.range_scan(key, key)]

    def _descend_to_leaf(self, low: object | None) -> int:
        assert self.root_page is not None
        page_no = self.root_page
        for _ in range(self.height - 1):
            node = self._read(self.file_name, page_no)
            if node["leaf"]:
                break
            if low is None:
                page_no = node["children"][0]
            else:
                # bisect_left, not bisect_right: duplicates of ``low`` may
                # end the leaf to the LEFT of the separator equal to it, so
                # the descent must take the leftmost child that can still
                # hold the key.
                position = bisect.bisect_left(node["keys"], low)
                page_no = node["children"][position]
        return page_no
